//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates registry, so the workspace vendors
//! the API subset it uses: the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), [`SeedableRng::seed_from_u64`], a deterministic
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), the
//! [`rngs::mock::StepRng`] used in tests, and [`thread_rng`].
//!
//! Streams differ from upstream rand (which uses ChaCha12 for `StdRng`);
//! everything in this workspace only relies on determinism-per-seed, not on
//! specific draw values.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of upstream rand).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        // 24 random mantissa bits in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types usable as `gen_range` bounds.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[low, high)`; `high > low` checked by the caller.
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                // Lemire multiply-shift: unbiased enough for simulation use.
                let span = (high as i128 - low as i128) as u128;
                let v = (rng.next_u64() as u128 * span) >> 64;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
        low + f64::sample(rng) * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, low: f32, high: f32) -> f32 {
        low + f32::sample(rng) * (high - low)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(rng, self.start, self.end)
    }
}

macro_rules! impl_range_inclusive_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = self.into_inner();
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128 + 1) as u128;
                let v = (rng.next_u64() as u128 * span) >> 64;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_inclusive_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing extension trait: sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` over its full domain (`Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from a range (`0..n` or `1..=k`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    pub mod mock {
        //! Deterministic mock generators for tests.

        use super::super::RngCore;

        /// Yields `start`, `start + incr`, `start + 2*incr`, … (wrapping).
        #[derive(Debug, Clone)]
        pub struct StepRng {
            next: u64,
            incr: u64,
        }

        impl StepRng {
            /// Creates a stepping generator.
            pub fn new(start: u64, incr: u64) -> StepRng {
                StepRng { next: start, incr }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let v = self.next;
                self.next = self.next.wrapping_add(self.incr);
                v
            }
        }
    }
}

/// A non-deterministically seeded generator (fresh stream per call).
#[derive(Debug, Clone)]
pub struct ThreadRng(rngs::StdRng);

impl RngCore for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Returns a generator seeded from the clock and a process-wide counter.
pub fn thread_rng() -> ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    ThreadRng(rngs::StdRng::seed_from_u64(
        nanos ^ n.rotate_left(32) ^ 0x5DEE_CE66,
    ))
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, (0..8).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(0usize..124);
            assert!(v < 124);
            let w = rng.gen_range(1u32..=4);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "{hits}");
    }

    #[test]
    fn unit_floats_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn step_rng_steps() {
        let mut r = StepRng::new(0, 1 << 40);
        assert_eq!(r.next_u64(), 0);
        assert_eq!(r.next_u64(), 1 << 40);
        // Small multiply-shift ranges map early steps to 0.
        assert_eq!(StepRng::new(0, 1 << 40).gen_range(0usize..2), 0);
    }
}
