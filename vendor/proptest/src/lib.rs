//! Offline stand-in for the `proptest` crate.
//!
//! Provides the `proptest!` macro surface this workspace uses, running each
//! property over `ProptestConfig::cases` deterministic pseudo-random inputs
//! (seeded per test name, so failures reproduce run-to-run). No shrinking:
//! a failing case reports its inputs via the panic message of the plain
//! `assert!`s that `prop_assert!` expands to.

use std::ops::Range;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for API compatibility; this stand-in never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// The deterministic generator driving strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Seeds a generator from a test name (FNV-1a), so each property gets a
/// stable, distinct stream.
pub fn rng_for(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    TestRng::new(h)
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Generates `Vec`s with lengths drawn from `sizes` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.sizes.end - self.sizes.start).max(1) as u64;
            let len = self.sizes.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Asserts inside a property (expands to `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (expands to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property (expands to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::rng_for(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

/// The property-test entry macro: wraps `fn name(x in strategy) { ... }`
/// items into `#[test]` functions running many random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(x in 10u32..20, y in 0usize..3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y < 3);
        }

        #[test]
        fn vec_strategy_respects_sizes(
            v in crate::collection::vec(0usize..5, 1..4),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&e| e < 5));
        }
    }

    #[test]
    fn per_test_streams_are_deterministic() {
        let mut a = crate::rng_for("t");
        let mut b = crate::rng_for("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
