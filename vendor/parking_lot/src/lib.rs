//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the tiny API subset it actually uses: [`Mutex`],
//! [`RwLock`] and [`Once`] with parking_lot's non-poisoning ergonomics
//! (`lock()` returns the guard directly). Backed by `std::sync`; a
//! poisoned std lock (a thread panicked while holding it) is treated as
//! released, matching parking_lot's behaviour of never poisoning.

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex (const, usable in `static` items).
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose acquisitions never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock (const, usable in `static` items).
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// One-time initialization primitive.
#[derive(Debug)]
pub struct Once(sync::Once);

impl Default for Once {
    fn default() -> Once {
        Once::new()
    }
}

impl Once {
    /// Creates a new `Once`.
    pub const fn new() -> Once {
        Once(sync::Once::new())
    }

    /// Runs `f` exactly once across all callers.
    pub fn call_once<F: FnOnce()>(&self, f: F) {
        self.0.call_once(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock is usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
