//! Offline stand-in for the `criterion` crate.
//!
//! Implements the small API surface the workspace's `harness = false` bench
//! targets use: `Criterion::benchmark_group`, `sample_size`, `bench_function`
//! with `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros.
//! Reports mean wall time per iteration; no statistics, plots, or comparison
//! baselines. When invoked by `cargo test` (which passes `--test` to
//! `harness = false` targets) the generated `main` exits without running
//! benchmarks, so the test suite stays fast.

use std::time::Instant;

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup { samples: 10 }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    samples: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark and prints its median iteration time.
    ///
    /// The median (not the mean) of the per-sample wall times is reported:
    /// on shared machines a single descheduled sample can dominate a mean
    /// of 20, and these numbers gate CI speedup assertions.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 0,
            samples_ns: Vec::new(),
        };
        // One untimed warm-up pass, then the timed samples.
        f(&mut b);
        b.iters = 0;
        b.samples_ns.clear();
        for _ in 0..self.samples {
            f(&mut b);
        }
        let median_ns = if b.samples_ns.is_empty() {
            0
        } else {
            b.samples_ns.sort_unstable();
            b.samples_ns[b.samples_ns.len() / 2]
        };
        println!("  {name}: {} ns/iter ({} iters)", median_ns, b.iters);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; times the routine under test.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    samples_ns: Vec<u128>,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.samples_ns.push(start.elapsed().as_nanos());
        self.iters += 1;
    }
}

/// Best-effort optimization barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// True when the binary was launched by `cargo test` rather than
/// `cargo bench` (cargo passes `--test` to `harness = false` targets).
pub fn invoked_as_test() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` running the declared groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if $crate::invoked_as_test() {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("add", |b| b.iter(|| 1u64 + 1));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_samples() {
        benches();
    }
}
