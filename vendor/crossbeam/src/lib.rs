//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module subset the workspace uses is provided:
//! [`channel::unbounded`], [`channel::bounded`], cloneable senders, and
//! timeout-aware receives, implemented over `std::sync::mpsc`.

pub mod channel {
    //! Multi-producer channels with timeout-aware receives.

    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, TryRecvError};

    /// An error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Tx<T> {
            match self {
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
            }
        }
    }

    /// The sending half of a channel. Cloneable; all clones feed the same
    /// receiver.
    pub struct Sender<T>(Tx<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender(self.0.clone())
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking if a bounded channel is full.
        ///
        /// # Errors
        /// Returns the message when the receiving side has disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Tx::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                Tx::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        ///
        /// # Errors
        /// [`RecvError`] when every sender has disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Blocks up to `timeout` for a message.
        ///
        /// # Errors
        /// [`RecvTimeoutError::Timeout`] on expiry,
        /// [`RecvTimeoutError::Disconnected`] when every sender is gone.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        /// [`TryRecvError`] when empty or disconnected.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// An iterator over received messages, ending at disconnect.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// Creates a channel of unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Tx::Unbounded(tx)), Receiver(rx))
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Tx::Bounded(tx)), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn unbounded_round_trip() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn bounded_reply_slot() {
        let (tx, rx) = bounded(1);
        tx.send("ok").unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)).unwrap(), "ok");
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected)
        ));
    }

    #[test]
    fn disconnect_is_an_error() {
        let (tx, rx) = unbounded::<i32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
