//! Offline stand-in for `serde_json`: prints and parses the vendored
//! serde's value tree as JSON. Covers the workspace's API subset:
//! [`to_string`], [`to_string_pretty`], [`to_vec`], [`from_str`],
//! [`from_slice`], plus [`Value`] re-exported for ad-hoc inspection.

pub use serde::value::Value;
use serde::{Deserialize, Serialize};

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

// --- printing ---------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn float_repr(f: f64) -> String {
    if !f.is_finite() {
        // JSON has no Inf/NaN; serde_json emits null.
        return "null".to_string();
    }
    // `{:?}` is the shortest representation that round-trips, and always
    // contains a `.` or exponent so the value re-parses as a float.
    let s = format!("{f:?}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_close, colon) = match indent {
        Some(width) => (
            "\n",
            " ".repeat(width * (level + 1)),
            " ".repeat(width * level),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => out.push_str(&float_repr(*f)),
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_value(item, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                escape_into(k, out);
                out.push_str(colon);
                write_value(item, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
/// Never fails for the vendored value model; `Result` kept for serde_json
/// API compatibility.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
///
/// # Errors
/// Never fails for the vendored value model.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serializes a value to compact JSON bytes.
///
/// # Errors
/// Never fails for the vendored value model.
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

// --- parsing ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.error("bad literal"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.error("bad literal"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.error("bad literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.error("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(self.error("expected `,` or `}`")),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("unexpected character")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs: only BMP escapes are emitted by
                            // our printer; decode pairs defensively anyway.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.eat_literal("\\u") {
                                    return Err(self.error("lone high surrogate"));
                                }
                                let hex2 = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or_else(|| self.error("bad \\u escape"))?;
                                let lo = u32::from_str_radix(hex2, 16)
                                    .map_err(|_| self.error("bad \\u escape"))?;
                                self.pos += 4;
                                0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                cp
                            };
                            out.push(char::from_u32(c).ok_or_else(|| self.error("bad codepoint"))?);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error("invalid number"))
    }
}

/// Parses a JSON string into a [`Value`].
///
/// # Errors
/// [`Error`] describing the first syntax problem.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters"));
    }
    Ok(v)
}

/// Deserializes a value from a JSON string.
///
/// # Errors
/// [`Error`] on syntax problems or shape mismatches.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    T::from_value(&v).map_err(|e| Error::new(e.to_string()))
}

/// Deserializes a value from JSON bytes.
///
/// # Errors
/// [`Error`] on invalid UTF-8, syntax problems or shape mismatches.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(e.to_string()))?;
    from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&-5i64).unwrap(), "-5");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line1\nline2\t\"quoted\" \\ çπ😀".to_string();
        let j = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&j).unwrap(), s);
    }

    #[test]
    fn nested_collections_round_trip() {
        let x: Vec<Vec<i64>> = vec![vec![1, -2], vec![], vec![3]];
        let j = to_string(&x).unwrap();
        assert_eq!(j, "[[1,-2],[],[3]]");
        assert_eq!(from_str::<Vec<Vec<i64>>>(&j).unwrap(), x);
    }

    #[test]
    fn pretty_print_is_indented_and_parses_back() {
        let x: Vec<i64> = vec![1, 2];
        let j = to_string_pretty(&x).unwrap();
        assert_eq!(j, "[\n  1,\n  2\n]");
        assert_eq!(from_str::<Vec<i64>>(&j).unwrap(), x);
    }

    #[test]
    fn float_precision_round_trips() {
        for f in [0.1, 1e-300, 123_456_789.123_456_79, -2.5e17] {
            let j = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&j).unwrap(), f);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("nope").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
    }
}
