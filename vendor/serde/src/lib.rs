//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates registry, so the workspace vendors a
//! minimal serialization framework with serde's surface syntax: a
//! [`Serialize`]/[`Deserialize`] trait pair (re-exported alongside derive
//! macros of the same names) built around an in-memory JSON value tree
//! ([`value::Value`]) instead of serde's streaming data model. The sibling
//! vendored `serde_json` prints and parses that tree.
//!
//! The wire format matches real serde_json conventions for every shape this
//! workspace uses: structs as objects, newtype structs as their payload,
//! unit enum variants as strings, data-carrying variants as single-key
//! objects, `Option` as value-or-null, and integer map keys as strings.

pub use serde_derive::{Deserialize, Serialize};

pub mod value {
    //! The in-memory value tree all (de)serialization goes through.

    /// A JSON-shaped value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// A negative or small signed integer.
        Int(i64),
        /// A non-negative integer (kept exact beyond 2^53, e.g. state hashes).
        UInt(u64),
        /// A floating-point number.
        Float(f64),
        /// A string.
        Str(String),
        /// An array.
        Array(Vec<Value>),
        /// An object; insertion order is preserved.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// The object entries, if this is an object.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Object(o) => Some(o),
                _ => None,
            }
        }

        /// The array elements, if this is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(a) => Some(a),
                _ => None,
            }
        }

        /// The string content, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// Looks up an object key.
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.as_object()?
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
        }

        /// A short description of the value's kind, for error messages.
        pub fn kind(&self) -> &'static str {
            match self {
                Value::Null => "null",
                Value::Bool(_) => "bool",
                Value::Int(_) | Value::UInt(_) => "integer",
                Value::Float(_) => "number",
                Value::Str(_) => "string",
                Value::Array(_) => "array",
                Value::Object(_) => "object",
            }
        }
    }
}

use value::Value;

/// A deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error from a message.
    pub fn new(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types convertible to the value tree.
pub trait Serialize {
    /// Converts to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the value tree.
pub trait Deserialize: Sized {
    /// Rebuilds from a [`Value`].
    ///
    /// # Errors
    /// [`DeError`] when the value's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Helper used by derived code: extracts and deserializes an object field.
/// A missing key deserializes from `Null` so `Option` fields default to
/// `None`, mirroring serde's behaviour.
///
/// # Errors
/// [`DeError`] naming the field on a shape mismatch or missing mandatory
/// field.
pub fn field<T: Deserialize>(obj: &[(String, Value)], key: &str) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v).map_err(|e| DeError(format!("field `{key}`: {e}"))),
        None => T::from_value(&Value::Null).map_err(|_| DeError(format!("missing field `{key}`"))),
    }
}

// --- primitive impls --------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<char, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::new("expected single-char string"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new("expected single-char string")),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let wide: i128 = match v {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    Value::Float(f) if f.fract() == 0.0 => *f as i128,
                    other => {
                        return Err(DeError(format!(
                            "expected integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError(format!("integer {wide} out of range")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let wide: i128 = match v {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    Value::Float(f) if f.fract() == 0.0 => *f as i128,
                    other => {
                        return Err(DeError(format!(
                            "expected integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError(format!("integer {wide} out of range")))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(DeError(format!(
                        "expected number, got {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

// --- composite impls --------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, DeError> {
        let arr = v
            .as_array()
            .ok_or_else(|| DeError(format!("expected array, got {}", v.kind())))?;
        arr.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<($($t,)+), DeError> {
                let arr = v
                    .as_array()
                    .ok_or_else(|| DeError(format!("expected tuple array, got {}", v.kind())))?;
                const LEN: usize = [$($n),+].len();
                if arr.len() != LEN {
                    return Err(DeError(format!(
                        "expected tuple of {LEN}, got array of {}",
                        arr.len()
                    )));
                }
                Ok(($($t::from_value(&arr[$n])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Map key types: JSON object keys are strings, so integer keys round-trip
/// through their decimal representation (serde_json's convention).
pub trait MapKey: Sized {
    /// Renders the key.
    fn to_key(&self) -> String;
    /// Parses the key.
    ///
    /// # Errors
    /// [`DeError`] when the string is not a valid key of this type.
    fn from_key(s: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<String, DeError> {
        Ok(s.to_string())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<$t, DeError> {
                s.parse().map_err(|_| DeError(format!("bad integer key `{s}`")))
            }
        }
    )*};
}
impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K, V, S> Serialize for std::collections::HashMap<K, V, S>
where
    K: MapKey,
    V: Serialize,
    S: std::hash::BuildHasher,
{
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for std::collections::HashMap<K, V>
where
    K: MapKey + std::hash::Hash + Eq,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError(format!("expected map object, got {}", v.kind())))?;
        obj.iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError(format!("expected map object, got {}", v.kind())))?;
        obj.iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

// Identity impls so code can (de)serialize an already-built tree — e.g. a
// codec that parses a frame, strips transport metadata, and re-renders it.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, DeError> {
        Ok(v.clone())
    }
}

impl Deserialize for () {
    fn from_value(_: &Value) -> Result<(), DeError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::value::Value;
    use super::*;

    #[test]
    fn option_and_missing_field_semantics() {
        let obj = vec![("present".to_string(), Value::UInt(3))];
        let p: Option<u64> = field(&obj, "present").unwrap();
        let a: Option<u64> = field(&obj, "absent").unwrap();
        assert_eq!(p, Some(3));
        assert_eq!(a, None);
        let e: Result<u64, _> = field(&obj, "absent");
        assert!(e.is_err());
    }

    #[test]
    fn u64_precision_survives() {
        let big = u64::MAX - 7;
        let v = big.to_value();
        assert_eq!(u64::from_value(&v).unwrap(), big);
    }

    #[test]
    fn tuples_and_vecs_round_trip() {
        let x: Vec<(u32, i64)> = vec![(1, -2), (3, -4)];
        let v = x.to_value();
        assert_eq!(<Vec<(u32, i64)>>::from_value(&v).unwrap(), x);
    }

    #[test]
    fn hashmap_int_keys_become_strings() {
        let mut m = std::collections::HashMap::new();
        m.insert(42u64, "x".to_string());
        let v = m.to_value();
        assert_eq!(v.get("42").and_then(Value::as_str), Some("x"));
        let back: std::collections::HashMap<u64, String> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }
}
