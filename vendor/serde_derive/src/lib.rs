//! Derive macros for the vendored value-tree serde.
//!
//! Hand-rolled over `proc_macro` token trees (the environment has no
//! `syn`/`quote`). Supports the shapes this workspace derives: non-generic
//! structs (named, tuple, unit) and enums (unit, tuple and struct
//! variants). The generated impls target the vendored `serde` crate's
//! `to_value`/`from_value` traits.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serialize codegen must parse")
}

/// Derives `serde::Deserialize` (value-tree flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("deserialize codegen must parse")
}

// --- item model -------------------------------------------------------------

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

enum Shape {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Item {
    name: String,
    shape: Shape,
}

// --- parsing ----------------------------------------------------------------

type Iter = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

fn skip_attributes(it: &mut Iter) {
    while let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() != '#' {
            break;
        }
        it.next();
        // Outer attribute body: `[...]`.
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
            other => panic!("serde derive: malformed attribute near {other:?}"),
        }
    }
}

fn skip_visibility(it: &mut Iter) {
    if let Some(TokenTree::Ident(id)) = it.peek() {
        if id.to_string() == "pub" {
            it.next();
            if let Some(TokenTree::Group(g)) = it.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    it.next(); // pub(crate) / pub(super)
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut it: Iter = input.into_iter().peekable();
    skip_attributes(&mut it);
    skip_visibility(&mut it);
    let kw = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected struct/enum, got {other:?}"),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            panic!("serde derive stub: generic type `{name}` is not supported");
        }
    }
    match kw.as_str() {
        "struct" => {
            let fields = match it.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_named_fields(g.stream())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item {
                name,
                shape: Shape::Struct(fields),
            }
        }
        "enum" => {
            let body = match it.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde derive: expected enum body, got {other:?}"),
            };
            Item {
                name,
                shape: Shape::Enum(parse_variants(body)),
            }
        }
        other => panic!("serde derive: cannot derive for `{other}` items"),
    }
}

/// Consumes tokens of one type expression: everything up to a comma at
/// zero angle-bracket depth. Grouped tokens (parens, brackets) arrive as
/// single trees, so only `<`/`>` need counting.
fn skip_type(it: &mut Iter) {
    let mut angle_depth = 0i32;
    while let Some(tt) = it.peek() {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                ',' if angle_depth == 0 => return,
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                _ => {}
            }
        }
        it.next();
    }
}

fn parse_named_fields(body: TokenStream) -> Fields {
    let mut names = Vec::new();
    let mut it: Iter = body.into_iter().peekable();
    loop {
        skip_attributes(&mut it);
        skip_visibility(&mut it);
        let Some(tt) = it.next() else { break };
        let TokenTree::Ident(field) = tt else {
            panic!("serde derive: expected field name, got {tt:?}");
        };
        names.push(field.to_string());
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field, got {other:?}"),
        }
        skip_type(&mut it);
        // Consume the separating comma, if any.
        if let Some(TokenTree::Punct(p)) = it.peek() {
            if p.as_char() == ',' {
                it.next();
            }
        }
    }
    Fields::Named(names)
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut it: Iter = body.into_iter().peekable();
    let mut count = 0;
    loop {
        skip_attributes(&mut it);
        skip_visibility(&mut it);
        if it.peek().is_none() {
            break;
        }
        count += 1;
        skip_type(&mut it);
        if let Some(TokenTree::Punct(p)) = it.peek() {
            if p.as_char() == ',' {
                it.next();
            }
        }
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<(String, Fields)> {
    let mut variants = Vec::new();
    let mut it: Iter = body.into_iter().peekable();
    loop {
        skip_attributes(&mut it);
        let Some(tt) = it.next() else { break };
        let TokenTree::Ident(name) = tt else {
            panic!("serde derive: expected variant name, got {tt:?}");
        };
        let fields = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                it.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                it.next();
                f
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the next comma.
        if let Some(TokenTree::Punct(p)) = it.peek() {
            if p.as_char() == '=' {
                it.next();
                skip_type(&mut it);
            }
        }
        if let Some(TokenTree::Punct(p)) = it.peek() {
            if p.as_char() == ',' {
                it.next();
            }
        }
        variants.push((name.to_string(), fields));
    }
    variants
}

// --- codegen ----------------------------------------------------------------

const V: &str = "::serde::value::Value";

fn named_fields_to_object(names: &[String], prefix: &str) -> String {
    let entries: Vec<String> = names
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({prefix}{f}))"
            )
        })
        .collect();
    format!("{V}::Object(::std::vec![{}])", entries.join(", "))
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Unit) => format!("{V}::Null"),
        Shape::Struct(Fields::Named(fields)) => named_fields_to_object(fields, "&self."),
        Shape::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Struct(Fields::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("{V}::Array(::std::vec![{}])", elems.join(", "))
        }
        Shape::Enum(variants) => {
            let mut arms = Vec::new();
            for (vname, fields) in variants {
                let arm = match fields {
                    Fields::Unit => format!(
                        "{name}::{vname} => {V}::Str(::std::string::String::from(\"{vname}\"))"
                    ),
                    Fields::Tuple(1) => format!(
                        "{name}::{vname}(__f0) => {V}::Object(::std::vec![(\
                         ::std::string::String::from(\"{vname}\"), \
                         ::serde::Serialize::to_value(__f0))])"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{vname}({}) => {V}::Object(::std::vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             {V}::Array(::std::vec![{}]))])",
                            binds.join(", "),
                            elems.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let obj = named_fields_to_object(fs, "");
                        format!(
                            "{name}::{vname} {{ {binds} }} => {V}::Object(::std::vec![(\
                             ::std::string::String::from(\"{vname}\"), {obj})])"
                        )
                    }
                };
                arms.push(arm);
            }
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> {V} {{ {body} }}\n\
         }}"
    )
}

fn named_fields_from_object(names: &[String], obj_var: &str) -> String {
    let fields: Vec<String> = names
        .iter()
        .map(|f| format!("{f}: ::serde::field({obj_var}, \"{f}\")?"))
        .collect();
    fields.join(", ")
}

fn tuple_from_array(n: usize, ty: &str, arr_var: &str) -> String {
    let elems: Vec<String> = (0..n)
        .map(|i| format!("::serde::Deserialize::from_value(&{arr_var}[{i}])?"))
        .collect();
    format!(
        "if {arr_var}.len() != {n} {{ \
         return ::std::result::Result::Err(::serde::DeError::new(::std::format!(\
         \"expected {n} elements for {ty}, got {{}}\", {arr_var}.len()))); }} \
         {ty}({})",
        elems.join(", ")
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Unit) => format!("::std::result::Result::Ok({name})"),
        Shape::Struct(Fields::Named(fields)) => format!(
            "let __obj = __v.as_object().ok_or_else(|| ::serde::DeError::new(\
             ::std::format!(\"expected object for {name}, got {{}}\", __v.kind())))?;\n\
             ::std::result::Result::Ok({name} {{ {} }})",
            named_fields_from_object(fields, "__obj")
        ),
        Shape::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::Struct(Fields::Tuple(n)) => format!(
            "let __arr = __v.as_array().ok_or_else(|| ::serde::DeError::new(\
             ::std::format!(\"expected array for {name}, got {{}}\", __v.kind())))?;\n\
             ::std::result::Result::Ok({{ {} }})",
            tuple_from_array(*n, name, "__arr")
        ),
        Shape::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut data_arms = Vec::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => unit_arms.push(format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname})"
                    )),
                    Fields::Tuple(1) => data_arms.push(format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(__pv)?))"
                    )),
                    Fields::Tuple(n) => data_arms.push(format!(
                        "\"{vname}\" => {{ \
                         let __arr = __pv.as_array().ok_or_else(|| ::serde::DeError::new(\
                         \"expected array payload for {name}::{vname}\"))?; \
                         ::std::result::Result::Ok({{ {} }}) }}",
                        tuple_from_array(*n, &format!("{name}::{vname}"), "__arr")
                    )),
                    Fields::Named(fs) => data_arms.push(format!(
                        "\"{vname}\" => {{ \
                         let __obj = __pv.as_object().ok_or_else(|| ::serde::DeError::new(\
                         \"expected object payload for {name}::{vname}\"))?; \
                         ::std::result::Result::Ok({name}::{vname} {{ {} }}) }}",
                        named_fields_from_object(fs, "__obj")
                    )),
                }
            }
            let unit_match = format!(
                "match __s.as_str() {{ {}{} __other => ::std::result::Result::Err(\
                 ::serde::DeError::new(::std::format!(\
                 \"unknown {name} variant `{{__other}}`\"))) }}",
                unit_arms.join(", "),
                if unit_arms.is_empty() { "" } else { "," }
            );
            let data_match = format!(
                "match __k.as_str() {{ {}{} __other => ::std::result::Result::Err(\
                 ::serde::DeError::new(::std::format!(\
                 \"unknown {name} variant `{{__other}}`\"))) }}",
                data_arms.join(", "),
                if data_arms.is_empty() { "" } else { "," }
            );
            format!(
                "match __v {{\n\
                 {V}::Str(__s) => {unit_match},\n\
                 {V}::Object(__o) if __o.len() == 1 => {{\n\
                 let (__k, __pv) = &__o[0];\n\
                 {data_match}\n\
                 }},\n\
                 __other => ::std::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"expected {name} variant, got {{}}\", __other.kind())))\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &{V}) -> ::std::result::Result<{name}, ::serde::DeError> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}
