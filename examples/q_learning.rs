//! Tabular Q-learning on the loop_tool environment — the paper's
//! documentation includes Q-learning and Actor-Critic samples (§VI); the
//! loop-nest task has a small discrete state space, making it the natural
//! tabular playground.
//!
//! Run with: `cargo run --release --example q_learning`

use std::collections::HashMap;

use rand::{Rng as _, SeedableRng as _};

/// Discretized state: (cursor, mode, #loops, log2-bucketed thread count).
fn state_key(obs: &cg_core::Observation) -> (i64, i64, i64, i64) {
    let v = obs.as_int_vector().expect("ActionState is an int vector");
    (v[0], v[1], v[2], (v[3].max(1) as f64).log2() as i64)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut env = cg_core::make("loop_tool-v0")?;
    env.set_benchmark("benchmark://loop_tool-v0/1048576");
    let n_actions = {
        env.reset()?;
        env.action_space().len()
    };

    let mut q: HashMap<(i64, i64, i64, i64), Vec<f64>> = HashMap::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let (alpha, gamma) = (0.3, 0.9);
    let episodes = 60;
    let steps = 12;
    let mut best = f64::NEG_INFINITY;
    for ep in 0..episodes {
        let eps = 1.0 - ep as f64 / episodes as f64;
        let mut obs = env.reset()?;
        let mut s = state_key(&obs);
        for _ in 0..steps {
            let qs = q.entry(s).or_insert_with(|| vec![0.0; n_actions]);
            let a = if rng.gen_bool(eps) {
                rng.gen_range(0..n_actions)
            } else {
                qs.iter()
                    .enumerate()
                    .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
                    .map(|(i, _)| i)
                    .unwrap()
            };
            let step = env.step(a)?;
            obs = step.observation;
            let s2 = state_key(&obs);
            let max_next = q
                .get(&s2)
                .map(|v| v.iter().cloned().fold(f64::NEG_INFINITY, f64::max))
                .unwrap_or(0.0);
            let entry = q.get_mut(&s).expect("inserted above");
            // Rewards are FLOPs deltas: squash to keep the table stable.
            let r = (step.reward / 1e9).clamp(-100.0, 100.0);
            entry[a] += alpha * (r + gamma * max_next - entry[a]);
            s = s2;
        }
        let flops = env.observe("Flops")?.as_scalar().unwrap();
        if flops > best {
            best = flops;
            println!("episode {ep:>3}: new best {:.2} GFLOPs", best / 1e9);
        }
    }
    println!(
        "learned table has {} states; best configuration: {:.2} GFLOPs",
        q.len(),
        best / 1e9
    );
    Ok(())
}
