//! Training a PPO agent on the Autophase-replica environment stack
//! (42-action subset, feature + action-histogram observation, 45-step
//! episodes) and evaluating against -Oz — Listing 2's workflow without
//! RLlib.
//!
//! Run with: `cargo run --release --example rl_train`

use cg_core::wrappers::{ActionSubset, ConcatActionHistogram, CycleOverBenchmarks, TimeLimit};
use cg_rl::{Algo, TrainConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train on a handful of Csmith programs.
    let train: Vec<String> = (0..6)
        .map(|i| format!("benchmark://csmith-v0/{}", 100 + i))
        .collect();
    let env = cg_core::make("llvm-autophase-ic-v0")?;
    let subset: Vec<usize> = cg_llvm::action_space::autophase_subset()
        .iter()
        .map(|n| env.action_space().index_of(n).unwrap())
        .collect();
    let stack = CycleOverBenchmarks::new(ActionSubset::new(env, subset), train);
    let mut stack = TimeLimit::new(ConcatActionHistogram::new(stack), 45);

    let feat_dim = cg_llvm::observation::AUTOPHASE_DIM + 42;
    let cfg = TrainConfig {
        episodes: 40,
        steps: 45,
        ..TrainConfig::default()
    };
    println!("training PPO for {} episodes…", cfg.episodes);
    let (_policy, curve) = Algo::Ppo.train(&mut stack, feat_dim, &cfg)?;
    let early: f64 = curve.iter().take(10).sum::<f64>() / 10.0;
    let late: f64 = curve.iter().rev().take(10).sum::<f64>() / 10.0;
    println!("mean episode reward: first 10 = {early:+.3}, last 10 = {late:+.3}");
    println!("(rewards are fractions of the -Oz gain; 1.0 = matched -Oz)");
    Ok(())
}
