//! State serialization, replay and validation (§III-B2/B3): save an
//! episode, reload it, prove it reproducible — the machinery behind the
//! public leaderboards.
//!
//! Run with: `cargo run --example state_validation`

use cg_core::EnvState;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut env = cg_core::make("llvm-v0")?;
    env.set_benchmark("benchmark://cbench-v1/sha");
    env.reset()?;
    for name in ["mem2reg", "gvn", "instcombine", "dce", "simplifycfg"] {
        let idx = env.action_space().index_of(name).unwrap();
        env.step(idx)?;
    }
    let state = env.state();
    let json = state.to_json();
    println!("serialized episode state:\n{json}\n");

    // A leaderboard server would replay and validate the submission:
    let parsed = EnvState::from_json(&json)?;
    parsed.validate()?;
    println!("validation passed: the result is reproducible");

    // Tampering is caught.
    let mut forged = parsed.clone();
    forged.reward *= 2.0;
    match forged.validate() {
        Err(e) => println!("forged submission rejected: {e}"),
        Ok(()) => println!("BUG: forged submission accepted!"),
    }
    Ok(())
}
