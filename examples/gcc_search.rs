//! Tuning GCC command-line flags with hill climbing (the Table V workflow
//! at example scale): 502 options, object-size objective, -Os baseline.
//!
//! Run with: `cargo run --example gcc_search [benchmark]`

use cg_autotune as at;
use cg_autotune::SearchProblem as _;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let benchmark = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "benchmark://chstone-v0/adpcm".to_string());
    let mut problem = at::GccChoicesProblem::new(cg_gcc::GccSpec::v11_2(), &benchmark)?;
    let os_size = problem.baseline_os_size()?;
    println!("{benchmark}: -Os object size = {os_size} bytes");

    let mut rng = at::rng(1);
    let res = at::hill_climb(&mut problem, 150, &mut rng);
    let best = -res.score;
    println!(
        "hill climbing, 150 compilations: {best} bytes ({:.3}x vs -Os)",
        os_size / best
    );
    // Show the winning command line.
    let space = cg_gcc::OptionSpace::for_version(&cg_gcc::GccSpec::v11_2());
    let mut cmd = space.command_line(&res.best);
    if cmd.len() > 160 {
        cmd.truncate(160);
        cmd.push_str(" …");
    }
    println!("best command line: {cmd}");
    let _ = problem.evaluate(&res.best);
    Ok(())
}
