//! Adding a new compiler to the system (§IV-A): implement the four-method
//! `CompilationSession` interface and the shared runtime provides RPC,
//! fault tolerance, and the Gym API — the Listing 3 workflow.
//!
//! The toy "compiler" here optimizes a string of parentheses; its action
//! space has two "passes" and its reward is the string length.
//!
//! Run with: `cargo run --example custom_compiler`

use std::sync::Arc;
use std::time::Duration;

use cg_core::service::{Request, Response, ServiceClient};
use cg_core::session::{ActionOutcome, CompilationSession};
use cg_core::space::{
    ActionSpaceInfo, Observation, ObservationKind, ObservationSpaceInfo, RewardSpaceInfo,
};

/// The entire compiler integration: one struct, four required methods.
struct ParenSession {
    program: String,
}

impl CompilationSession for ParenSession {
    fn action_spaces(&self) -> Vec<ActionSpaceInfo> {
        vec![ActionSpaceInfo {
            name: "ParenPasses".into(),
            actions: vec!["remove-empty-pairs".into(), "dedup-runs".into()],
        }]
    }

    fn observation_spaces(&self) -> Vec<ObservationSpaceInfo> {
        vec![
            ObservationSpaceInfo {
                name: "Source".into(),
                kind: ObservationKind::Text,
                deterministic: true,
                platform_dependent: false,
            },
            ObservationSpaceInfo {
                name: "Length".into(),
                kind: ObservationKind::Scalar,
                deterministic: true,
                platform_dependent: false,
            },
        ]
    }

    fn reward_spaces(&self) -> Vec<RewardSpaceInfo> {
        vec![RewardSpaceInfo {
            name: "Length".into(),
            metric: "Length".into(),
            sign: 1.0,
            baseline: None,
            deterministic: true,
        }]
    }

    fn init(&mut self, benchmark: &str, _action_space: usize) -> Result<(), String> {
        // The "benchmark" is the program text itself.
        self.program = benchmark.to_string();
        Ok(())
    }

    fn apply_action(&mut self, action: usize) -> Result<ActionOutcome, String> {
        let before = self.program.clone();
        match action {
            0 => {
                while self.program.contains("()") {
                    self.program = self.program.replace("()", "");
                }
            }
            1 => {
                while self.program.contains("((") && self.program.contains("))") {
                    self.program = self.program.replacen("((", "(", 1).replacen("))", ")", 1);
                }
            }
            other => return Err(format!("unknown action {other}")),
        }
        Ok(ActionOutcome {
            end_of_episode: self.program.is_empty(),
            action_space_changed: false,
            changed: self.program != before,
        })
    }

    fn observe(&mut self, space: &str) -> Result<Observation, String> {
        match space {
            "Source" => Ok(Observation::Text(self.program.clone())),
            "Length" => Ok(Observation::Scalar(self.program.len() as f64)),
            other => Err(format!("unknown observation space {other}")),
        }
    }

    fn fork(&self) -> Box<dyn CompilationSession> {
        Box::new(ParenSession {
            program: self.program.clone(),
        })
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // createAndRunService: hand the session type to the shared runtime.
    let factory: cg_core::service::SessionFactory = Arc::new(|| {
        Box::new(ParenSession {
            program: String::new(),
        })
    });
    let client = ServiceClient::spawn(factory, Duration::from_secs(10));

    let sid = match client.call(Request::StartSession {
        benchmark: "((()))()((x))".into(),
        action_space: 0,
    })? {
        Response::SessionStarted { session_id } => session_id,
        r => panic!("unexpected {r:?}"),
    };
    for action in [0usize, 1, 0] {
        let r = client.call(Request::Step {
            session_id: sid,
            actions: vec![action],
            observation_spaces: vec!["Source".into(), "Length".into()],
        })?;
        if let Response::Stepped { observations, .. } = r {
            println!(
                "after action {action}: {:?} (len {})",
                observations[0].as_text().unwrap(),
                observations[1].as_scalar().unwrap()
            );
        }
    }
    println!("a full compiler integration in ~60 lines — the runtime did the rest");
    Ok(())
}
