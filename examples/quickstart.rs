//! The Listing 1 quickstart: create an environment, take random actions,
//! watch rewards, save the result.
//!
//! Run with: `cargo run --example quickstart`

use rand::Rng as _;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Create a new environment, selecting the compiler to use, the program
    // to compile, the feature vector, and the optimization target.
    let mut env = cg_core::make("llvm-v0")?;
    env.set_benchmark("benchmark://cbench-v1/qsort");
    env.set_observation_space("Autophase");
    env.set_reward_space("IrInstructionCount");

    // Start a new compilation session.
    let mut observation = env.reset()?;
    println!(
        "initial observation: {} features",
        observation.as_int_vector().unwrap().len()
    );

    // Run a hundred random optimizations. Each step produces a new state
    // observation and reward.
    let mut rng = rand::thread_rng();
    let n = env.action_space().len();
    for i in 0..100 {
        let action = rng.gen_range(0..n);
        let step = env.step(action)?;
        observation = step.observation;
        if step.reward != 0.0 {
            println!(
                "step {i:>3}: {:<24} reward {:+.0}",
                env.action_space().actions[action],
                step.reward
            );
        }
        if step.done {
            observation = env.reset()?;
        }
    }
    let _ = observation;

    // Save the output program (the analogue of env.write_bitcode).
    let ir = env.observe("Ir")?;
    std::fs::write("/tmp/output.ir", ir.as_text().unwrap())?;
    println!(
        "episode reward: {:+.0} instructions; final IR written to /tmp/output.ir",
        env.episode_reward()
    );
    Ok(())
}
