//! Autotuning the LLVM phase-ordering task: greedy search versus random
//! search versus the Nevergrad-style ensemble on a cBench program, reported
//! against the -Oz baseline (the Table IV workflow at example scale).
//!
//! Run with: `cargo run --example autotune_llvm [benchmark]`

use cg_autotune as at;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let benchmark = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "benchmark://cbench-v1/crc32".to_string());

    let mut env = cg_core::make("llvm-v0")?;
    env.set_benchmark(&benchmark);
    env.reset()?;
    let init = env.observe("IrInstructionCount")?.as_scalar().unwrap();
    let oz = env.observe("IrInstructionCountOz")?.as_scalar().unwrap();
    println!("{benchmark}: {init} instructions unoptimized, {oz} at -Oz");

    // Greedy search (the 7-line technique).
    let cands: Vec<usize> = cg_llvm::action_space::autophase_subset()
        .iter()
        .map(|n| env.action_space().index_of(n).unwrap())
        .collect();
    let (actions, reward) = at::greedy_search(&mut env, &cands, 16)?;
    let greedy_size = init - reward;
    println!(
        "greedy:    {} passes -> {} instructions ({:.3}x vs -Oz)",
        actions.len(),
        greedy_size,
        oz / greedy_size
    );

    // Random and ensemble search over 16-pass sequences.
    for (name, which) in [("random", 0), ("nevergrad", 1)] {
        let mut fresh = cg_core::make("llvm-v0")?;
        fresh.set_benchmark(&benchmark);
        let mut problem = at::PassSequenceProblem::new(fresh, 16);
        let mut rng = at::rng(7);
        let res = if which == 0 {
            at::random_search(&mut problem, 60, &mut rng)
        } else {
            at::nevergrad_style(&mut problem, 60, &mut rng)
        };
        let size = init - res.score;
        println!(
            "{name:<10} 60 evals -> {} instructions ({:.3}x vs -Oz)",
            size,
            oz / size
        );
    }
    Ok(())
}
