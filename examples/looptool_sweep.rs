//! Interacting with the loop_tool CUDA environment: threading the loop,
//! splitting it, and sweeping inner sizes (the §VII-E workflow).
//!
//! Run with: `cargo run --example looptool_sweep`

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut env = cg_core::make("loop_tool-v0")?;
    env.set_benchmark("benchmark://loop_tool-v0/1048576");
    env.reset()?;
    let space = env.action_space().clone();
    let act = |name: &str| space.index_of(name).unwrap();

    println!(
        "initial loop tree:\n{}",
        env.observe("LoopTree")?.as_text().unwrap()
    );
    let before = env.observe("Flops")?.as_scalar().unwrap();

    // Thread the outer loop.
    let step = env.step(act("toggle_thread"))?;
    let after = env.observe("Flops")?.as_scalar().unwrap();
    println!(
        "threaded the outer loop: {:.2} -> {:.2} GFLOPs (reward {:+.2e})",
        before / 1e9,
        after / 1e9,
        step.reward
    );
    println!(
        "tuned loop tree:\n{}",
        env.observe("LoopTree")?.as_text().unwrap()
    );
    Ok(())
}
