//! Property-based tests (proptest): universal invariants over randomly
//! generated programs and pass sequences — the repository-side analogue of
//! the paper's daily fuzz jobs (§VI).

use std::time::Duration;

use proptest::prelude::*;

use cg_core::chaos::{FaultKind, FaultPlan};
use cg_core::envs::session_factory;
use cg_ir::interp::{run_main, ExecLimits};
use cg_ir::verify::verify_module;

fn csmith(seed: u32) -> cg_ir::Module {
    cg_datasets::benchmark(&format!("benchmark://csmith-v0/{seed}")).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Every generator output verifies, and generation is a pure function of
    /// the seed.
    #[test]
    fn generated_modules_verify_and_are_deterministic(seed in 0u32..1_000_000) {
        let a = csmith(seed);
        verify_module(&a).unwrap();
        let b = csmith(seed);
        prop_assert_eq!(cg_ir::module_hash(&a), cg_ir::module_hash(&b));
    }

    /// print → parse → print is a fixpoint on arbitrary generated programs.
    #[test]
    fn printer_parser_roundtrip(seed in 0u32..1_000_000) {
        let m = csmith(seed);
        let text = cg_ir::printer::print_module(&m);
        let back = cg_ir::parser::parse_module(&text).unwrap();
        prop_assert_eq!(text, cg_ir::printer::print_module(&back));
    }

    /// Csmith programs are runnable: no traps, deterministic results.
    #[test]
    fn csmith_runs_trap_free_and_deterministically(seed in 0u32..1_000_000) {
        let m = csmith(seed);
        let limits = ExecLimits::default();
        let a = run_main(&m, &limits).unwrap();
        let b = run_main(&m, &limits).unwrap();
        prop_assert_eq!(a.ret, b.ret);
        prop_assert_eq!(a.globals_hash, b.globals_hash);
    }

    /// Any sequence of actions preserves validity AND observable behaviour —
    /// the master invariant of the whole system.
    #[test]
    fn random_pass_sequences_preserve_semantics(
        seed in 0u32..100_000,
        actions in proptest::collection::vec(0usize..124, 1..10),
    ) {
        let space = cg_llvm::action_space::ActionSpace::new();
        let m = csmith(seed);
        let limits = ExecLimits::default();
        let reference = run_main(&m, &limits).unwrap();
        let mut opt = m.clone();
        for a in actions {
            space.apply(&mut opt, a);
        }
        verify_module(&opt).unwrap();
        let out = run_main(&opt, &limits).unwrap();
        prop_assert_eq!(out.ret, reference.ret);
    }

    /// The -Oz pipeline never grows a module and never breaks it.
    #[test]
    fn oz_is_monotone_and_sound(seed in 0u32..100_000) {
        let m = csmith(seed);
        let before = m.inst_count();
        let reference = run_main(&m, &ExecLimits::default()).unwrap();
        let mut opt = m;
        cg_llvm::pipeline::run_oz(&mut opt);
        verify_module(&opt).unwrap();
        prop_assert!(opt.inst_count() <= before);
        let out = run_main(&opt, &ExecLimits::default()).unwrap();
        prop_assert_eq!(out.ret, reference.ret);
    }

    /// GCC compilation is deterministic in (module, choices), and -O levels
    /// never beat the unoptimized build at being *larger* (sizes stay
    /// positive and finite).
    #[test]
    fn gcc_compile_total_and_deterministic(
        seed in 0u32..100_000,
        level in 0usize..6,
    ) {
        let space = cg_gcc::OptionSpace::for_version(&cg_gcc::GccSpec::v11_2());
        let m = csmith(seed);
        let choices = space.choices_for_level(level);
        let a = cg_gcc::compile(&m, &space, &choices);
        let b = cg_gcc::compile(&m, &space, &choices);
        prop_assert_eq!(a.obj_size, b.obj_size);
        prop_assert!(a.obj_size > 0);
        prop_assert_eq!(a.asm_text, b.asm_text);
    }

    /// Arbitrary flat-action sequences keep GCC choice vectors in range.
    #[test]
    fn gcc_flat_actions_stay_in_range(
        picks in proptest::collection::vec(0usize..2281, 0..64),
    ) {
        let space = cg_gcc::OptionSpace::for_version(&cg_gcc::GccSpec::v11_2());
        let actions = space.flat_actions();
        let mut choices = space.default_choices();
        for p in picks {
            let a = actions[p % actions.len()];
            space.apply_flat(&mut choices, &a);
        }
        for (c, o) in choices.iter().zip(space.options()) {
            prop_assert!(*c < o.cardinality);
        }
    }

    /// Arbitrary loop_tool action sequences keep the nest covering the
    /// problem (outer × inner ≥ n) and never crash.
    #[test]
    fn looptool_actions_preserve_coverage(
        ops in proptest::collection::vec(0usize..5, 0..64),
    ) {
        use cg_looptool::{Action, LoopNest};
        let mut nest = LoopNest::pointwise_add(10_000);
        for o in ops {
            nest.apply(Action::extended()[o]);
        }
        let covered: u64 = nest.loops.iter().map(|l| l.size.max(1)).product();
        prop_assert!(covered >= 10_000);
        prop_assert!(nest.flops_deterministic() > 0.0);
        prop_assert!(nest.cursor < nest.loops.len());
    }
}

proptest! {
    // Each case spawns two services and runs a full episode twice; keep the
    // case count low.
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// The fault-tolerance master invariant: killing the compiler service at
    /// an arbitrary point of an arbitrary episode and replaying the action
    /// history yields byte-identical state — same observation vector, same
    /// cumulative reward — as the uninterrupted episode.
    #[test]
    fn kill_and_replay_matches_uninterrupted(
        seed in 0u32..10_000,
        actions in proptest::collection::vec(0usize..124, 1..8),
        fault_pos in 0usize..8,
    ) {
        let fault_at = (fault_pos % actions.len()) as u64;
        let bench = format!("benchmark://csmith-v0/{seed}");
        let mk = |factory| cg_core::CompilerEnv::with_factory(
            "llvm-v0", factory, &bench, "Autophase", "IrInstructionCount",
            Duration::from_secs(30),
        ).unwrap();
        // Uninterrupted reference episode.
        let mut a = mk(session_factory("llvm-v0").unwrap());
        a.reset().unwrap();
        for &x in &actions {
            a.step(x).unwrap();
        }
        // The same episode, with the service panicking mid-flight.
        let (factory, stats) = FaultPlan::seeded(u64::from(seed))
            .schedule(fault_at, FaultKind::Panic)
            .wrap(session_factory("llvm-v0").unwrap());
        let mut b = mk(factory);
        b.reset().unwrap();
        for &x in &actions {
            b.step(x).unwrap();
        }
        prop_assert_eq!(stats.panics(), 1);
        prop_assert!(b.service_restarts() >= 1);
        prop_assert!((a.episode_reward() - b.episode_reward()).abs() < 1e-9);
        prop_assert_eq!(a.observe("Autophase").unwrap(), b.observe("Autophase").unwrap());
    }
}
