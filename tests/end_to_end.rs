//! Cross-crate integration tests: the full environment loop, pipelines,
//! semantics validation, autotuning, RL training, the state-transition
//! database, and the fault-tolerance/reproducibility machinery.

use cg_core::wrappers::Env as _;

#[test]
fn full_episode_with_validation_on_every_cbench_program() {
    // A five-pass episode on every cBench program: rewards must be
    // non-negative in sum (these passes never grow code), the module must
    // stay semantically correct, and the recorded state must validate.
    let mut env = cg_core::make("llvm-v0").unwrap();
    for name in cg_datasets::CBENCH.iter().take(8) {
        let uri = format!("benchmark://cbench-v1/{name}");
        env.set_benchmark(&uri);
        env.reset().unwrap();
        let reference = cg_datasets::benchmark(&uri).unwrap();
        for pass in ["mem2reg", "instcombine", "gvn", "dce", "simplifycfg"] {
            let idx = env.action_space().index_of(pass).unwrap();
            env.step(idx).unwrap();
        }
        assert!(env.episode_reward() > 0.0, "{name}: no gain");
        // Differential semantics validation.
        let ir = env.observe("Ir").unwrap();
        let optimized = cg_ir::parser::parse_module(ir.as_text().unwrap()).unwrap();
        let verdict = cg_core::validation::validate_semantics(&reference, &optimized).unwrap();
        assert!(
            matches!(verdict, cg_core::validation::SemanticsVerdict::Ok { runs } if runs >= 1),
            "{name}: {verdict:?}"
        );
    }
}

#[test]
fn validation_catches_gvn_sink_nondeterminism() {
    // The paper's reproducibility story (§III-B3): LLVM's -gvn-sink ordered
    // blocks by pointer address; CompilerGym's state validation caught it
    // and the pass was quarantined. Our gvn-sink reproduces the bug; the
    // module-hash replay check must be able to see it.
    use cg_llvm::pass::Pass as _;
    let pass = cg_llvm::passes::gvn::GvnSink;
    let base = cg_datasets::benchmark("benchmark://cbench-v1/ghostscript").unwrap();
    let mut hashes = std::collections::HashSet::new();
    let mut ballast: Vec<Vec<u8>> = Vec::new();
    for i in 0..40 {
        // Perturb the allocator between runs, as unrelated work would in a
        // long-lived process.
        ballast.push(vec![0u8; 64 + 37 * i]);
        let mut m = base.clone();
        pass.run(&mut m);
        cg_ir::verify::verify_module(&m).unwrap();
        hashes.insert(cg_ir::module_hash(&m));
    }
    assert!(
        hashes.len() > 1,
        "gvn-sink should be nondeterministic across heap states; \
         if this fails the quarantined-pass reproduction lost its bug"
    );
    // And the action space correctly refuses to expose it.
    assert_eq!(
        cg_llvm::action_space::ActionSpace::new().index_of("gvn-sink"),
        None
    );
}

#[test]
fn deterministic_passes_replay_identically() {
    // The converse: every action-space pass IS deterministic under heap
    // perturbation (the property gvn-sink violates).
    let base = cg_datasets::benchmark("benchmark://cbench-v1/qsort").unwrap();
    let space = cg_llvm::action_space::ActionSpace::new();
    let mut ballast: Vec<Vec<u8>> = Vec::new();
    for name in [
        "mem2reg",
        "gvn",
        "early-cse",
        "sccp",
        "inline-100",
        "loop-unroll-4",
    ] {
        let idx = space.index_of(name).unwrap();
        let mut hashes = std::collections::HashSet::new();
        for i in 0..5 {
            ballast.push(vec![0u8; 128 + 91 * i]);
            let mut m = base.clone();
            space.apply(&mut m, idx);
            hashes.insert(cg_ir::module_hash(&m));
        }
        assert_eq!(hashes.len(), 1, "{name} is nondeterministic!");
    }
}

#[test]
fn oz_beats_random_and_autotuning_beats_oz() {
    // The economic premise of Table IV: -Oz is a strong baseline, and
    // search with a budget finds orderings that beat it.
    let uri = "benchmark://cbench-v1/bitcount";
    let mut env = cg_core::make("llvm-v0").unwrap();
    env.set_benchmark(uri);
    env.reset().unwrap();
    let init = env
        .observe("IrInstructionCount")
        .unwrap()
        .as_scalar()
        .unwrap();
    let oz = env
        .observe("IrInstructionCountOz")
        .unwrap()
        .as_scalar()
        .unwrap();
    assert!(oz < init);
    let cands: Vec<usize> = cg_llvm::action_space::autophase_subset()
        .iter()
        .map(|n| env.action_space().index_of(n).unwrap())
        .collect();
    let (_, reward) = cg_autotune::greedy_search(&mut env, &cands, 16).unwrap();
    let achieved = init - reward;
    assert!(
        achieved <= oz * 1.02,
        "greedy should approach or beat -Oz: {achieved} vs {oz}"
    );
}

#[test]
fn rl_training_loop_runs_and_produces_policy() {
    use cg_core::wrappers::{ActionSubset, ConcatActionHistogram, CycleOverBenchmarks, TimeLimit};
    use cg_rl::{Algo, TrainConfig};
    let benches = vec![
        "benchmark://csmith-v0/1".to_string(),
        "benchmark://csmith-v0/2".to_string(),
    ];
    let env = cg_core::make("llvm-autophase-ic-v0").unwrap();
    let subset: Vec<usize> = cg_llvm::action_space::autophase_subset()
        .iter()
        .map(|n| env.action_space().index_of(n).unwrap())
        .collect();
    let stack = CycleOverBenchmarks::new(ActionSubset::new(env, subset), benches);
    let mut stack = TimeLimit::new(ConcatActionHistogram::new(stack), 15);
    let feat = cg_llvm::observation::AUTOPHASE_DIM + 42;
    for algo in [Algo::Ppo, Algo::A2c, Algo::Apex, Algo::Impala] {
        let cfg = TrainConfig {
            episodes: 4,
            steps: 15,
            ..TrainConfig::default()
        };
        let (policy, curve) = algo.train(&mut stack, feat, &cfg).unwrap();
        assert_eq!(curve.len(), 4, "{}", algo.name());
        // The policy must produce valid actions.
        let obs = stack.reset().unwrap();
        let f = cg_rl::featurize(&obs);
        assert!(policy.act_greedy(&f) < 42);
    }
}

#[test]
fn gcc_and_looptool_envs_integrate_with_search() {
    // GCC: 30 compilations of hill climbing never end worse than start.
    let mut p =
        cg_autotune::GccChoicesProblem::new(cg_gcc::GccSpec::v5(), "benchmark://chstone-v0/gsm")
            .unwrap();
    let mut rng = cg_autotune::rng(3);
    let res = cg_autotune::hill_climb(&mut p, 30, &mut rng);
    assert!(res.score.is_finite());
    // loop_tool: threading then growing the inner loop monotonically helps.
    let mut env = cg_core::make("loop_tool-v0").unwrap();
    env.set_benchmark("benchmark://loop_tool-v0/1048576");
    env.reset().unwrap();
    let t = env.action_space().index_of("toggle_thread").unwrap();
    assert!(env.step(t).unwrap().reward > 0.0);
}

#[test]
fn state_transition_database_feeds_cost_model() {
    let db = cg_stdb::generate_database(
        &[
            "benchmark://cbench-v1/crc32".to_string(),
            "benchmark://cbench-v1/sha".to_string(),
        ],
        1,
        6,
        9,
    )
    .unwrap();
    assert!(db.unique_states() >= 4);
    // Observations carry the regression target.
    assert!(db
        .observations
        .values()
        .all(|o| o.ir_instruction_count > 0.0));
    // Transitions reference known states and are deduplicated.
    let json = db.to_json();
    let back = cg_stdb::Database::from_json(&json).unwrap();
    assert_eq!(back.transitions.len(), db.transitions.len());
}

#[test]
fn service_survives_many_sessions_and_forks() {
    let mut env = cg_core::make("llvm-v0").unwrap();
    env.set_benchmark("benchmark://cbench-v1/crc32");
    for _ in 0..5 {
        env.reset().unwrap();
        let m2r = env.action_space().index_of("mem2reg").unwrap();
        env.step(m2r).unwrap();
        let mut forks: Vec<_> = (0..4).map(|_| env.fork().unwrap()).collect();
        for f in &mut forks {
            let dce = f.action_space().index_of("dce").unwrap();
            f.step(dce).unwrap();
        }
    }
    assert_eq!(env.service_restarts(), 0, "no restarts under normal load");
}

#[test]
fn parser_printer_roundtrip_across_datasets() {
    for uri in [
        "benchmark://cbench-v1/susan",
        "benchmark://chstone-v0/aes",
        "benchmark://csmith-v0/7",
        "benchmark://llvm-stress-v0/3",
        "benchmark://github-v0/42",
    ] {
        let m = cg_datasets::benchmark(uri).unwrap();
        let text = cg_ir::printer::print_module(&m);
        let back = cg_ir::parser::parse_module(&text).unwrap();
        assert_eq!(
            text,
            cg_ir::printer::print_module(&back),
            "{uri}: print->parse->print not a fixpoint"
        );
        cg_ir::verify::verify_module(&back).unwrap();
    }
}
