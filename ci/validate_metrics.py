#!/usr/bin/env python3
"""Validate a Prometheus text-exposition (0.0.4) dump from `cg`.

Checks the line grammar (HELP/TYPE comments, sample lines with optional
labels and a float value), TYPE consistency, and the presence of the
metric families the observability layer is contractually expected to
export. Exits non-zero with a line-numbered diagnosis on any violation.
"""

import re
import sys

REQUIRED_FAMILIES = [
    "cg_requests_total",
    "cg_request_latency_micros",
    "cg_restarts_total",
    "cg_recoveries_total",
    "cg_steps_total",
    "cg_step_latency_micros",
    "cg_checkpoints_taken_total",
    "cg_checkpoint_restores_total",
    "cg_trace_spans",
    "cg_trace_dropped_total",
    "cg_episodes_recorded_total",
    "cg_episode_spans_dropped_total",
    "cg_slo_good_total",
    "cg_slo_bad_total",
    "cg_slo_compliance",
    "cg_slo_burn_rate",
    "cg_broker_admitted_total",
    "cg_broker_refused_total",
    "cg_broker_shed_total",
    "cg_broker_quota_refusals_total",
    "cg_broker_drains_total",
    "cg_broker_drained_checkpoints_total",
    "cg_broker_sessions",
    "cg_broker_queue_depth",
    "cg_broker_connections",
    "cg_broker_queue_wait_micros",
    "cg_stdb_ingest_records_total",
    "cg_stdb_ingest_bytes_total",
    "cg_stdb_dropped_records_total",
    "cg_stdb_append_retries_total",
    "cg_stdb_replay_hits_total",
    "cg_stdb_replay_misses_total",
    "cg_stdb_quarantined_records_total",
    "cg_stdb_torn_tails_total",
    "cg_stdb_scrub_corrupt_total",
    "cg_stdb_scrub_repaired_total",
    "cg_stdb_checkpoint_rejects_total",
    "cg_stdb_compactions_total",
    "cg_stdb_segments",
    "cg_stdb_store_bytes",
    "cg_stdb_append_wall_micros",
    "cg_wire_tx_bytes_json_total",
    "cg_wire_tx_bytes_binary_total",
    "cg_wire_rx_bytes_json_total",
    "cg_wire_rx_bytes_binary_total",
    "cg_wire_frames_total",
    "cg_wire_decode_errors_total",
    "cg_wire_pipelined_calls_total",
    "cg_wire_negotiations_total",
    "cg_wire_fallbacks_total",
    "cg_wire_in_flight",
    "cg_wire_encode_micros",
    "cg_wire_decode_micros",
]

VALID_TYPES = {"counter", "gauge", "summary", "histogram", "untyped"}
NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
SAMPLE_RE = re.compile(
    rf"^({NAME})(\{{(.*)\}})?\s+(-?(?:\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|NaN|[+-]?Inf))$"
)
LABEL_RE = re.compile(rf'^({NAME})="((?:[^"\\]|\\.)*)"$')


def base_family(name: str) -> str:
    """Strips the summary/histogram suffixes back to the family name."""
    for suffix in ("_sum", "_count", "_bucket"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def main(path: str) -> int:
    with open(path, encoding="utf-8") as fh:
        lines = fh.read().splitlines()

    errors = []
    types: dict[str, str] = {}
    helped: set[str] = set()
    sampled: set[str] = set()

    for i, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 4:
                errors.append(f"line {i}: malformed HELP: {line!r}")
                continue
            helped.add(parts[2])
        elif line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in VALID_TYPES:
                errors.append(f"line {i}: malformed TYPE: {line!r}")
                continue
            if parts[2] in types:
                errors.append(f"line {i}: duplicate TYPE for {parts[2]}")
            types[parts[2]] = parts[3]
        elif line.startswith("#"):
            continue  # free-form comment
        else:
            m = SAMPLE_RE.match(line)
            if not m:
                errors.append(f"line {i}: unparseable sample: {line!r}")
                continue
            name, _, labels, _value = m.groups()
            if labels:
                for pair in split_labels(labels):
                    if not LABEL_RE.match(pair):
                        errors.append(f"line {i}: bad label {pair!r}")
            family = base_family(name)
            if family not in types and name not in types:
                errors.append(f"line {i}: sample {name} has no TYPE comment")
            sampled.add(family if family in types else name)

    for family in REQUIRED_FAMILIES:
        if family not in sampled:
            errors.append(f"required metric family missing: {family}")
        if family not in helped:
            errors.append(f"required metric family has no HELP: {family}")

    if errors:
        for e in errors:
            print(f"FAIL {e}", file=sys.stderr)
        return 1
    print(f"OK {path}: {len(sampled)} families, {len(lines)} lines")
    return 0


def split_labels(raw: str):
    """Splits `a="x",b="y"` on commas outside quoted values."""
    out, depth, cur = [], False, []
    it = iter(raw)
    for ch in it:
        if ch == '"' and (not cur or cur[-1] != "\\"):
            depth = not depth
        if ch == "," and not depth:
            out.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    if cur:
        out.append("".join(cur))
    return out


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print("usage: validate_metrics.py <metrics.prom>", file=sys.stderr)
        sys.exit(2)
    sys.exit(main(sys.argv[1]))
