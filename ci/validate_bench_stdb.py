#!/usr/bin/env python3
"""Validate a `cg bench-stdb` report (BENCH_stdb.json).

Gates the transition-store PR's load-bearing claims on every CI run:

 * replay answers from the log, not the compiler: hit rate >= 90% on the
   trajectories the store just ingested, and replayed episodes are
   bit-identical to the live ones (max_reward_delta == 0);
 * replay is actually cheap — at least MIN_SPEEDUP x the live
   episodes/s (the committed BENCH_stdb.json records well above 10x);
 * ingest is lossless at bench scale (no dropped records) and the store
   verifies clean under a cold scrub (no corrupt records, no torn
   tails) after a real ingest + close cycle.

The speedup floor sits below the committed number so CI machine noise
does not flake the gate while a real regression still trips it.
"""

import json
import sys

MIN_SPEEDUP = 5.0
MIN_HIT_RATE = 0.9


def main(path: str) -> int:
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)

    errors = []
    for key in ("episodes", "live", "replay", "speedup", "hit_rate",
                "max_reward_delta", "ingest", "scrub"):
        if key not in report:
            errors.append(f"missing top-level key `{key}`")
    if errors:
        print("\n".join(errors))
        return 1

    if report["speedup"] < MIN_SPEEDUP:
        errors.append(
            f"replay speedup {report['speedup']:.2f}x < required {MIN_SPEEDUP}x "
            f"(live {report['live']['episodes_per_sec']:.1f} eps/s, "
            f"replay {report['replay']['episodes_per_sec']:.1f} eps/s)"
        )
    if report["hit_rate"] < MIN_HIT_RATE:
        errors.append(
            f"replay hit rate {100 * report['hit_rate']:.1f}% < required "
            f"{100 * MIN_HIT_RATE:.0f}% "
            f"(hits={report['replay_hits']} misses={report['replay_misses']})"
        )
    if report["max_reward_delta"] != 0.0:
        errors.append(
            f"replay diverged from live: max per-episode reward delta "
            f"{report['max_reward_delta']} (must be exactly 0)"
        )

    ingest = report["ingest"]
    if ingest["records"] <= 0:
        errors.append(f"bench ingested no records: {ingest}")
    if ingest["dropped"] != 0:
        errors.append(
            f"ingest dropped {ingest['dropped']} record(s) at bench scale — "
            f"the bounded queue must not shed under this load"
        )

    scrub = report["scrub"]
    if scrub["records_ok"] != ingest["records"]:
        errors.append(
            f"scrub verified {scrub['records_ok']} records but ingest logged "
            f"{ingest['records']} — records lost between append and fsync"
        )
    if scrub["records_corrupt"] != 0 or scrub["torn_tails"] != 0:
        errors.append(
            f"store dirty after a clean ingest+close: corrupt="
            f"{scrub['records_corrupt']} torn_tails={scrub['torn_tails']}"
        )

    if errors:
        print("\n".join(errors))
        return 1
    print(
        f"bench-stdb ok: {report['speedup']:.1f}x replay speedup, "
        f"hit-rate {100 * report['hit_rate']:.1f}%, "
        f"{ingest['records']} records scrubbed clean, 0 dropped"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else "BENCH_stdb.json"))
