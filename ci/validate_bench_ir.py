#!/usr/bin/env python3
"""Validate a `cg bench-ir` report (BENCH_ir.json).

Gates the analysis-cache PR's two load-bearing claims on every CI run:

 * the cache actually hits (hit rate > 0) and the no-op pass memo fires
   on a converged episode (noop_skips > 0);
 * the session-shaped episode workload is at least 1.5x faster with the
   cache than in always-recompute (`--no-analysis-cache`) mode, and raw
   analysis fetches at least 5x.

Thresholds are deliberately below the committed BENCH_ir.json numbers
(~2.5x episode, >100x fetch) so CI machine noise does not flake the gate
while a real regression still trips it.
"""

import json
import sys

EPISODE_MIN_SPEEDUP = 1.5
FETCH_MIN_SPEEDUP = 5.0


def main(path: str) -> int:
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)

    errors = []
    for key in ("benchmark", "iters", "scenarios", "cache"):
        if key not in report:
            errors.append(f"missing top-level key `{key}`")
    if errors:
        print("\n".join(errors))
        return 1

    cache = report["cache"]
    for key in ("hits", "misses", "invalidations", "hit_rate", "noop_skips"):
        if key not in cache:
            errors.append(f"cache counters missing `{key}`")
    if not errors:
        if cache["hits"] <= 0:
            errors.append(f"analysis cache never hit: {cache}")
        if not 0.0 < cache["hit_rate"] <= 1.0:
            errors.append(f"hit_rate out of range: {cache['hit_rate']}")
        if cache["noop_skips"] <= 0:
            errors.append(f"no-op memo never fired on a converged episode: {cache}")

    by_name = {s["name"]: s for s in report["scenarios"]}
    episode = next((s for n, s in by_name.items() if n.startswith("episode")), None)
    if episode is None:
        errors.append("no episode scenario in report")
    elif episode["speedup"] < EPISODE_MIN_SPEEDUP:
        errors.append(
            f"episode cached speedup {episode['speedup']:.2f}x "
            f"< required {EPISODE_MIN_SPEEDUP}x ({episode})"
        )
    fetch = by_name.get("analysis_fetch")
    if fetch is None:
        errors.append("no analysis_fetch scenario in report")
    elif fetch["speedup"] < FETCH_MIN_SPEEDUP:
        errors.append(
            f"analysis_fetch cached speedup {fetch['speedup']:.2f}x "
            f"< required {FETCH_MIN_SPEEDUP}x ({fetch})"
        )

    if errors:
        print("\n".join(errors))
        return 1
    print(
        f"bench-ir ok: episode {episode['speedup']:.2f}x, "
        f"fetch {fetch['speedup']:.2f}x, hit-rate {100 * cache['hit_rate']:.1f}%, "
        f"noop-skips {cache['noop_skips']}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else "BENCH_ir.json"))
