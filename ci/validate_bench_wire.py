#!/usr/bin/env python3
"""Validate a `cg bench-wire` report (BENCH_wire.json).

Gates the wire-protocol PR's load-bearing claims on every CI run:

 * the CGB1 binary codec moves at least 3x fewer bytes per step than the
   JSON frames it replaces (serial runs compared, client one-way view);
 * pipelining is never a regression: binary pipelined episodes/s must be
   at least the binary serial rate (the committed BENCH_wire.json shows
   ~1.1x; CI allows equality so single-core runner noise cannot flake a
   gate whose real failure mode — a pipelining slowdown — is far below
   1.0);
 * no configuration produced a single frame decode error;
 * every configuration saw byte-identical observations and derived
   rewards (the report's `divergences` list is empty).
"""

import json
import sys

BYTES_MIN_RATIO = 3.0
PIPELINE_MIN_SPEEDUP = 1.0


def main(path: str) -> int:
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)

    errors = []
    for key in ("benchmark", "runs", "bytes_ratio", "pipeline_speedup", "divergences"):
        if key not in report:
            errors.append(f"missing top-level key `{key}`")
    if errors:
        print("\n".join(errors))
        return 1

    runs = {(r["codec"], r["mode"]): r for r in report["runs"]}
    for cfg in (
        ("json", "serial"),
        ("json", "pipelined"),
        ("binary", "serial"),
        ("binary", "pipelined"),
    ):
        if cfg not in runs:
            errors.append(f"missing run {cfg[0]}-{cfg[1]}")
    if errors:
        print("\n".join(errors))
        return 1

    if report["bytes_ratio"] < BYTES_MIN_RATIO:
        errors.append(
            f"binary codec saved only {report['bytes_ratio']:.2f}x bytes/step "
            f"(need >= {BYTES_MIN_RATIO}x)"
        )
    if report["pipeline_speedup"] < PIPELINE_MIN_SPEEDUP:
        errors.append(
            f"pipelined episodes/s fell below serial "
            f"({report['pipeline_speedup']:.3f}x < {PIPELINE_MIN_SPEEDUP}x)"
        )
    bin_serial = runs[("binary", "serial")]
    json_serial = runs[("json", "serial")]
    if bin_serial["bytes_per_step"] > json_serial["bytes_per_step"]:
        errors.append(
            f"binary bytes/step {bin_serial['bytes_per_step']} exceeds "
            f"json {json_serial['bytes_per_step']}"
        )
    for (codec, mode), run in sorted(runs.items()):
        if run["decode_errors"] != 0:
            errors.append(f"{codec}-{mode} saw {run['decode_errors']} decode errors")
        if run["steps"] <= 0 or run["episodes_per_sec"] <= 0:
            errors.append(f"{codec}-{mode} recorded no work: {run}")
    if report["divergences"]:
        errors.append(f"codec runs diverged: {report['divergences']}")

    if errors:
        print("\n".join(errors))
        return 1
    print(
        f"bench-wire ok: bytes ratio {report['bytes_ratio']:.2f}x, "
        f"pipeline speedup {report['pipeline_speedup']:.2f}x, "
        f"0 decode errors, digests agree"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else "BENCH_wire.json"))
