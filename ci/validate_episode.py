#!/usr/bin/env python3
"""Validate a `cg trace --episode <id> --json` flight-recorder dump.

The input is expected to come from a faulted-and-recovered TCP episode
(`--tcp --chaos-seed`). Checks that:

 * every span's parent resolves inside the episode (connected trees);
 * every trace has exactly one root — one span tree per step/reset;
 * the recovery ladder is visible: `env:checkpoint-restore`, `env:replay`,
   and `tcp:reconnect` spans are present with `recovered` status, inside
   a step's trace (not disconnected roots of their own);
 * remote dispatch spans (`service:Step`) parent under client `rpc:Step`
   spans — i.e. span context actually crossed the wire;
 * per-pass spans parent under the service dispatch.
"""

import json
import sys


def main(path: str) -> int:
    with open(path, encoding="utf-8") as fh:
        ep = json.load(fh)

    spans = ep["spans"]
    errors = []
    ids = {s["span_id"] for s in spans}
    by_name = {}
    for s in spans:
        by_name.setdefault(s["span"], []).append(s)

    roots_per_trace = {}
    for s in spans:
        parent = s.get("parent_id")
        if parent is None:
            roots_per_trace[s["trace_id"]] = roots_per_trace.get(s["trace_id"], 0) + 1
        elif parent not in ids:
            errors.append(
                f"span {s['span_id']} `{s['span']}` has dangling parent {parent}"
            )
    for trace, n in roots_per_trace.items():
        if n != 1:
            errors.append(f"trace {trace} has {n} roots; expected exactly one")

    step_traces = {s["trace_id"] for s in by_name.get("env:step", [])}
    if not step_traces:
        errors.append("no env:step spans recorded")
    for name in ("env:checkpoint-restore", "env:replay", "tcp:reconnect"):
        found = by_name.get(name, [])
        if not found:
            errors.append(f"no `{name}` span — recovery did not happen?")
            continue
        if not any(s.get("status") == "Recovered" for s in found):
            errors.append(f"`{name}` never carried Recovered status")
        if not any(s["trace_id"] in step_traces for s in found):
            errors.append(f"`{name}` is not inside any step's span tree")

    if not any(s.get("status") == "Recovered" for s in by_name.get("env:step", [])):
        errors.append("no env:step root is marked recovered")

    rpc_ids = {s["span_id"] for s in by_name.get("rpc:Step", [])}
    if not any(
        s.get("parent_id") in rpc_ids for s in by_name.get("service:Step", [])
    ):
        errors.append("no service:Step span parented under rpc:Step (no propagation)")

    service_ids = {s["span_id"] for s in by_name.get("service:Step", [])}
    pass_spans = [s for s in spans if s["span"].startswith("pass:")]
    if not pass_spans:
        errors.append("no per-pass spans recorded")
    elif not any(s.get("parent_id") in service_ids for s in pass_spans):
        errors.append("no pass:<name> span parented under service:Step")

    if errors:
        for e in errors:
            print(f"FAIL {e}", file=sys.stderr)
        return 1
    print(
        f"OK episode {ep['episode_id']}: {len(spans)} spans, "
        f"{len(roots_per_trace)} traces, all connected"
    )
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print("usage: validate_episode.py <episode.json>", file=sys.stderr)
        sys.exit(2)
    sys.exit(main(sys.argv[1]))
