//! # cg-autotune: autotuning algorithms
//!
//! The search techniques evaluated in the paper's Tables IV and V: random
//! search, greedy search, hill climbing, a genetic algorithm, an
//! MCTS-based search (after LaMCTS), and two ensemble tuners standing in
//! for Nevergrad and OpenTuner. All except greedy operate on the generic
//! [`SearchProblem`] abstraction, so the same implementations drive both
//! the LLVM pass-sequence space and the GCC flag space — the paper's point
//! that a standard interface makes integrating search techniques a
//! few-lines affair.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cg_core::{ActionSeq, CompilerEnv, EnvPool};

/// A black-box search problem over points of type `Point`, maximizing
/// [`SearchProblem::evaluate`].
pub trait SearchProblem {
    /// The configuration type being searched.
    type Point: Clone;

    /// Samples a uniformly random point.
    fn random_point(&mut self, rng: &mut StdRng) -> Self::Point;

    /// Applies a small random perturbation.
    fn mutate(&mut self, p: &Self::Point, rng: &mut StdRng) -> Self::Point;

    /// Recombines two points.
    fn crossover(&mut self, a: &Self::Point, b: &Self::Point, rng: &mut StdRng) -> Self::Point;

    /// Evaluates a point (higher is better).
    fn evaluate(&mut self, p: &Self::Point) -> f64;

    /// The starting point for local searches (hill climbing). Defaults to a
    /// random point; flag-tuning problems start from the empty command line,
    /// as the paper's hill climber mutates "from the current choices".
    fn initial_point(&mut self, rng: &mut StdRng) -> Self::Point {
        self.random_point(rng)
    }

    /// Evaluates a batch of points, returning scores in order. The default
    /// is serial; pool-backed problems override this to fan evaluations out
    /// across worker environments. Searchers that batch are careful to
    /// generate candidates *before* evaluating them, so any problem whose
    /// candidate generation does not depend on in-batch scores (random
    /// search, GA) produces byte-identical results at every batch size.
    fn evaluate_many(&mut self, points: &[Self::Point]) -> Vec<f64> {
        points.iter().map(|p| self.evaluate(p)).collect()
    }

    /// How many points the problem would like per [`evaluate_many`] call
    /// (typically a small multiple of the backing pool's worker count).
    /// `1` — the default — makes every batching searcher degenerate to its
    /// serial behavior.
    ///
    /// [`evaluate_many`]: SearchProblem::evaluate_many
    fn preferred_batch(&mut self) -> usize {
        1
    }
}

/// The outcome of a search.
#[derive(Debug, Clone)]
pub struct SearchResult<P> {
    /// The best point found.
    pub best: P,
    /// Its objective value.
    pub score: f64,
    /// Evaluations spent.
    pub evaluations: u64,
}

/// Pure random search (2 lines in the paper's accounting): sample, keep the
/// best. Candidates are generated up front in chunks of the problem's
/// preferred batch and evaluated via [`SearchProblem::evaluate_many`]; the
/// result is byte-identical to serial search at every batch size (sampling
/// never looks at scores).
pub fn random_search<P: SearchProblem>(
    problem: &mut P,
    budget: u64,
    rng: &mut StdRng,
) -> SearchResult<P::Point> {
    let batch = problem.preferred_batch().max(1) as u64;
    let mut best: Option<(P::Point, f64)> = None;
    let mut remaining = budget.max(1);
    while remaining > 0 {
        let k = batch.min(remaining) as usize;
        let cands: Vec<P::Point> = (0..k).map(|_| problem.random_point(rng)).collect();
        let scores = problem.evaluate_many(&cands);
        for (cand, s) in cands.into_iter().zip(scores) {
            if best.as_ref().map(|(_, bs)| s > *bs).unwrap_or(true) {
                best = Some((cand, s));
            }
        }
        remaining -= k as u64;
    }
    let (best, score) = best.expect("budget >= 1");
    SearchResult {
        best,
        score,
        evaluations: budget.max(1),
    }
}

/// Hill climbing: mutate the incumbent; accept improvements.
pub fn hill_climb<P: SearchProblem>(
    problem: &mut P,
    budget: u64,
    rng: &mut StdRng,
) -> SearchResult<P::Point> {
    let mut best = problem.initial_point(rng);
    let mut score = problem.evaluate(&best);
    for _ in 1..budget {
        let cand = problem.mutate(&best, rng);
        let s = problem.evaluate(&cand);
        if s > score {
            score = s;
            best = cand;
        }
    }
    SearchResult {
        best,
        score,
        evaluations: budget,
    }
}

/// A plain generational genetic algorithm: tournament selection, crossover,
/// mutation, elitism.
/// A plain generational genetic algorithm: tournament selection, crossover,
/// mutation, elitism. Children are bred in chunks of the problem's
/// preferred batch and scored via [`SearchProblem::evaluate_many`]; because
/// breeding draws from the *previous* generation only, results are
/// byte-identical to the serial GA at every batch size.
pub fn genetic_algorithm<P: SearchProblem>(
    problem: &mut P,
    budget: u64,
    population: usize,
    rng: &mut StdRng,
) -> SearchResult<P::Point> {
    let population = population.max(4);
    let batch = problem.preferred_batch().max(1);
    let mut pop: Vec<(P::Point, f64)> = Vec::with_capacity(population);
    let mut evals = 0u64;
    let seed_n = population.min(budget as usize);
    while pop.len() < seed_n {
        let k = batch.min(seed_n - pop.len());
        let cands: Vec<P::Point> = (0..k).map(|_| problem.random_point(rng)).collect();
        let scores = problem.evaluate_many(&cands);
        evals += k as u64;
        pop.extend(cands.into_iter().zip(scores));
    }
    let by_score = |a: &(P::Point, f64), b: &(P::Point, f64)| {
        b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal)
    };
    pop.sort_by(by_score);
    while evals < budget {
        let mut next: Vec<(P::Point, f64)> = pop.iter().take(population / 8 + 1).cloned().collect();
        while next.len() < population && evals < budget {
            let k = batch
                .min(population - next.len())
                .min((budget - evals) as usize);
            let children: Vec<P::Point> = (0..k)
                .map(|_| {
                    let pick = |rng: &mut StdRng, pop: &[(P::Point, f64)]| {
                        let a = rng.gen_range(0..pop.len());
                        let b = rng.gen_range(0..pop.len());
                        pop[a.min(b)].0.clone() // sorted: lower index = fitter
                    };
                    let a = pick(rng, &pop);
                    let b = pick(rng, &pop);
                    let mut child = problem.crossover(&a, &b, rng);
                    if rng.gen_bool(0.6) {
                        child = problem.mutate(&child, rng);
                    }
                    child
                })
                .collect();
            let scores = problem.evaluate_many(&children);
            evals += k as u64;
            next.extend(children.into_iter().zip(scores));
        }
        next.sort_by(by_score);
        pop = next;
    }
    let (best, score) = pop.swap_remove(0);
    SearchResult {
        best,
        score,
        evaluations: evals,
    }
}

/// A Nevergrad-style portfolio: splits the budget across (1+1) evolution,
/// random search, and a small GA, returning the overall best (Nevergrad's
/// strength in the paper comes from its ensemble of heuristics).
pub fn nevergrad_style<P: SearchProblem>(
    problem: &mut P,
    budget: u64,
    rng: &mut StdRng,
) -> SearchResult<P::Point> {
    let third = (budget / 3).max(1);
    // (1+1) self-adaptive evolution.
    let mut best = problem.random_point(rng);
    let mut score = problem.evaluate(&best);
    let mut stall = 0u32;
    for _ in 1..third {
        // Escalate mutation strength when stalled.
        let mut cand = problem.mutate(&best, rng);
        for _ in 0..(stall / 8).min(4) {
            cand = problem.mutate(&cand, rng);
        }
        let s = problem.evaluate(&cand);
        if s > score {
            score = s;
            best = cand;
            stall = 0;
        } else {
            stall += 1;
        }
    }
    let r = random_search(problem, third, rng);
    if r.score > score {
        best = r.best;
        score = r.score;
    }
    let g = genetic_algorithm(problem, budget.saturating_sub(2 * third).max(8), 24, rng);
    if g.score > score {
        best = g.best;
        score = g.score;
    }
    SearchResult {
        best,
        score,
        evaluations: budget,
    }
}

/// An OpenTuner-style ensemble: a UCB bandit allocates evaluations among
/// operator arms (random, mutate-best, crossover-of-elites), mirroring
/// OpenTuner's meta-technique architecture.
/// An OpenTuner-style ensemble: a UCB bandit allocates evaluations among
/// operator arms (random, mutate-best, crossover-of-elites), mirroring
/// OpenTuner's meta-technique architecture. With a batching problem, arm
/// statistics and elites are frozen for the duration of one batch (updates
/// are applied in submission order once scores return) — at batch size 1
/// this degenerates to the classic serial loop.
pub fn opentuner_style<P: SearchProblem>(
    problem: &mut P,
    budget: u64,
    rng: &mut StdRng,
) -> SearchResult<P::Point> {
    let batch = problem.preferred_batch().max(1) as u64;
    let mut elites: Vec<(P::Point, f64)> = Vec::new();
    let mut arms = [(0u64, 0.0f64); 3]; // (pulls, total improvement)
    let mut best = problem.random_point(rng);
    let mut score = problem.evaluate(&best);
    elites.push((best.clone(), score));
    let mut t = 1u64;
    while t < budget {
        let k = batch.min(budget - t);
        // Plan the chunk against the frozen bandit state.
        let picks: Vec<(usize, P::Point)> = (0..k)
            .map(|i| {
                let step = t + i;
                let arm = (0..3)
                    .max_by(|&a, &b| {
                        let ucb = |i: usize| {
                            let (n, tot) = arms[i];
                            if n == 0 {
                                return f64::INFINITY;
                            }
                            tot / n as f64 + (2.0 * (step as f64).ln() / n as f64).sqrt()
                        };
                        ucb(a)
                            .partial_cmp(&ucb(b))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .unwrap_or(0);
                let cand = match arm {
                    0 => problem.random_point(rng),
                    1 => problem.mutate(&best, rng),
                    _ => {
                        if elites.len() >= 2 {
                            let i = rng.gen_range(0..elites.len());
                            let j = rng.gen_range(0..elites.len());
                            let (a, b) = (elites[i].0.clone(), elites[j].0.clone());
                            problem.crossover(&a, &b, rng)
                        } else {
                            problem.mutate(&best, rng)
                        }
                    }
                };
                (arm, cand)
            })
            .collect();
        let points: Vec<P::Point> = picks.iter().map(|(_, c)| c.clone()).collect();
        let scores = problem.evaluate_many(&points);
        for ((arm, cand), s) in picks.into_iter().zip(scores) {
            let improvement = (s - score).max(0.0);
            arms[arm].0 += 1;
            arms[arm].1 += improvement;
            if s > score {
                score = s;
                best = cand.clone();
            }
            elites.push((cand, s));
            elites.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            elites.truncate(8);
        }
        t += k;
    }
    SearchResult {
        best,
        score,
        evaluations: budget,
    }
}

/// Monte-Carlo tree search over action prefixes (after LaMCTS: the tree
/// partitions the space and focuses rollouts on promising regions). Points
/// are fixed-length sequences; tree nodes extend a prefix one action at a
/// time with UCB selection and random completion.
pub fn mcts_search<P>(
    problem: &mut P,
    budget: u64,
    num_actions: usize,
    length: usize,
    rng: &mut StdRng,
) -> SearchResult<Vec<usize>>
where
    P: SearchProblem<Point = Vec<usize>>,
{
    struct Node {
        children: Vec<(usize, usize)>, // (action, node index)
        visits: u64,
        total: f64,
    }
    let mut nodes = vec![Node {
        children: Vec::new(),
        visits: 0,
        total: 0.0,
    }];
    let mut best: Vec<usize> = (0..length).map(|_| rng.gen_range(0..num_actions)).collect();
    let mut score = problem.evaluate(&best);
    let branch = num_actions.min(12);
    let batch = problem.preferred_batch().max(1) as u64;
    let mut done = 1u64;
    while done < budget {
        let k = batch.min(budget - done);
        // Plan `k` rollouts against frozen visit statistics (tree structure
        // still grows during planning: each selection may expand a child,
        // which steers siblings within the chunk toward unexplored
        // branches). At batch size 1 this is the classic serial loop.
        let mut pending: Vec<(Vec<usize>, Vec<usize>)> = Vec::with_capacity(k as usize);
        for _ in 0..k {
            // Select.
            let mut prefix = Vec::new();
            let mut cur = 0usize;
            loop {
                if prefix.len() >= length {
                    break;
                }
                if nodes[cur].children.len() < branch {
                    // Expand with an unexplored random action.
                    let a = rng.gen_range(0..num_actions);
                    let idx = nodes.len();
                    nodes.push(Node {
                        children: Vec::new(),
                        visits: 0,
                        total: 0.0,
                    });
                    nodes[cur].children.push((a, idx));
                    prefix.push(a);
                    break;
                }
                let parent_visits = nodes[cur].visits.max(1);
                let (a, next) = *nodes[cur]
                    .children
                    .iter()
                    .max_by(|(_, x), (_, y)| {
                        let ucb = |i: usize| {
                            let n = &nodes[i];
                            if n.visits == 0 {
                                return f64::INFINITY;
                            }
                            n.total / n.visits as f64
                                + 0.8 * ((parent_visits as f64).ln() / n.visits as f64).sqrt()
                        };
                        ucb(*x)
                            .partial_cmp(&ucb(*y))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("children nonempty");
                prefix.push(a);
                cur = next;
            }
            // Rollout: complete the prefix, biased toward the incumbent best
            // (LaMCTS-style focus on the promising region).
            let mut point = prefix.clone();
            while point.len() < length {
                let i = point.len();
                if rng.gen_bool(0.6) && i < best.len() {
                    point.push(best[i]);
                } else {
                    point.push(rng.gen_range(0..num_actions));
                }
            }
            pending.push((prefix, point));
        }
        let points: Vec<Vec<usize>> = pending.iter().map(|(_, p)| p.clone()).collect();
        let scores = problem.evaluate_many(&points);
        for ((prefix, point), s) in pending.into_iter().zip(scores) {
            if s > score {
                score = s;
                best = point;
            }
            // Backprop along the selected path.
            let mut cur = 0usize;
            nodes[cur].visits += 1;
            nodes[cur].total += s;
            for &a in &prefix {
                match nodes[cur].children.iter().find(|(act, _)| *act == a) {
                    Some(&(_, next)) => {
                        cur = next;
                        nodes[cur].visits += 1;
                        nodes[cur].total += s;
                    }
                    None => break,
                }
            }
        }
        done += k;
    }
    SearchResult {
        best,
        score,
        evaluations: budget,
    }
}

/// Greedy search over a live environment (7 lines in the paper's
/// accounting): at each step `fork()` the environment once per candidate
/// action, keep the action with the greatest reward, and stop when no
/// action is profitable.
///
/// # Errors
/// Propagates environment failures.
pub fn greedy_search(
    env: &mut CompilerEnv,
    candidates: &[usize],
    max_steps: usize,
) -> Result<(Vec<usize>, f64), cg_core::CgError> {
    let mut taken = Vec::new();
    for _ in 0..max_steps {
        let mut best: Option<(usize, f64)> = None;
        for &a in candidates {
            let mut probe = env.fork()?;
            let r = probe.step(a)?.reward;
            if best.map(|(_, br)| r > br).unwrap_or(true) {
                best = Some((a, r));
            }
        }
        match best {
            Some((a, r)) if r > 0.0 => {
                env.step(a)?;
                taken.push(a);
            }
            _ => break,
        }
    }
    Ok((taken, env.episode_reward()))
}

// ---------------------------------------------------------------------------
// Problem adapters
// ---------------------------------------------------------------------------

/// The LLVM phase-ordering problem: points are fixed-length pass sequences;
/// the objective is the episode reward of applying them (one batched step).
pub struct PassSequenceProblem {
    env: CompilerEnv,
    length: usize,
    num_actions: usize,
    candidates: Option<Vec<usize>>,
}

impl PassSequenceProblem {
    /// Wraps an environment; `length` is the episode length searched.
    pub fn new(env: CompilerEnv, length: usize) -> PassSequenceProblem {
        let num_actions = env.action_space().len();
        PassSequenceProblem {
            env,
            length,
            num_actions,
            candidates: None,
        }
    }

    /// Restricts the searched alphabet to a subset of actions (the paper
    /// tunes its searchers' hyperparameters on a Csmith validation set;
    /// restricting to the curated 42-pass subset is the standard choice).
    pub fn with_candidates(
        env: CompilerEnv,
        length: usize,
        candidates: Vec<usize>,
    ) -> PassSequenceProblem {
        PassSequenceProblem {
            env,
            length,
            num_actions: candidates.len(),
            candidates: Some(candidates),
        }
    }

    /// Number of candidate actions.
    pub fn num_actions(&self) -> usize {
        self.num_actions
    }

    /// Episode length.
    pub fn length(&self) -> usize {
        self.length
    }

    /// Releases the wrapped environment.
    pub fn into_env(self) -> CompilerEnv {
        self.env
    }
}

impl SearchProblem for PassSequenceProblem {
    type Point = Vec<usize>;

    fn random_point(&mut self, rng: &mut StdRng) -> Vec<usize> {
        (0..self.length)
            .map(|_| rng.gen_range(0..self.num_actions))
            .collect()
    }

    fn mutate(&mut self, p: &Vec<usize>, rng: &mut StdRng) -> Vec<usize> {
        let mut q = p.clone();
        let i = rng.gen_range(0..q.len());
        q[i] = rng.gen_range(0..self.num_actions);
        q
    }

    fn crossover(&mut self, a: &Vec<usize>, b: &Vec<usize>, rng: &mut StdRng) -> Vec<usize> {
        let cut = rng.gen_range(0..a.len());
        a[..cut].iter().chain(b[cut..].iter()).copied().collect()
    }

    fn evaluate(&mut self, p: &Vec<usize>) -> f64 {
        if self.env.reset().is_err() {
            return f64::NEG_INFINITY;
        }
        let mapped: Vec<usize> = match &self.candidates {
            Some(c) => p.iter().map(|&i| c[i]).collect(),
            None => p.clone(),
        };
        match self.env.step_batched(&mapped) {
            Ok(_) => self.env.episode_reward(),
            Err(_) => f64::NEG_INFINITY,
        }
    }
}

/// [`PassSequenceProblem`] fanned out over an [`EnvPool`]: evaluations go
/// through [`EnvPool::evaluate_batch`], so batching searchers score a whole
/// generation concurrently, exact repeats are answered from the pool's
/// evaluation cache, and mutants re-use their parent's prefix snapshots.
pub struct PoolPassSequenceProblem {
    pool: Arc<EnvPool>,
    benchmark: String,
    length: usize,
    num_actions: usize,
    candidates: Option<Vec<usize>>,
    batch: usize,
}

impl PoolPassSequenceProblem {
    /// Searches fixed-`length` sequences over the full `num_actions`-sized
    /// action space of `benchmark`, evaluated on `pool`.
    pub fn new(
        pool: Arc<EnvPool>,
        benchmark: &str,
        length: usize,
        num_actions: usize,
    ) -> PoolPassSequenceProblem {
        let batch = pool.workers() * 2;
        PoolPassSequenceProblem {
            pool,
            benchmark: benchmark.to_string(),
            length,
            num_actions,
            candidates: None,
            batch: batch.max(1),
        }
    }

    /// Restricts the searched alphabet to a subset of action indices.
    pub fn with_candidates(
        pool: Arc<EnvPool>,
        benchmark: &str,
        length: usize,
        candidates: Vec<usize>,
    ) -> PoolPassSequenceProblem {
        let mut p = PoolPassSequenceProblem::new(pool, benchmark, length, candidates.len());
        p.candidates = Some(candidates);
        p
    }

    /// Overrides the preferred evaluation batch size.
    pub fn with_batch(mut self, batch: usize) -> PoolPassSequenceProblem {
        self.batch = batch.max(1);
        self
    }

    fn to_seq(&self, p: &[usize]) -> ActionSeq {
        let actions = match &self.candidates {
            Some(c) => p.iter().map(|&i| c[i]).collect(),
            None => p.to_vec(),
        };
        ActionSeq {
            benchmark: self.benchmark.clone(),
            actions,
        }
    }
}

impl SearchProblem for PoolPassSequenceProblem {
    type Point = Vec<usize>;

    fn random_point(&mut self, rng: &mut StdRng) -> Vec<usize> {
        (0..self.length)
            .map(|_| rng.gen_range(0..self.num_actions))
            .collect()
    }

    fn mutate(&mut self, p: &Vec<usize>, rng: &mut StdRng) -> Vec<usize> {
        let mut q = p.clone();
        let i = rng.gen_range(0..q.len());
        q[i] = rng.gen_range(0..self.num_actions);
        q
    }

    fn crossover(&mut self, a: &Vec<usize>, b: &Vec<usize>, rng: &mut StdRng) -> Vec<usize> {
        let cut = rng.gen_range(0..a.len());
        a[..cut].iter().chain(b[cut..].iter()).copied().collect()
    }

    fn evaluate(&mut self, p: &Vec<usize>) -> f64 {
        self.evaluate_many(std::slice::from_ref(p))[0]
    }

    fn evaluate_many(&mut self, points: &[Vec<usize>]) -> Vec<f64> {
        let jobs: Vec<ActionSeq> = points.iter().map(|p| self.to_seq(p)).collect();
        self.pool
            .evaluate_batch(jobs)
            .into_iter()
            .map(|o| o.score)
            .collect()
    }

    fn preferred_batch(&mut self) -> usize {
        self.batch
    }
}

/// The GCC flag-tuning problem (§VII-D): points are full choice vectors;
/// the objective is negated object size. Evaluations drive the compiler
/// session directly (each evaluation is "one compilation").
pub struct GccChoicesProblem {
    session: cg_core::envs::gcc::GccSession,
    cards: Vec<usize>,
}

impl GccChoicesProblem {
    /// Creates the problem for a benchmark under a GCC version.
    ///
    /// # Errors
    /// Dataset failures.
    pub fn new(spec: cg_gcc::GccSpec, benchmark: &str) -> Result<GccChoicesProblem, String> {
        let mut session = cg_core::envs::gcc::GccSession::new(spec);
        cg_core::CompilationSession::init(&mut session, benchmark, 0)?;
        let cards = session
            .option_space()
            .options()
            .iter()
            .map(|o| o.cardinality)
            .collect();
        Ok(GccChoicesProblem { session, cards })
    }

    /// Objective of the `-Os` baseline (for reporting reductions).
    ///
    /// # Errors
    /// Session failures.
    pub fn baseline_os_size(&mut self) -> Result<f64, String> {
        let choices = self.session.option_space().choices_for_level(4);
        self.session.set_choices(&choices)?;
        let obs = cg_core::CompilationSession::observe(&mut self.session, "ObjSize")?;
        Ok(obs.as_scalar().expect("ObjSize is scalar"))
    }
}

impl SearchProblem for GccChoicesProblem {
    type Point = Vec<usize>;

    fn random_point(&mut self, rng: &mut StdRng) -> Vec<usize> {
        self.cards.iter().map(|&c| rng.gen_range(0..c)).collect()
    }

    fn mutate(&mut self, p: &Vec<usize>, rng: &mut StdRng) -> Vec<usize> {
        let mut q = p.clone();
        // A small number of random changes (the paper's hill climbing).
        let edits = rng.gen_range(1..=4);
        for _ in 0..edits {
            let i = rng.gen_range(0..q.len());
            q[i] = rng.gen_range(0..self.cards[i]);
        }
        q
    }

    fn crossover(&mut self, a: &Vec<usize>, b: &Vec<usize>, rng: &mut StdRng) -> Vec<usize> {
        a.iter()
            .zip(b)
            .map(|(x, y)| if rng.gen_bool(0.5) { *x } else { *y })
            .collect()
    }

    fn evaluate(&mut self, p: &Vec<usize>) -> f64 {
        if self.session.set_choices(p).is_err() {
            return f64::NEG_INFINITY;
        }
        match cg_core::CompilationSession::observe(&mut self.session, "ObjSize") {
            Ok(o) => -o.as_scalar().unwrap_or(f64::INFINITY),
            Err(_) => f64::NEG_INFINITY,
        }
    }

    fn initial_point(&mut self, _rng: &mut StdRng) -> Vec<usize> {
        // Hill climbing starts from the unconfigured command line and
        // mutates "from the current choices" (§VII-D).
        vec![0; self.cards.len()]
    }
}

/// Seeds an [`StdRng`] reproducibly.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy problem with a known optimum: maximize the number of zeros in
    /// a length-16 vector over alphabet 8.
    struct Toy;

    impl SearchProblem for Toy {
        type Point = Vec<usize>;
        fn random_point(&mut self, rng: &mut StdRng) -> Vec<usize> {
            (0..16).map(|_| rng.gen_range(0..8)).collect()
        }
        fn mutate(&mut self, p: &Vec<usize>, rng: &mut StdRng) -> Vec<usize> {
            let mut q = p.clone();
            let i = rng.gen_range(0..16);
            q[i] = rng.gen_range(0..8);
            q
        }
        fn crossover(&mut self, a: &Vec<usize>, b: &Vec<usize>, rng: &mut StdRng) -> Vec<usize> {
            let cut = rng.gen_range(0..16);
            a[..cut].iter().chain(b[cut..].iter()).copied().collect()
        }
        fn evaluate(&mut self, p: &Vec<usize>) -> f64 {
            p.iter().filter(|&&x| x == 0).count() as f64
        }
    }

    /// `Toy` behind a forced batch size, recording every batch it sees.
    struct BatchedToy {
        batch: usize,
        seen: Vec<usize>,
    }

    impl SearchProblem for BatchedToy {
        type Point = Vec<usize>;
        fn random_point(&mut self, rng: &mut StdRng) -> Vec<usize> {
            Toy.random_point(rng)
        }
        fn mutate(&mut self, p: &Vec<usize>, rng: &mut StdRng) -> Vec<usize> {
            Toy.mutate(p, rng)
        }
        fn crossover(&mut self, a: &Vec<usize>, b: &Vec<usize>, rng: &mut StdRng) -> Vec<usize> {
            Toy.crossover(a, b, rng)
        }
        fn evaluate(&mut self, p: &Vec<usize>) -> f64 {
            Toy.evaluate(p)
        }
        fn evaluate_many(&mut self, points: &[Vec<usize>]) -> Vec<f64> {
            self.seen.push(points.len());
            points.iter().map(|p| Toy.evaluate(p)).collect()
        }
        fn preferred_batch(&mut self) -> usize {
            self.batch
        }
    }

    #[test]
    fn batched_random_search_is_byte_identical_to_serial() {
        let serial = random_search(&mut Toy, 111, &mut rng(9));
        for batch in [2, 5, 16, 200] {
            let mut p = BatchedToy {
                batch,
                seen: Vec::new(),
            };
            let batched = random_search(&mut p, 111, &mut rng(9));
            assert_eq!(
                batched.best, serial.best,
                "batch {batch} changed the winner"
            );
            assert_eq!(batched.score.to_bits(), serial.score.to_bits());
            assert_eq!(batched.evaluations, serial.evaluations);
            assert!(p.seen.iter().any(|&k| k > 1), "batching never kicked in");
            assert_eq!(
                p.seen.iter().sum::<usize>(),
                111,
                "evaluation count drifted"
            );
        }
    }

    #[test]
    fn batched_ga_is_byte_identical_to_serial() {
        let serial = genetic_algorithm(&mut Toy, 150, 24, &mut rng(13));
        for batch in [3, 8, 24] {
            let mut p = BatchedToy {
                batch,
                seen: Vec::new(),
            };
            let batched = genetic_algorithm(&mut p, 150, 24, &mut rng(13));
            assert_eq!(
                batched.best, serial.best,
                "batch {batch} changed the winner"
            );
            assert_eq!(batched.score.to_bits(), serial.score.to_bits());
            assert_eq!(batched.evaluations, serial.evaluations);
            assert_eq!(
                p.seen.iter().sum::<usize>(),
                150,
                "evaluation count drifted"
            );
        }
    }

    #[test]
    fn batched_opentuner_and_mcts_respect_budget_and_batch() {
        // Bandit/tree searchers use frozen statistics within a batch, so
        // results legitimately differ across batch sizes — but the budget
        // accounting and batch plumbing must hold, and batch size 1 must
        // reproduce the serial trajectory exactly.
        let serial_ot = opentuner_style(&mut Toy, 80, &mut rng(21));
        let mut one = BatchedToy {
            batch: 1,
            seen: Vec::new(),
        };
        let ot_one = opentuner_style(&mut one, 80, &mut rng(21));
        assert_eq!(ot_one.best, serial_ot.best);
        assert_eq!(ot_one.score.to_bits(), serial_ot.score.to_bits());

        let serial_mcts = mcts_search(&mut Toy, 80, 8, 16, &mut rng(22));
        let mut one = BatchedToy {
            batch: 1,
            seen: Vec::new(),
        };
        let mcts_one = mcts_search(&mut one, 80, 8, 16, &mut rng(22));
        assert_eq!(mcts_one.best, serial_mcts.best);
        assert_eq!(mcts_one.score.to_bits(), serial_mcts.score.to_bits());

        for batch in [4, 11] {
            let mut p = BatchedToy {
                batch,
                seen: Vec::new(),
            };
            let r = opentuner_style(&mut p, 80, &mut rng(21));
            assert!(r.score >= 2.0);
            // The seed point goes through `evaluate`; the remaining 79
            // evaluations arrive in chunks.
            assert_eq!(p.seen.iter().sum::<usize>(), 79);
            assert!(p.seen.iter().any(|&k| k > 1));

            let mut p = BatchedToy {
                batch,
                seen: Vec::new(),
            };
            let r = mcts_search(&mut p, 80, 8, 16, &mut rng(22));
            assert!(r.score >= 2.0);
            assert_eq!(p.seen.iter().sum::<usize>(), 79);
            assert!(p.seen.iter().any(|&k| k > 1));
        }
    }

    #[test]
    fn pool_problem_matches_serial_problem_and_saves_work() {
        use std::time::Duration;
        let factory: cg_core::EnvFactory = Arc::new(|_| {
            cg_core::CompilerEnv::with_factory(
                "llvm-v0",
                cg_core::envs::session_factory("llvm-v0")
                    .map_err(cg_core::CgError::ServiceFailure)?,
                "benchmark://cbench-v1/crc32",
                "Autophase",
                "IrInstructionCount",
                Duration::from_secs(30),
            )
        });
        let mut env = cg_core::make("llvm-v0").unwrap();
        env.set_benchmark("benchmark://cbench-v1/crc32");
        let names = [
            "mem2reg",
            "sroa",
            "instcombine",
            "gvn",
            "dce",
            "simplifycfg",
            "sccp",
            "licm",
        ];
        let cands: Vec<usize> = names
            .iter()
            .map(|n| env.action_space().index_of(n).unwrap())
            .collect();

        let mut serial = PassSequenceProblem::with_candidates(env, 5, cands.clone());
        let serial_ga = genetic_algorithm(&mut serial, 40, 8, &mut rng(5));

        let pool = Arc::new(EnvPool::new(2, factory));
        let mut pooled = PoolPassSequenceProblem::with_candidates(
            Arc::clone(&pool),
            "benchmark://cbench-v1/crc32",
            5,
            cands,
        );
        let pool_ga = genetic_algorithm(&mut pooled, 40, 8, &mut rng(5));
        // Same rng stream + deterministic evaluations = same search outcome.
        assert_eq!(pool_ga.best, serial_ga.best);
        assert_eq!(pool_ga.score.to_bits(), serial_ga.score.to_bits());
        // Elites survive generations unchanged: the cache must have
        // answered some evaluations without touching an environment.
        assert!(!pool.cache().is_empty());
    }

    #[test]
    fn all_searchers_beat_single_random_sample_on_toy() {
        let mut r = rng(42);
        let single = Toy.evaluate(&Toy.random_point(&mut r));
        for (name, score) in [
            ("random", random_search(&mut Toy, 300, &mut rng(1)).score),
            ("hill", hill_climb(&mut Toy, 300, &mut rng(2)).score),
            (
                "ga",
                genetic_algorithm(&mut Toy, 300, 30, &mut rng(3)).score,
            ),
            (
                "nevergrad",
                nevergrad_style(&mut Toy, 300, &mut rng(4)).score,
            ),
            (
                "opentuner",
                opentuner_style(&mut Toy, 300, &mut rng(5)).score,
            ),
            ("mcts", mcts_search(&mut Toy, 300, 8, 16, &mut rng(6)).score),
        ] {
            assert!(
                score > single + 1.0,
                "{name} scored {score}, single random sample {single}"
            );
        }
    }

    #[test]
    fn hill_climb_converges_near_optimum_on_toy() {
        let r = hill_climb(&mut Toy, 2000, &mut rng(7));
        assert!(r.score >= 15.0, "got {}", r.score);
    }

    #[test]
    fn greedy_search_on_llvm_beats_nothing() {
        let mut env = cg_core::make("llvm-v0").unwrap();
        env.set_benchmark("benchmark://cbench-v1/crc32");
        env.reset().unwrap();
        // Restrict candidates to a fast, useful subset to keep the test quick.
        let names = [
            "mem2reg",
            "sroa",
            "instcombine",
            "gvn",
            "dce",
            "simplifycfg",
        ];
        let cands: Vec<usize> = names
            .iter()
            .map(|n| env.action_space().index_of(n).unwrap())
            .collect();
        let (actions, reward) = greedy_search(&mut env, &cands, 8).unwrap();
        assert!(!actions.is_empty());
        assert!(reward > 0.0);
    }

    #[test]
    fn gcc_problem_evaluation_is_deterministic_and_os_helps() {
        let mut p =
            GccChoicesProblem::new(cg_gcc::GccSpec::v11_2(), "benchmark://chstone-v0/sha").unwrap();
        let default_size = -p.evaluate(&vec![0; p.cards.len()]);
        let again = -p.evaluate(&vec![0; p.cards.len()]);
        assert_eq!(default_size, again, "evaluation must be deterministic");
        let os = p.baseline_os_size().unwrap();
        assert!(
            os < default_size,
            "-Os beats unoptimized: {os} vs {default_size}"
        );
        // A short hill climb never returns worse than its own best sample.
        let mut r = rng(11);
        let tuned = hill_climb(&mut p, 30, &mut r);
        assert!(tuned.score.is_finite());
    }
}
