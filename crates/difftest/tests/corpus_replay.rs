//! The reproducer regression runner: every reproducer checked into
//! `difftest-corpus/` is replayed on every test run. A reproducer is
//! committed together with the pass fix for the miscompile it captured, so
//! replay must come back green — a red replay means the bug resurfaced.

use cg_difftest::repro::{default_corpus_dir, load_corpus};

#[test]
fn all_checked_in_reproducers_replay_green() {
    let dir = default_corpus_dir();
    let corpus = load_corpus(&dir).unwrap_or_else(|e| panic!("corpus unreadable: {e}"));
    // An empty corpus is healthy (no fixed miscompiles yet); a directory
    // full of reproducers must replay clean, case by case.
    let mut regressions = Vec::new();
    for (path, repro) in &corpus {
        if let Err(e) = repro.replay() {
            regressions.push(format!("{}: {e}", path.display()));
        }
    }
    assert!(
        regressions.is_empty(),
        "{} reproducer(s) regressed:\n{}",
        regressions.len(),
        regressions.join("\n")
    );
}

#[test]
fn corpus_files_are_well_formed() {
    let corpus = load_corpus(&default_corpus_dir()).unwrap();
    for (path, repro) in &corpus {
        // The acceptance bar for committed reproducers: small enough to
        // debug by eye.
        assert!(
            repro.ir.lines().count() <= 40,
            "{}: reduced IR exceeds 40 lines",
            path.display()
        );
        assert!(
            repro.pipeline.len() <= 4,
            "{}: minimal pipeline exceeds 4 passes",
            path.display()
        );
        assert!(
            !repro.failure.is_empty(),
            "{}: missing failure description",
            path.display()
        );
        assert!(
            cg_datasets::synth::Profile::named(&repro.profile).is_some(),
            "{}: unknown profile `{}`",
            path.display(),
            repro.profile
        );
    }
}
