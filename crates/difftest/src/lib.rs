//! # cg-difftest: the differential pass-pipeline fuzzer
//!
//! The paper's central robustness claim is that compiler environments are
//! only trustworthy when transformations are continuously verified (§IV.D,
//! §VI). This crate is that verification engine for the simulated LLVM
//! optimizer: it hunts miscompilations across the 124-entry action space by
//! comparing optimized programs against the fuel-limited reference
//! interpreter, and shrinks any divergence it finds to a minimal reproducer.
//!
//! The subsystem has four parts:
//!
//! * [`oracle`] — the differential oracle: verifies the optimized module,
//!   then executes reference and optimized variants over a deterministic
//!   multi-input corpus (perturbing mutable global initializers identically
//!   on both sides) and compares return values and final global memory.
//! * [`fuzz`] — the seeded fuzzing driver: generates programs from
//!   aggressive [`cg_datasets::synth::Profile`]s, samples random pipelines,
//!   applies them pass-by-pass under the verifier, and fans cases out over
//!   worker threads.
//! * [`shrink`] — two-axis minimization: delta-debugs the failing pipeline
//!   to a minimal subsequence, then reduces the program with
//!   [`cg_ir::reduce`] while re-checking the failure after every step.
//! * [`repro`] — self-contained JSON reproducers (seed, profile, pipeline,
//!   reduced IR) written to `difftest-corpus/` and replayed by the
//!   regression runner so every fixed miscompile stays fixed.
//!
//! The `cg fuzz` subcommand is the user-facing surface; per-pass blame
//! counters flow through `cg-telemetry` into `cg stats`.

pub mod fuzz;
pub mod oracle;
pub mod repro;
pub mod shrink;

pub use fuzz::{run_fuzz, DivergenceReport, FuzzConfig, FuzzReport};
pub use oracle::{compare_modules, OracleConfig, OracleFailure};
pub use repro::{DivergenceRepro, Reproducer};
