//! Self-contained reproducer files.
//!
//! A reproducer captures everything needed to regenerate and re-judge a
//! shrunk failure: the generator coordinates (profile name, seed, whether
//! the module was deoptimized), the minimal pipeline, the reduced IR text,
//! and a human-readable description of the failure observed when it was
//! recorded. Files live in `difftest-corpus/` at the repository root and are
//! committed alongside the pass fix; the regression runner
//! (`crates/difftest/tests/corpus_replay.rs`) replays each on every test run
//! and fails if any divergence resurfaces.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use cg_ir::verify::verify_module;
use serde::{Deserialize, Serialize};

use crate::oracle::OracleConfig;
use crate::shrink::run_case;

/// Current reproducer file format version.
pub const REPRO_VERSION: u32 = 1;

/// A checked-in reproducer for a (formerly) failing fuzz case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reproducer {
    /// File format version ([`REPRO_VERSION`]).
    pub version: u32,
    /// Fuzz case seed.
    pub seed: u64,
    /// Generator profile name (see [`cg_datasets::synth::FUZZ_PROFILES`]).
    pub profile: String,
    /// Whether the generated module was deoptimized before fuzzing.
    pub deopt: bool,
    /// Minimal failing pass pipeline.
    pub pipeline: Vec<String>,
    /// Failure observed when the reproducer was recorded.
    pub failure: String,
    /// Reduced program, in textual IR form.
    pub ir: String,
}

impl Reproducer {
    /// Replays the reproducer: parses and verifies the IR, applies the
    /// pipeline, and runs the oracle. Returns `Err` describing the failure
    /// if the case *still* fails — i.e. `Ok(())` means the underlying bug
    /// remains fixed.
    pub fn replay(&self) -> Result<(), String> {
        let module = cg_ir::parser::parse_module(&self.ir)
            .map_err(|e| format!("reproducer IR does not parse: {e}"))?;
        verify_module(&module).map_err(|e| format!("reproducer IR does not verify: {e}"))?;
        for name in &self.pipeline {
            if cg_llvm::pass::find_pass(name).is_none() {
                return Err(format!("reproducer references unknown pass `{name}`"));
            }
        }
        let oracle = OracleConfig {
            seed: self.seed,
            ..OracleConfig::default()
        };
        match run_case(&module, &self.pipeline, &oracle) {
            None => Ok(()),
            Some(failure) => Err(format!(
                "case regressed (recorded: {}): {failure}",
                self.failure
            )),
        }
    }

    /// The deterministic file name for this reproducer.
    pub fn file_name(&self) -> String {
        let mut tag = String::new();
        tag.push_str(&self.ir);
        for p in &self.pipeline {
            tag.push('|');
            tag.push_str(p);
        }
        format!(
            "repro-{:06}-{:08x}.json",
            self.seed,
            cg_ir::fnv1a(tag.as_bytes()) as u32
        )
    }

    /// Serializes into `dir` (created if absent). Returns the written path.
    pub fn save(&self, dir: &Path) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        fs::write(&path, json)?;
        Ok(path)
    }

    /// Loads a reproducer from a JSON file.
    pub fn load(path: &Path) -> Result<Reproducer, String> {
        let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let repro: Reproducer =
            serde_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        if repro.version != REPRO_VERSION {
            return Err(format!(
                "{}: unsupported reproducer version {} (expected {REPRO_VERSION})",
                path.display(),
                repro.version
            ));
        }
        Ok(repro)
    }
}

/// A self-contained reproducer for a **replay divergence**: mid-episode
/// recovery replayed an episode's action history and the restored reward
/// metric did not match the pre-fault value — a typed verdict that the
/// compiler (or a fault) is nondeterministic.
///
/// Follows the same conventions as [`Reproducer`] (versioned pretty JSON,
/// deterministic content-hashed file name, `save`/`load` pair) but lives in
/// its own directory ([`default_divergence_dir`]): these capture *episode*
/// nondeterminism, not pipeline miscompilations, and must not enter the
/// miscompilation regression corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DivergenceRepro {
    /// File format version ([`REPRO_VERSION`]).
    pub version: u32,
    /// Environment id the episode ran under (e.g. `llvm-v0`).
    pub env: String,
    /// The benchmark being replayed.
    pub benchmark: String,
    /// Index of the action space the episode used.
    pub action_space: usize,
    /// The full action history that was replayed, as indices into the
    /// action space.
    pub actions: Vec<usize>,
    /// The reward-metric observation space the check compared.
    pub metric_space: String,
    /// The metric recorded before the fault.
    pub expected: f64,
    /// The metric the replayed episode produced.
    pub actual: f64,
}

impl DivergenceRepro {
    /// The deterministic file name for this reproducer.
    pub fn file_name(&self) -> String {
        let mut tag = format!("{}|{}|{}", self.env, self.benchmark, self.action_space);
        for a in &self.actions {
            tag.push('|');
            tag.push_str(&a.to_string());
        }
        format!(
            "divergence-{:08x}.json",
            cg_ir::fnv1a(tag.as_bytes()) as u32
        )
    }

    /// Serializes into `dir` (created if absent). Returns the written path.
    pub fn save(&self, dir: &Path) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        fs::write(&path, json)?;
        Ok(path)
    }

    /// Loads a divergence reproducer from a JSON file.
    pub fn load(path: &Path) -> Result<DivergenceRepro, String> {
        let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let repro: DivergenceRepro =
            serde_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        if repro.version != REPRO_VERSION {
            return Err(format!(
                "{}: unsupported reproducer version {} (expected {REPRO_VERSION})",
                path.display(),
                repro.version
            ));
        }
        Ok(repro)
    }
}

/// The default divergence-reproducer directory: `divergence-corpus/` at the
/// workspace root, deliberately separate from the miscompilation corpus so
/// the corpus replay runner never tries to re-judge an episode dump.
pub fn default_divergence_dir() -> PathBuf {
    match option_env!("CARGO_MANIFEST_DIR") {
        Some(dir) => Path::new(dir).join("../../divergence-corpus"),
        None => PathBuf::from("divergence-corpus"),
    }
}

/// Loads every `*.json` reproducer under `dir`, sorted by file name. A
/// missing directory is an empty corpus, not an error.
pub fn load_corpus(dir: &Path) -> Result<Vec<(PathBuf, Reproducer)>, String> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(format!("{}: {e}", dir.display())),
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    for path in paths {
        let repro = Reproducer::load(&path)?;
        out.push((path, repro));
    }
    Ok(out)
}

/// The default corpus directory: `difftest-corpus/` at the workspace root.
pub fn default_corpus_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR points at crates/difftest; the corpus lives two
    // levels up, next to Cargo.toml. Fall back to a relative path for
    // non-cargo invocations (the installed `cg` binary).
    match option_env!("CARGO_MANIFEST_DIR") {
        Some(dir) => Path::new(dir).join("../../difftest-corpus"),
        None => PathBuf::from("difftest-corpus"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_datasets::synth::{generate, Profile};

    fn sample() -> Reproducer {
        let m = generate(&Profile::balanced(), 42, "r");
        Reproducer {
            version: REPRO_VERSION,
            seed: 42,
            profile: "balanced".into(),
            deopt: false,
            pipeline: vec!["instcombine".into(), "dce".into()],
            failure: "none (test fixture)".into(),
            ir: cg_ir::printer::print_module(&m),
        }
    }

    #[test]
    fn roundtrips_through_json() {
        let r = sample();
        let json = serde_json::to_string(&r).unwrap();
        let back: Reproducer = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn healthy_case_replays_green() {
        sample().replay().unwrap();
    }

    #[test]
    fn unknown_pass_is_reported() {
        let mut r = sample();
        r.pipeline.push("no-such-pass".into());
        let err = r.replay().unwrap_err();
        assert!(err.contains("no-such-pass"), "{err}");
    }

    #[test]
    fn divergence_repro_roundtrip() {
        let r = DivergenceRepro {
            version: REPRO_VERSION,
            env: "llvm-v0".into(),
            benchmark: "benchmark://cbench-v1/qsort".into(),
            action_space: 0,
            actions: vec![3, 1, 4, 1, 5],
            metric_space: "IrInstructionCount".into(),
            expected: 120.0,
            actual: 121.0,
        };
        let dir = std::env::temp_dir().join("cg-difftest-divergence-test");
        let path = r.save(&dir).unwrap();
        let back = DivergenceRepro::load(&path).unwrap();
        assert_eq!(r, back);
        // Same content, same deterministic file name.
        assert_eq!(r.save(&dir).unwrap(), path);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_load_roundtrip() {
        let r = sample();
        let dir = std::env::temp_dir().join("cg-difftest-repro-test");
        let path = r.save(&dir).unwrap();
        let back = Reproducer::load(&path).unwrap();
        assert_eq!(r, back);
        let corpus = load_corpus(&dir).unwrap();
        assert!(corpus.iter().any(|(p, _)| *p == path));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
