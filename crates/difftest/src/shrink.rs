//! Two-axis failure minimization.
//!
//! A raw divergence is a (program, pipeline) pair of several hundred IR
//! lines and up to a dozen passes. Debugging starts with shrinking both
//! axes:
//!
//! 1. **Pipeline**: classic delta debugging ([`ddmin`]) finds a minimal
//!    failing subsequence — typically the one buggy pass plus whichever
//!    earlier pass sets up the triggering IR shape.
//! 2. **Program**: [`cg_ir::reduce::reduce_module`] greedily drops
//!    functions, folds branches, and deletes instructions, keeping only
//!    changes after which the module still verifies *and* still fails under
//!    the minimal pipeline.
//!
//! The failure predicate re-runs the full case (apply passes with panic
//! containment, verify after each, then the oracle), so any failure mode —
//! divergence, verifier rejection, or pass panic — counts as "still
//! failing". A shrink never trades one failure for silence, though it may
//! trade one failure mode for another; the reproducer records whatever the
//! minimal case exhibits.

use std::panic::{catch_unwind, AssertUnwindSafe};

use cg_ir::verify::verify_module;
use cg_ir::Module;
use cg_llvm::pass::find_pass;

use crate::oracle::{compare_modules, OracleConfig, OracleFailure};

/// How a fuzz case failed.
#[derive(Debug, Clone, PartialEq)]
pub enum FailureKind {
    /// A pass panicked.
    PassPanic {
        /// Name of the panicking pass.
        pass: String,
    },
    /// The verifier rejected the module immediately after a pass ran.
    VerifierReject {
        /// Name of the offending pass.
        pass: String,
        /// Verifier diagnostic.
        error: String,
    },
    /// The oracle observed a behavioural divergence.
    Divergence(OracleFailure),
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::PassPanic { pass } => write!(f, "pass `{pass}` panicked"),
            FailureKind::VerifierReject { pass, error } => {
                write!(f, "verifier rejected IR after `{pass}`: {error}")
            }
            FailureKind::Divergence(d) => write!(f, "divergence: {d}"),
        }
    }
}

/// Applies `pipeline` to a clone of `base` with per-pass verification and
/// panic containment, then runs the oracle. Returns the failure, if any.
///
/// This is *the* failure predicate: the fuzzer, both shrinking axes and the
/// reproducer replayer all go through it, so "failing" means the same thing
/// everywhere.
pub fn run_case(base: &Module, pipeline: &[String], oracle: &OracleConfig) -> Option<FailureKind> {
    let mut opt = base.clone();
    for name in pipeline {
        // Unknown names (None → "no failure") cannot occur for fuzzer-sampled
        // pipelines; for replayed reproducers the loader reports them first.
        let pass = find_pass(name)?;
        let result = catch_unwind(AssertUnwindSafe(|| pass.run(&mut opt)));
        if result.is_err() {
            return Some(FailureKind::PassPanic { pass: name.clone() });
        }
        if let Err(e) = verify_module(&opt) {
            return Some(FailureKind::VerifierReject {
                pass: name.clone(),
                error: e.to_string(),
            });
        }
    }
    match compare_modules(base, &opt, oracle) {
        Ok(_) => None,
        Err(f) => Some(FailureKind::Divergence(f)),
    }
}

/// Delta-debugs `items` to a minimal subsequence for which `fails` returns
/// `Some`. Implements ddmin with increasing granularity over subsets and
/// complements; the result is 1-minimal (removing any single element makes
/// the failure disappear).
pub fn ddmin<T: Clone, F>(items: &[T], mut fails: F) -> Vec<T>
where
    F: FnMut(&[T]) -> bool,
{
    let mut current: Vec<T> = items.to_vec();
    if current.is_empty() {
        return current;
    }
    let mut n = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(n);
        let mut reduced = false;
        // Try each subset.
        for start in (0..current.len()).step_by(chunk) {
            let subset: Vec<T> = current[start..(start + chunk).min(current.len())].to_vec();
            if subset.len() < current.len() && fails(&subset) {
                current = subset;
                n = 2;
                reduced = true;
                break;
            }
        }
        if reduced {
            continue;
        }
        // Try each complement.
        for start in (0..current.len()).step_by(chunk) {
            let mut complement = current.clone();
            complement.drain(start..(start + chunk).min(complement.len()));
            if !complement.is_empty() && complement.len() < current.len() && fails(&complement) {
                current = complement;
                n = (n - 1).max(2);
                reduced = true;
                break;
            }
        }
        if reduced {
            continue;
        }
        if n >= current.len() {
            break;
        }
        n = (n * 2).min(current.len());
    }
    // Final 1-minimality polish for the n-granularity edge cases.
    let mut i = 0;
    while current.len() > 1 && i < current.len() {
        let mut without: Vec<T> = current.clone();
        without.remove(i);
        if fails(&without) {
            current = without;
        } else {
            i += 1;
        }
    }
    current
}

/// Result of shrinking one failing case.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// Minimal failing pipeline.
    pub pipeline: Vec<String>,
    /// Reduced program (still verifies, still fails under `pipeline`).
    pub module: Module,
    /// The failure the minimal case exhibits.
    pub failure: FailureKind,
}

/// Shrinks a failing (program, pipeline) case on both axes.
///
/// `reduce_budget` bounds the number of program-reduction candidates tried
/// (each one re-runs the pipeline and oracle, so this is the knob trading
/// shrink quality for wall-clock).
pub fn shrink_case(
    base: &Module,
    pipeline: &[String],
    oracle: &OracleConfig,
    reduce_budget: u64,
) -> Option<Shrunk> {
    run_case(base, pipeline, oracle)?;
    // Axis 1: the pipeline, against the original program.
    let minimal = ddmin(pipeline, |subseq| run_case(base, subseq, oracle).is_some());
    // Axis 2: the program, against the minimal pipeline.
    let mut module = base.clone();
    cg_ir::reduce::reduce_module(
        &mut module,
        |cand| verify_module(cand).is_ok() && run_case(cand, &minimal, oracle).is_some(),
        reduce_budget,
    );
    let failure = run_case(&module, &minimal, oracle)?;
    Some(Shrunk {
        pipeline: minimal,
        module,
        failure,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddmin_finds_single_culprit() {
        let items: Vec<u32> = (0..16).collect();
        let min = ddmin(&items, |s| s.contains(&11));
        assert_eq!(min, vec![11]);
    }

    #[test]
    fn ddmin_finds_interacting_pair() {
        let items: Vec<u32> = (0..16).collect();
        let min = ddmin(&items, |s| s.contains(&3) && s.contains(&12));
        assert_eq!(min, vec![3, 12]);
    }

    #[test]
    fn ddmin_preserves_order() {
        let items = vec!["a", "b", "c", "d"];
        let min = ddmin(&items, |s| {
            let bi = s.iter().position(|x| *x == "b");
            let di = s.iter().position(|x| *x == "d");
            matches!((bi, di), (Some(b), Some(d)) if b < d)
        });
        assert_eq!(min, vec!["b", "d"]);
    }

    #[test]
    fn clean_case_does_not_shrink() {
        let m = cg_datasets::synth::generate(&cg_datasets::synth::Profile::balanced(), 1, "t");
        let pipeline = vec!["instcombine".to_string(), "dce".to_string()];
        assert!(shrink_case(&m, &pipeline, &OracleConfig::default(), 100).is_none());
    }
}
