//! The seeded fuzzing driver.
//!
//! Each case is a pure function of its seed: the seed picks a generator
//! profile (unless pinned), generates a module, optionally deoptimizes it,
//! samples a random pipeline over the full action space, and judges the
//! result with [`run_case`]. Failures are shrunk on both axes
//! ([`shrink_case`]) and written to the reproducer corpus.
//!
//! Work is fanned out over `--jobs` worker threads. Seeds are striped
//! statically (worker `i` takes seeds `start+i`, `start+i+jobs`, …) so a
//! run's case set is independent of scheduling; divergence reports flow back
//! over a crossbeam channel. A wall-clock budget stops workers from starting
//! new cases past the deadline — used by the CI smoke mode, where coverage
//! is bounded by time rather than seed count.
//!
//! Every case feeds the global [`cg_telemetry`] registry (`fuzz.*` metrics:
//! case counts, failure kinds, per-pass blame, case wall time), which `cg
//! stats` renders.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use cg_datasets::rng::{derive_seed, SplitMix64};
use cg_datasets::synth::{self, Profile, FUZZ_PROFILES};
use cg_ir::printer::print_module;
use cg_llvm::action_space::ActionSpace;
use crossbeam::channel;

use crate::oracle::OracleConfig;
use crate::repro::Reproducer;
use crate::shrink::{run_case, shrink_case, FailureKind};

/// Configuration for one fuzzing run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// First seed (inclusive).
    pub seed_start: u64,
    /// Last seed (exclusive).
    pub seed_end: u64,
    /// Worker threads.
    pub jobs: usize,
    /// Pin every case to this profile; `None` samples per seed.
    pub profile: Option<String>,
    /// Maximum pipeline length sampled per case.
    pub max_passes: usize,
    /// Extra perturbed-initializer inputs per oracle comparison.
    pub extra_inputs: u32,
    /// Probability a case deoptimizes the generated module first.
    pub deopt_chance: f64,
    /// Directory for emitted reproducers; `None` disables writing.
    pub corpus_dir: Option<PathBuf>,
    /// Wall-clock budget: workers start no new case past the deadline.
    pub budget: Option<Duration>,
    /// Program-reduction candidate budget per shrink.
    pub reduce_budget: u64,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            seed_start: 0,
            seed_end: 200,
            jobs: 1,
            profile: None,
            max_passes: 12,
            extra_inputs: 3,
            deopt_chance: 0.3,
            corpus_dir: None,
            budget: None,
            reduce_budget: 4000,
        }
    }
}

/// One shrunk divergence found during a run.
#[derive(Debug, Clone)]
pub struct DivergenceReport {
    /// Case seed.
    pub seed: u64,
    /// Profile the case generated with.
    pub profile: String,
    /// Whether the module was deoptimized before fuzzing.
    pub deopt: bool,
    /// The pipeline as originally sampled.
    pub original_pipeline: Vec<String>,
    /// The delta-debugged minimal pipeline.
    pub pipeline: Vec<String>,
    /// The failure the minimal case exhibits.
    pub failure: String,
    /// Line count of the reduced IR.
    pub ir_lines: usize,
    /// Where the reproducer was written, if a corpus dir was configured.
    pub repro_path: Option<PathBuf>,
}

/// Aggregate result of a fuzzing run.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Cases executed.
    pub cases: u64,
    /// Seeds skipped because the wall-clock budget expired.
    pub skipped: u64,
    /// All divergences found, shrunk.
    pub divergences: Vec<DivergenceReport>,
    /// Total wall time.
    pub elapsed: Duration,
}

impl FuzzReport {
    /// True if no case failed.
    pub fn clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// The deterministic per-case inputs derived from a seed.
struct Case {
    profile_name: String,
    profile: Profile,
    deopt: bool,
    pipeline: Vec<String>,
}

fn plan_case(seed: u64, cfg: &FuzzConfig, space: &ActionSpace) -> Case {
    let mut rng = SplitMix64::new(derive_seed("difftest", seed));
    let profile_name = match &cfg.profile {
        Some(p) => p.clone(),
        None => FUZZ_PROFILES[rng.index(FUZZ_PROFILES.len())].to_string(),
    };
    let profile = Profile::named(&profile_name)
        .unwrap_or_else(|| panic!("unknown fuzz profile `{profile_name}`"));
    let deopt = rng.chance(cfg.deopt_chance);
    let n_passes = 1 + rng.index(cfg.max_passes.max(1));
    let names = space.names();
    let pipeline: Vec<String> = (0..n_passes)
        .map(|_| names[rng.index(names.len())].to_string())
        .collect();
    Case {
        profile_name,
        profile,
        deopt,
        pipeline,
    }
}

/// Runs one fuzz case end-to-end; returns a shrunk report on failure.
fn fuzz_one(seed: u64, cfg: &FuzzConfig, space: &ActionSpace) -> Option<DivergenceReport> {
    let tel = cg_telemetry::global();
    let started = Instant::now();
    let case = plan_case(seed, cfg, space);
    let mut module = synth::generate(&case.profile, seed, &format!("fuzz-{seed}"));
    if case.deopt {
        cg_datasets::deopt::deoptimize(&mut module);
    }
    let oracle = OracleConfig {
        extra_inputs: cfg.extra_inputs,
        seed: derive_seed("difftest-oracle", seed),
        ..OracleConfig::default()
    };
    tel.fuzz.cases.inc();
    tel.fuzz.oracle_runs.inc();
    let failure = run_case(&module, &case.pipeline, &oracle);
    tel.fuzz.case_wall.record_duration(started.elapsed());
    let failure = failure?;
    match &failure {
        FailureKind::PassPanic { .. } => tel.fuzz.pass_panics.inc(),
        FailureKind::VerifierReject { .. } => tel.fuzz.verifier_rejects.inc(),
        FailureKind::Divergence(_) => tel.fuzz.divergences.inc(),
    }
    // Shrink both axes. The unshrinkable fallback (shrink_case returning
    // None can only happen if the failure is flaky) reports the raw case.
    let (pipeline, reduced, failure) =
        match shrink_case(&module, &case.pipeline, &oracle, cfg.reduce_budget) {
            Some(s) => {
                tel.fuzz.shrunk.inc();
                (s.pipeline, s.module, s.failure)
            }
            None => (case.pipeline.clone(), module.clone(), failure),
        };
    for pass in &pipeline {
        tel.fuzz.blame.get(pass).inc();
    }
    let ir = print_module(&reduced);
    let repro = Reproducer {
        version: crate::repro::REPRO_VERSION,
        seed,
        profile: case.profile_name.clone(),
        deopt: case.deopt,
        pipeline: pipeline.clone(),
        failure: failure.to_string(),
        ir: ir.clone(),
    };
    let repro_path = cfg.corpus_dir.as_ref().and_then(|dir| repro.save(dir).ok());
    Some(DivergenceReport {
        seed,
        profile: case.profile_name,
        deopt: case.deopt,
        original_pipeline: case.pipeline,
        pipeline,
        failure: failure.to_string(),
        ir_lines: ir.lines().count(),
        repro_path,
    })
}

/// Runs the fuzzer over `cfg`'s seed range.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let started = Instant::now();
    let deadline = cfg.budget.map(|b| started + b);
    let jobs = cfg.jobs.max(1);
    let (tx, rx) = channel::unbounded::<Result<DivergenceReport, u64>>();
    let space = ActionSpace::new();
    std::thread::scope(|scope| {
        for worker in 0..jobs {
            let tx = tx.clone();
            let cfg = &*cfg;
            let space = &space;
            scope.spawn(move || {
                let mut seed = cfg.seed_start + worker as u64;
                while seed < cfg.seed_end {
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        // Budget expired: report remaining seeds as skipped.
                        let _ = tx.send(Err(seed));
                        return;
                    }
                    if let Some(report) = fuzz_one(seed, cfg, space) {
                        let _ = tx.send(Ok(report));
                    }
                    seed += jobs as u64;
                }
            });
        }
        drop(tx);
    });
    let mut divergences = Vec::new();
    let mut skipped = 0u64;
    let stride = jobs as u64;
    for msg in rx.iter() {
        match msg {
            Ok(report) => divergences.push(report),
            Err(first_unrun) => {
                skipped += (cfg.seed_end.saturating_sub(first_unrun)).div_ceil(stride);
            }
        }
    }
    divergences.sort_by_key(|d| d.seed);
    let total = cfg.seed_end.saturating_sub(cfg.seed_start);
    FuzzReport {
        cases: total.saturating_sub(skipped),
        skipped,
        divergences,
        elapsed: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_planning_is_deterministic() {
        let cfg = FuzzConfig::default();
        let space = ActionSpace::new();
        let a = plan_case(17, &cfg, &space);
        let b = plan_case(17, &cfg, &space);
        assert_eq!(a.profile_name, b.profile_name);
        assert_eq!(a.pipeline, b.pipeline);
        assert_eq!(a.deopt, b.deopt);
    }

    #[test]
    fn small_run_is_clean_and_counts_cases() {
        let cfg = FuzzConfig {
            seed_start: 0,
            seed_end: 6,
            jobs: 2,
            ..FuzzConfig::default()
        };
        let report = run_fuzz(&cfg);
        assert_eq!(report.cases, 6);
        assert_eq!(report.skipped, 0);
        assert!(
            report.clean(),
            "unexpected divergences: {:#?}",
            report.divergences
        );
    }

    #[test]
    fn budget_zero_skips_everything() {
        let cfg = FuzzConfig {
            seed_start: 0,
            seed_end: 40,
            jobs: 4,
            budget: Some(Duration::ZERO),
            ..FuzzConfig::default()
        };
        let report = run_fuzz(&cfg);
        assert_eq!(report.cases + report.skipped, 40);
        assert_eq!(report.cases, 0);
    }
}
