//! The differential oracle.
//!
//! Given a reference module and an optimized module derived from it, the
//! oracle decides whether the optimization preserved observable behaviour.
//! Observable behaviour is what the interpreter reports: the value returned
//! by `main` and the final contents of global memory (`globals_hash`), for
//! the original program *and* for a corpus of input variants that perturb
//! mutable global initializers.
//!
//! ## The input corpus and its soundness contract
//!
//! Programs here take no external input; their "input" is the initial state
//! of global memory. To exercise more than one path, the oracle re-runs both
//! modules with the initializers of some globals replaced by seeded random
//! values — applied *identically* on both sides.
//!
//! Only globals marked non-`constant` in **both** modules may be perturbed:
//! `globalopt` marks never-stored globals constant and folds their loads, so
//! an initializer baked into folded code must never be changed afterwards.
//! This is the semantic contract passes rely on — *a pass may only assume
//! the initial value of a global it has proven (and marked) constant* — and
//! the oracle enforces exactly that boundary.
//!
//! ## Traps and fuel
//!
//! A reference trap (or fuel exhaustion) on some input makes that input's
//! behaviour unobservable — optimizations are free to change what a trapping
//! program does — so the comparison is skipped. The optimized module runs
//! with a generous fuel multiple of the reference limit: passes like full
//! unrolling legitimately change dynamic instruction counts, but an
//! optimized program that *cannot finish* where the reference did is a
//! divergence ([`OracleFailure::FuelDiverged`]).

use std::fmt;

use cg_datasets::rng::SplitMix64;
use cg_ir::interp::{run_main, ExecError, ExecLimits, Value};
use cg_ir::verify::verify_module;
use cg_ir::Module;

/// Configuration for one oracle comparison.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Number of perturbed-initializer input variants beyond the base run.
    pub extra_inputs: u32,
    /// Seed for deriving the input corpus.
    pub seed: u64,
    /// Execution limits for the reference module.
    pub limits: ExecLimits,
    /// Fuel multiplier granted to the optimized module (≥ 1).
    pub opt_fuel_factor: u64,
}

impl Default for OracleConfig {
    fn default() -> OracleConfig {
        OracleConfig {
            extra_inputs: 3,
            seed: 0x9e3779b97f4a7c15,
            limits: ExecLimits::default(),
            opt_fuel_factor: 4,
        }
    }
}

/// A behavioural divergence between reference and optimized modules.
///
/// `input` identifies the corpus entry: 0 is the unperturbed program,
/// `1..=extra_inputs` are the perturbed-initializer variants.
#[derive(Debug, Clone, PartialEq)]
pub enum OracleFailure {
    /// The optimized module no longer satisfies the IR verifier.
    InvalidIr {
        /// Verifier diagnostic.
        error: String,
    },
    /// The optimized module trapped on an input the reference completed.
    TrapIntroduced {
        /// Corpus input index.
        input: u32,
        /// The trap.
        error: ExecError,
    },
    /// The optimized module exhausted its (already multiplied) fuel budget
    /// on an input the reference completed within budget.
    FuelDiverged {
        /// Corpus input index.
        input: u32,
    },
    /// `main` returned different values.
    ReturnMismatch {
        /// Corpus input index.
        input: u32,
        /// Reference return value.
        reference: Option<Value>,
        /// Optimized return value.
        optimized: Option<Value>,
    },
    /// Final global memory differs.
    MemoryMismatch {
        /// Corpus input index.
        input: u32,
        /// Reference globals hash.
        reference: u64,
        /// Optimized globals hash.
        optimized: u64,
    },
}

impl fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleFailure::InvalidIr { error } => {
                write!(f, "verifier rejected optimized IR: {error}")
            }
            OracleFailure::TrapIntroduced { input, error } => {
                write!(
                    f,
                    "input {input}: optimized module trapped ({error}) where reference completed"
                )
            }
            OracleFailure::FuelDiverged { input } => {
                write!(
                    f,
                    "input {input}: optimized module exhausted fuel where reference completed"
                )
            }
            OracleFailure::ReturnMismatch {
                input,
                reference,
                optimized,
            } => {
                write!(f, "input {input}: return mismatch (reference {reference:?}, optimized {optimized:?})")
            }
            OracleFailure::MemoryMismatch {
                input,
                reference,
                optimized,
            } => {
                write!(
                    f,
                    "input {input}: global memory mismatch (reference {reference:#x}, optimized {optimized:#x})"
                )
            }
        }
    }
}

/// Indices of globals whose initializers the oracle may perturb: present in
/// both modules under the same name and non-constant in both.
fn perturbable(reference: &Module, optimized: &Module) -> Vec<usize> {
    let n = reference.globals().len().min(optimized.globals().len());
    (0..n)
        .filter(|&i| {
            let r = &reference.globals()[i];
            let o = &optimized.globals()[i];
            r.name == o.name && !r.constant && !o.constant
        })
        .collect()
}

/// Overwrites the initializers of globals `targets` in `m` with values drawn
/// from a clone of `rng`. Both sides of a comparison call this with equal
/// rng state, so perturbation is identical.
fn perturb(m: &mut Module, targets: &[usize], rng: &mut SplitMix64) {
    for &gi in targets {
        let g = &mut m.globals_mut()[gi];
        let slots = g.slots as usize;
        g.init = (0..slots).map(|_| rng.range_i64(-1000, 1000)).collect();
    }
}

/// Compares `optimized` against `reference` over the full input corpus.
///
/// Returns the number of executed (reference, optimized) run pairs on
/// success — callers feed this into telemetry — or the first divergence.
pub fn compare_modules(
    reference: &Module,
    optimized: &Module,
    cfg: &OracleConfig,
) -> Result<u32, OracleFailure> {
    if let Err(e) = verify_module(optimized) {
        return Err(OracleFailure::InvalidIr {
            error: e.to_string(),
        });
    }
    let opt_limits = ExecLimits {
        max_insts: cfg
            .limits
            .max_insts
            .saturating_mul(cfg.opt_fuel_factor.max(1)),
        ..cfg.limits
    };
    let targets = perturbable(reference, optimized);
    let mut runs = 0u32;
    for input in 0..=cfg.extra_inputs {
        let (ref_m, opt_m);
        let (ref_view, opt_view): (&Module, &Module) = if input == 0 {
            (reference, optimized)
        } else {
            if targets.is_empty() {
                break; // nothing to vary; extra inputs would repeat input 0
            }
            let mut rng_r = SplitMix64::new(cfg.seed.wrapping_add(u64::from(input)));
            let mut rng_o = SplitMix64::new(cfg.seed.wrapping_add(u64::from(input)));
            let mut r = reference.clone();
            let mut o = optimized.clone();
            perturb(&mut r, &targets, &mut rng_r);
            perturb(&mut o, &targets, &mut rng_o);
            ref_m = r;
            opt_m = o;
            (&ref_m, &opt_m)
        };
        let ref_out = match run_main(ref_view, &cfg.limits) {
            Ok(out) => out,
            // Reference trapped or ran out of fuel: this input's behaviour
            // is unobservable (optimizations may remove dead trapping code),
            // so it cannot be compared.
            Err(_) => continue,
        };
        runs += 1;
        let opt_out = match run_main(opt_view, &opt_limits) {
            Ok(out) => out,
            Err(ExecError::FuelExhausted) => return Err(OracleFailure::FuelDiverged { input }),
            Err(error) => return Err(OracleFailure::TrapIntroduced { input, error }),
        };
        if ref_out.ret != opt_out.ret {
            return Err(OracleFailure::ReturnMismatch {
                input,
                reference: ref_out.ret,
                optimized: opt_out.ret,
            });
        }
        if ref_out.globals_hash != opt_out.globals_hash {
            return Err(OracleFailure::MemoryMismatch {
                input,
                reference: ref_out.globals_hash,
                optimized: opt_out.globals_hash,
            });
        }
    }
    Ok(runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_datasets::synth::{generate, Profile};

    #[test]
    fn identical_modules_compare_equal() {
        let m = generate(&Profile::balanced(), 7, "t");
        let runs = compare_modules(&m, &m, &OracleConfig::default()).unwrap();
        assert!(runs >= 1);
    }

    #[test]
    fn perturbed_inputs_are_deterministic() {
        let m = generate(&Profile::aliasing(), 11, "t");
        let cfg = OracleConfig::default();
        assert_eq!(compare_modules(&m, &m, &cfg), compare_modules(&m, &m, &cfg));
    }

    #[test]
    fn detects_wrong_return() {
        // main returns a load of g[0]; sabotage the optimized side's
        // initializer — equivalent to a pass illegally folding a mutable
        // global.
        use cg_ir::builder::ModuleBuilder;
        use cg_ir::{Operand, Type};
        let mut mb = ModuleBuilder::new("t");
        let g = mb.add_global("g", 1, vec![5]);
        let mut fb = mb.begin_function("main", &[], Type::I64);
        let v = fb.load(Type::I64, Operand::Global(g));
        fb.ret(Some(v));
        fb.finish();
        let m = mb.finish();
        let mut bad = m.clone();
        bad.globals_mut()[0].init[0] = 6;
        let err = compare_modules(&m, &bad, &OracleConfig::default()).unwrap_err();
        match err {
            OracleFailure::ReturnMismatch { .. } | OracleFailure::MemoryMismatch { .. } => {}
            other => panic!("unexpected failure kind: {other}"),
        }
    }

    #[test]
    fn constant_globals_are_never_perturbed() {
        let mut m = generate(&Profile::balanced(), 5, "t");
        for g in m.globals_mut() {
            g.constant = true;
        }
        // With every global constant there are no perturbable targets; the
        // corpus collapses to the base input only.
        let runs = compare_modules(&m, &m, &OracleConfig::default()).unwrap();
        assert_eq!(runs, 1);
    }
}
