//! Integration tests for session checkpointing and in-service budgets: the
//! O(K) recovery rung of the ladder (restore the latest snapshot, replay
//! only the suffix) and the in-band budget kill (typed error, no restart).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cg_core::chaos::{FaultKind, FaultPlan};
use cg_core::envs::llvm::LlvmSession;
use cg_core::envs::session_factory;
use cg_core::service::SessionFactory;
use cg_core::session::{ActionOutcome, CompilationSession};
use cg_core::space::{
    ActionSpaceInfo, Observation, ObservationKind, ObservationSpaceInfo, RewardSpaceInfo,
};
use cg_core::{CgError, CompilerEnv, ResourceBudget, RetryPolicy};

use proptest::prelude::*;

/// A deterministic session whose state is a step counter, instrumented to
/// count every apply attempt across all instances (so a test can prove how
/// many actions recovery actually replayed) and to panic exactly once, at
/// a scripted global apply ordinal.
struct CountingSession {
    steps: u64,
    attempts: Arc<AtomicU64>,
    panic_at: u64,
}

impl CompilationSession for CountingSession {
    fn action_spaces(&self) -> Vec<ActionSpaceInfo> {
        vec![ActionSpaceInfo {
            name: "count".into(),
            actions: vec!["bump".into(); 8],
        }]
    }
    fn observation_spaces(&self) -> Vec<ObservationSpaceInfo> {
        vec![ObservationSpaceInfo {
            name: "steps".into(),
            kind: ObservationKind::Scalar,
            deterministic: true,
            platform_dependent: false,
        }]
    }
    fn reward_spaces(&self) -> Vec<RewardSpaceInfo> {
        vec![RewardSpaceInfo {
            name: "steps".into(),
            metric: "steps".into(),
            sign: 1.0,
            baseline: None,
            deterministic: true,
        }]
    }
    fn init(&mut self, _b: &str, _s: usize) -> Result<(), String> {
        Ok(())
    }
    fn apply_action(&mut self, _a: usize) -> Result<ActionOutcome, String> {
        let ordinal = self.attempts.fetch_add(1, Ordering::SeqCst) + 1;
        if ordinal == self.panic_at {
            panic!("chaos: scripted fault at apply ordinal {ordinal}");
        }
        self.steps += 1;
        Ok(ActionOutcome {
            end_of_episode: false,
            action_space_changed: false,
            changed: true,
        })
    }
    fn observe(&mut self, _s: &str) -> Result<Observation, String> {
        Ok(Observation::Scalar(self.steps as f64))
    }
    fn fork(&self) -> Box<dyn CompilationSession> {
        Box::new(CountingSession {
            steps: self.steps,
            attempts: Arc::clone(&self.attempts),
            panic_at: self.panic_at,
        })
    }
    fn save_state(&self) -> Option<Vec<u8>> {
        Some(self.steps.to_le_bytes().to_vec())
    }
    fn load_state(&mut self, state: &[u8]) -> Result<(), String> {
        let bytes: [u8; 8] = state.try_into().map_err(|_| "bad checkpoint".to_string())?;
        self.steps = u64::from_le_bytes(bytes);
        Ok(())
    }
}

fn counting_factory(panic_at: u64) -> (SessionFactory, Arc<AtomicU64>) {
    let attempts = Arc::new(AtomicU64::new(0));
    let attempts2 = Arc::clone(&attempts);
    let factory: SessionFactory = Arc::new(move || {
        Box::new(CountingSession {
            steps: 0,
            attempts: Arc::clone(&attempts2),
            panic_at,
        })
    });
    (factory, attempts)
}

/// The acceptance scenario: a 200-step episode whose 196th apply (episode
/// step index 195) panics the session away. With the default checkpoint
/// interval K = 10 the worker has a depth-190 snapshot, so recovery must
/// replay exactly the 5-action suffix — not the 195-action history.
#[test]
fn fault_at_step_195_of_200_replays_at_most_k_actions() {
    const STEPS: u64 = 200;
    const FAULT_AT: u64 = 196; // apply ordinal (1-based): episode step 195
    let (factory, attempts) = counting_factory(FAULT_AT);
    let mut env = CompilerEnv::with_factory(
        "count-v0",
        factory,
        "benchmark://count",
        "steps",
        "steps",
        Duration::from_secs(10),
    )
    .unwrap();
    env.set_retry_policy(
        RetryPolicy::default().with_backoff(Duration::from_millis(1), Duration::from_millis(5)),
    );
    env.reset().unwrap();
    for s in 0..STEPS {
        let step = env.step((s % 8) as usize).unwrap();
        assert_eq!(step.observation, Observation::Scalar((s + 1) as f64));
    }
    // Restored state is byte-identical: the counter arrived at exactly 200.
    assert_eq!(
        env.observe("steps").unwrap(),
        Observation::Scalar(STEPS as f64)
    );
    assert!(
        env.service_restarts() >= 1,
        "panic recovery restarts the service"
    );
    assert_eq!(
        env.checkpoint_store().restores(),
        1,
        "recovery used a checkpoint"
    );
    // Apply-attempt accounting: 195 pre-fault successes + 1 panic + the
    // replayed suffix + 1 retried action + 4 remaining actions. The suffix
    // is everything between; prove it was ≤ K (and exactly 5 for K = 10).
    let total = attempts.load(Ordering::SeqCst);
    let replayed = total - (195 + 1 + 1 + 4);
    assert!(
        replayed <= 10,
        "recovery replayed {replayed} actions, more than K=10"
    );
    assert_eq!(
        replayed, 5,
        "depth-190 checkpoint implies a 5-action suffix"
    );
}

/// Without checkpoint support (`save_state` returns `None`) the same fault
/// is still recovered — by full replay.
#[test]
fn fault_recovery_without_checkpoints_replays_everything() {
    struct NoCkpt(CountingSession);
    impl CompilationSession for NoCkpt {
        fn action_spaces(&self) -> Vec<ActionSpaceInfo> {
            self.0.action_spaces()
        }
        fn observation_spaces(&self) -> Vec<ObservationSpaceInfo> {
            self.0.observation_spaces()
        }
        fn reward_spaces(&self) -> Vec<RewardSpaceInfo> {
            self.0.reward_spaces()
        }
        fn init(&mut self, b: &str, s: usize) -> Result<(), String> {
            self.0.init(b, s)
        }
        fn apply_action(&mut self, a: usize) -> Result<ActionOutcome, String> {
            self.0.apply_action(a)
        }
        fn observe(&mut self, s: &str) -> Result<Observation, String> {
            self.0.observe(s)
        }
        fn fork(&self) -> Box<dyn CompilationSession> {
            unimplemented!("not forked in this test")
        }
    }
    const FAULT_AT: u64 = 26; // episode step 25 of 30
    let attempts = Arc::new(AtomicU64::new(0));
    let attempts2 = Arc::clone(&attempts);
    let factory: SessionFactory = Arc::new(move || {
        Box::new(NoCkpt(CountingSession {
            steps: 0,
            attempts: Arc::clone(&attempts2),
            panic_at: FAULT_AT,
        }))
    });
    let mut env = CompilerEnv::with_factory(
        "count-v0",
        factory,
        "benchmark://count",
        "steps",
        "steps",
        Duration::from_secs(10),
    )
    .unwrap();
    env.set_retry_policy(
        RetryPolicy::default().with_backoff(Duration::from_millis(1), Duration::from_millis(5)),
    );
    env.reset().unwrap();
    for s in 0..30 {
        env.step((s % 8) as usize).unwrap();
    }
    assert_eq!(env.observe("steps").unwrap(), Observation::Scalar(30.0));
    assert_eq!(
        env.checkpoint_store().restores(),
        0,
        "nothing to restore from"
    );
    // 25 pre-fault + 1 panic + 25 full replay + 1 retry + 4 remaining.
    assert_eq!(attempts.load(Ordering::SeqCst), 56);
}

/// Rung 1 end to end: a hang contained by the step wall budget surfaces as
/// a typed `BudgetExceeded` within ~2× the budget — no client timeout, no
/// service restart — when recovery cannot outrun a deterministic hang.
#[test]
fn budget_violation_is_typed_and_prompt_without_restart() {
    const WALL: Duration = Duration::from_millis(100);
    // Every apply hangs far past the wall budget; the client deadline is
    // far past both, so only the in-service budget can answer quickly.
    let (factory, _stats) = FaultPlan::seeded(21)
        .with_hang_prob(1.0)
        .with_hang_duration(Duration::from_secs(5))
        .wrap(session_factory("llvm-v0").unwrap());
    let mut env = CompilerEnv::with_factory(
        "llvm-v0",
        factory,
        "benchmark://cbench-v1/crc32",
        "Autophase",
        "IrInstructionCount",
        Duration::from_secs(60),
    )
    .unwrap();
    env.set_retry_policy(
        RetryPolicy::default()
            .with_max_attempts(2)
            .with_backoff(Duration::from_millis(1), Duration::from_millis(5)),
    );
    env.set_resource_budget(ResourceBudget::default().with_step_wall(WALL))
        .unwrap();
    env.reset().unwrap();
    let started = Instant::now();
    let err = env.step(0).unwrap_err();
    let elapsed = started.elapsed();
    assert!(
        matches!(err, CgError::BudgetExceeded(_)),
        "expected a typed budget violation, got {err:?}"
    );
    // Two attempts, each killed at the wall: comfortably under 2× budget
    // per attempt (the 2s margin absorbs scheduler noise in CI).
    assert!(
        elapsed < 2 * WALL * 2 + Duration::from_secs(2),
        "budget kill took {elapsed:?}, not in-band"
    );
    assert_eq!(
        env.service_restarts(),
        0,
        "budget kills must not restart the service"
    );
}

/// A budget-killed step on a *recoverable* episode is absorbed: the session
/// is rebuilt from a checkpoint and the episode continues, still without a
/// service restart.
#[test]
fn budget_kill_recovers_via_checkpoint_without_restart() {
    // One scheduled hang at apply ordinal 25 (episode step 24); every other
    // apply is clean, so the retry succeeds.
    let (factory, stats) = FaultPlan::seeded(22)
        .schedule(24, FaultKind::Hang)
        .with_hang_duration(Duration::from_secs(5))
        .wrap(session_factory("llvm-v0").unwrap());
    let mut env = CompilerEnv::with_factory(
        "llvm-v0",
        factory,
        "benchmark://cbench-v1/crc32",
        "Autophase",
        "IrInstructionCount",
        Duration::from_secs(60),
    )
    .unwrap();
    env.set_retry_policy(
        RetryPolicy::default().with_backoff(Duration::from_millis(1), Duration::from_millis(5)),
    );
    env.set_resource_budget(ResourceBudget::default().with_step_wall(Duration::from_millis(250)))
        .unwrap();
    env.reset().unwrap();
    let pool = ["instcombine", "dce", "gvn", "sroa"];
    for s in 0..30u64 {
        let name = pool[(s % 4) as usize];
        let a = env.action_space().index_of(name).unwrap();
        env.step(a).unwrap();
    }
    assert_eq!(stats.hangs(), 1, "the scheduled hang fired");
    assert_eq!(env.service_restarts(), 0, "contained in-band: no restart");
    assert!(
        env.checkpoint_store().restores() >= 1,
        "recovery should have used the depth-20 checkpoint"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// The checkpoint contract for the LLVM backend: `save_state` →
    /// `load_state` into a *fresh* session re-serializes byte-identically
    /// and behaves identically, for arbitrary action prefixes.
    #[test]
    fn llvm_save_load_round_trips_byte_identical(
        actions in proptest::collection::vec(0usize..124, 0..6),
        probe in 0usize..124,
    ) {
        let mut s = LlvmSession::new();
        s.init("benchmark://cbench-v1/crc32", 0).unwrap();
        for &a in &actions {
            let _ = s.apply_action(a);
        }
        let snap = s.save_state().expect("llvm sessions support checkpoints");

        let mut restored = LlvmSession::new();
        restored.init("benchmark://cbench-v1/crc32", 0).unwrap();
        restored.load_state(&snap).unwrap();
        let resnap = restored.save_state().unwrap();
        prop_assert_eq!(&snap, &resnap, "re-serialization must be byte-identical");
        prop_assert_eq!(s.state_size(), restored.state_size());

        // Behaviorally identical: one more arbitrary action lands both
        // sessions on the same metric.
        let _ = s.apply_action(probe);
        let _ = restored.apply_action(probe);
        prop_assert_eq!(
            s.observe("IrInstructionCount").unwrap(),
            restored.observe("IrInstructionCount").unwrap()
        );
    }
}
