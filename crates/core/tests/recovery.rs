//! Integration tests for mid-episode fault recovery: a service that panics
//! or hangs partway through an episode is restarted and the episode restored
//! by action replay, transparently to the caller; replay divergence and
//! unrecoverable failures surface as typed errors.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cg_core::chaos::{FaultKind, FaultPlan};
use cg_core::envs::session_factory;
use cg_core::service::SessionFactory;
use cg_core::session::{ActionOutcome, CompilationSession};
use cg_core::space::{
    ActionSpaceInfo, Observation, ObservationKind, ObservationSpaceInfo, RewardSpaceInfo,
};
use cg_core::{CgError, CompilerEnv, RetryPolicy};

const BENCH: &str = "benchmark://cbench-v1/crc32";

/// A 10-action episode; the 5th action (apply index 4) is the fault point.
const RECIPE: [&str; 10] = [
    "sroa",
    "mem2reg",
    "instcombine",
    "gvn",
    "dse",
    "load-elim",
    "adce",
    "simplifycfg-aggressive",
    "dce",
    "instcombine",
];

fn llvm_env(factory: SessionFactory, timeout: Duration) -> CompilerEnv {
    CompilerEnv::with_factory(
        "llvm-v0",
        factory,
        BENCH,
        "Autophase",
        "IrInstructionCount",
        timeout,
    )
    .unwrap()
}

/// Runs the recipe fault-free: (cumulative reward, final Autophase vector).
fn reference_run() -> (f64, Observation) {
    let mut env = llvm_env(session_factory("llvm-v0").unwrap(), Duration::from_secs(30));
    env.reset().unwrap();
    for name in RECIPE {
        let a = env.action_space().index_of(name).unwrap();
        env.step(a).unwrap();
    }
    let obs = env.observe("Autophase").unwrap();
    (env.episode_reward(), obs)
}

#[test]
fn panic_at_step_5_of_10_is_recovered_transparently() {
    let (ref_reward, ref_obs) = reference_run();
    let tel = cg_telemetry::global();
    let (factory, stats) = FaultPlan::seeded(11)
        .schedule(4, FaultKind::Panic)
        .wrap(session_factory("llvm-v0").unwrap());
    let mut env = llvm_env(factory, Duration::from_secs(30));
    env.reset().unwrap();
    let recoveries_before = tel.recoveries.get();
    for name in RECIPE {
        let a = env.action_space().index_of(name).unwrap();
        // Every step returns Ok — including the one whose first attempt
        // panicked the session away.
        env.step(a).unwrap();
    }
    assert_eq!(stats.panics(), 1, "exactly the scheduled panic fired");
    assert!(
        env.service_restarts() >= 1,
        "recovery restarted the service"
    );
    assert!(
        tel.recoveries.get() > recoveries_before,
        "replay recovery not recorded"
    );
    assert!(
        tel.trace.events().iter().any(|e| e.span == "env:replay"),
        "no env:replay trace"
    );
    assert!(
        (env.episode_reward() - ref_reward).abs() < 1e-9,
        "episode reward diverged after recovery: {} vs {ref_reward}",
        env.episode_reward()
    );
    assert_eq!(
        env.observe("Autophase").unwrap(),
        ref_obs,
        "state diverged after recovery"
    );
}

#[test]
fn hang_at_step_5_of_10_is_recovered_transparently() {
    let (ref_reward, ref_obs) = reference_run();
    let (factory, stats) = FaultPlan::seeded(12)
        .schedule(4, FaultKind::Hang)
        .with_hang_duration(Duration::from_secs(3))
        .wrap(session_factory("llvm-v0").unwrap());
    let mut env = llvm_env(factory, Duration::from_millis(500));
    env.reset().unwrap();
    for name in RECIPE {
        let a = env.action_space().index_of(name).unwrap();
        env.step(a).unwrap();
    }
    assert_eq!(stats.hangs(), 1, "exactly the scheduled hang fired");
    assert!(
        env.service_restarts() >= 1,
        "the wedged service was restarted"
    );
    assert!((env.episode_reward() - ref_reward).abs() < 1e-9);
    assert_eq!(env.observe("Autophase").unwrap(), ref_obs);
}

/// A deterministic session whose metric depends on which factory invocation
/// built it: metric = construction_index * `gen_scale` + applies. With
/// `gen_scale > 0` it models a nondeterministic compiler (every restart
/// produces different numbers); with `gen_scale == 0` it is fully
/// deterministic across restarts.
struct GenSession {
    gen: u64,
    gen_scale: u64,
    steps: u64,
}

impl CompilationSession for GenSession {
    fn action_spaces(&self) -> Vec<ActionSpaceInfo> {
        vec![ActionSpaceInfo {
            name: "gen".into(),
            actions: vec!["a".into(); 4],
        }]
    }
    fn observation_spaces(&self) -> Vec<ObservationSpaceInfo> {
        vec![ObservationSpaceInfo {
            name: "Metric".into(),
            kind: ObservationKind::Scalar,
            deterministic: self.gen_scale == 0,
            platform_dependent: false,
        }]
    }
    fn reward_spaces(&self) -> Vec<RewardSpaceInfo> {
        vec![RewardSpaceInfo {
            name: "Metric".into(),
            metric: "Metric".into(),
            sign: 1.0,
            baseline: None,
            deterministic: self.gen_scale == 0,
        }]
    }
    fn init(&mut self, _b: &str, _s: usize) -> Result<(), String> {
        Ok(())
    }
    fn apply_action(&mut self, _a: usize) -> Result<ActionOutcome, String> {
        self.steps += 1;
        Ok(ActionOutcome {
            end_of_episode: false,
            action_space_changed: false,
            changed: true,
        })
    }
    fn observe(&mut self, _s: &str) -> Result<Observation, String> {
        Ok(Observation::Scalar(
            (self.gen * self.gen_scale + self.steps) as f64,
        ))
    }
    fn fork(&self) -> Box<dyn CompilationSession> {
        Box::new(GenSession {
            gen: self.gen,
            gen_scale: self.gen_scale,
            steps: self.steps,
        })
    }
}

fn gen_factory(gen_scale: u64) -> SessionFactory {
    let built = Arc::new(AtomicU64::new(0));
    Arc::new(move || {
        let gen = built.fetch_add(1, Ordering::Relaxed);
        Box::new(GenSession {
            gen,
            gen_scale,
            steps: 0,
        })
    })
}

fn gen_env(factory: SessionFactory) -> CompilerEnv {
    CompilerEnv::with_factory(
        "gen-v0",
        factory,
        "benchmark://none",
        "Metric",
        "Metric",
        Duration::from_secs(5),
    )
    .unwrap()
}

#[test]
fn nondeterministic_replay_surfaces_typed_divergence() {
    let tel = cg_telemetry::global();
    // Every restart shifts the metric by 1000, so a replayed episode can
    // never match the pre-fault value.
    let (factory, _) = FaultPlan::seeded(5)
        .schedule(2, FaultKind::Panic)
        .wrap(gen_factory(1000));
    let mut env = gen_env(factory);
    env.set_retry_policy(
        RetryPolicy::default().with_backoff(Duration::from_millis(1), Duration::from_millis(5)),
    );
    env.reset().unwrap();
    env.step(0).unwrap(); // apply 0
    env.step(1).unwrap(); // apply 1
    let divergences_before = tel.replay_divergences.get();
    let err = env.step(2).unwrap_err(); // apply 2 panics; replay diverges
    let CgError::ReplayDivergence { repro, .. } = &err else {
        panic!("divergent replay must be typed, got {err:?}");
    };
    // The error carries a self-contained reproducer on disk.
    let path = repro
        .as_deref()
        .expect("divergence should dump a reproducer");
    let dump = cg_difftest::DivergenceRepro::load(std::path::Path::new(path)).unwrap();
    // The committed history that diverged on replay (the panicked action
    // itself was never committed).
    assert_eq!(dump.actions, vec![0, 1]);
    assert_eq!(dump.metric_space, "Metric");
    assert!(
        err.to_string().contains(path),
        "error message should point at the reproducer"
    );
    let _ = std::fs::remove_file(path);
    assert!(
        tel.replay_divergences.get() > divergences_before,
        "divergence not counted"
    );
    assert!(
        tel.trace
            .events()
            .iter()
            .any(|e| e.span == "env:replay-divergence"),
        "no env:replay-divergence trace"
    );
    // The episode is unusable but the environment is not: reset() starts
    // over cleanly.
    env.reset().unwrap();
    env.step(0).unwrap();
}

#[test]
fn unrecovered_failure_leaves_no_stale_session() {
    // Every apply panics, forever: recovery replays succeed (empty history)
    // but the retried step always dies, so the failure ultimately surfaces.
    let (factory, _) = FaultPlan::seeded(6)
        .with_panic_prob(1.0)
        .wrap(gen_factory(0));
    let mut env = gen_env(factory);
    env.set_retry_policy(
        RetryPolicy::default()
            .with_max_attempts(2)
            .with_backoff(Duration::from_millis(1), Duration::from_millis(5)),
    );
    env.reset().unwrap();
    let err = env.step(0).unwrap_err();
    assert!(matches!(err, CgError::SessionLost(_)), "got {err:?}");
    // The dead worker's session id must not be retained: the next call is a
    // clean usage error, not a request addressed to a ghost session.
    let err2 = env.step(0).unwrap_err();
    assert!(
        matches!(err2, CgError::Usage(_)),
        "stale session retained: {err2:?}"
    );
    // And reset() re-establishes a working episode (init is fault-free).
    env.reset().unwrap();
}
