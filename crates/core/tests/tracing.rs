//! Integration tests for structured tracing: span-context propagation
//! across the RPC boundary (both transports), and span trees that stay
//! connected through the recovery ladder (reconnect, checkpoint restore,
//! suffix replay).
//!
//! The telemetry registry is a process-wide global shared by every test in
//! this binary, so each test uses a unique benchmark URI and makes its
//! assertions against the episode flight recorder (which routes spans by
//! trace binding), never against the shared ring as a whole.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

use cg_core::chaos::{FaultKind, FaultPlan};
use cg_core::service::{serve_tcp, SessionFactory};
use cg_core::session::{ActionOutcome, CompilationSession};
use cg_core::space::{
    ActionSpaceInfo, Observation, ObservationKind, ObservationSpaceInfo, RewardSpaceInfo,
};
use cg_core::CompilerEnv;
use cg_telemetry::{EpisodeRecord, SpanStatus};

/// A deterministic, serializable session: the reward metric is the number
/// of applied actions, so replay-based recovery always reconverges.
struct RecSession {
    steps: usize,
}

impl CompilationSession for RecSession {
    fn action_spaces(&self) -> Vec<ActionSpaceInfo> {
        vec![ActionSpaceInfo {
            name: "rec".into(),
            actions: vec!["a".into(); 8],
        }]
    }
    fn observation_spaces(&self) -> Vec<ObservationSpaceInfo> {
        vec![ObservationSpaceInfo {
            name: "Count".into(),
            kind: ObservationKind::Scalar,
            deterministic: true,
            platform_dependent: false,
        }]
    }
    fn reward_spaces(&self) -> Vec<RewardSpaceInfo> {
        vec![RewardSpaceInfo {
            name: "Count".into(),
            metric: "Count".into(),
            sign: 1.0,
            baseline: None,
            deterministic: true,
        }]
    }
    fn init(&mut self, _benchmark: &str, _action_space: usize) -> Result<(), String> {
        Ok(())
    }
    fn apply_action(&mut self, _action: usize) -> Result<ActionOutcome, String> {
        self.steps += 1;
        Ok(ActionOutcome {
            end_of_episode: false,
            action_space_changed: false,
            changed: true,
        })
    }
    fn observe(&mut self, _space: &str) -> Result<Observation, String> {
        Ok(Observation::Scalar(self.steps as f64))
    }
    fn fork(&self) -> Box<dyn CompilationSession> {
        Box::new(RecSession { steps: self.steps })
    }
    fn save_state(&self) -> Option<Vec<u8>> {
        Some((self.steps as u64).to_le_bytes().to_vec())
    }
    fn load_state(&mut self, state: &[u8]) -> Result<(), String> {
        let bytes: [u8; 8] = state.try_into().map_err(|_| "bad snapshot".to_string())?;
        self.steps = u64::from_le_bytes(bytes) as usize;
        Ok(())
    }
    fn state_size(&self) -> Option<u64> {
        Some(self.steps as u64)
    }
}

fn rec_factory() -> SessionFactory {
    Arc::new(|| Box::new(RecSession { steps: 0 }))
}

/// Every span routed to the episode must hang off another span in the same
/// episode (or be a trace root), and every trace must have exactly one root:
/// that is what "one connected span tree per step" means.
fn assert_connected(ep: &EpisodeRecord) {
    let ids: HashSet<u64> = ep.spans.iter().map(|s| s.span_id).collect();
    let mut roots: HashMap<u64, u64> = HashMap::new();
    for s in &ep.spans {
        match s.parent_id {
            Some(p) => assert!(
                ids.contains(&p),
                "span {} `{}` has dangling parent {p} in episode {}",
                s.span_id,
                s.span,
                ep.episode_id
            ),
            None => *roots.entry(s.trace_id).or_insert(0) += 1,
        }
    }
    for (trace, n) in roots {
        assert_eq!(n, 1, "trace {trace} has {n} roots; expected exactly one");
    }
}

fn episode_for(benchmark: &str) -> EpisodeRecord {
    let recorder = cg_telemetry::global().trace.recorder();
    let id = recorder
        .summaries()
        .into_iter()
        .filter(|s| s.benchmark == benchmark)
        .map(|s| s.episode_id)
        .next_back()
        .expect("episode recorded");
    recorder.episode(id).expect("episode retained")
}

fn spans_named<'a>(
    ep: &'a EpisodeRecord,
    name: &'a str,
) -> impl Iterator<Item = &'a cg_telemetry::SpanRecord> {
    ep.spans.iter().filter(move |s| s.span == name)
}

#[test]
fn tcp_reconnect_recovery_yields_one_connected_span_tree_per_step() {
    let plan = FaultPlan::seeded(11)
        .schedule(5, FaultKind::Hang)
        .with_hang_duration(Duration::from_secs(2));
    let (factory, _stats) = plan.wrap(rec_factory());
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || serve_tcp(listener, factory));

    let bench = "benchmark://tracing-v0/tcp-reconnect";
    let mut env = CompilerEnv::connect_tcp(
        "tcp-trace-v0",
        &addr,
        bench,
        "Count",
        "Count",
        Duration::from_millis(300),
    )
    .unwrap();
    // Client-driven checkpointing: snapshots are exported over the wire
    // every 2 actions, so recovery restores instead of replaying from zero.
    env.set_checkpoint_interval(2);
    env.reset().unwrap();
    // The 6th apply (global index 5) hangs past the socket timeout: the
    // transport reconnects, the episode restores checkpoint depth 4,
    // replays the 1-action suffix, and retries — all inside one step.
    for _ in 0..6 {
        env.step(0).unwrap();
    }
    assert!(
        env.service_restarts() >= 1,
        "the hang must have forced a reconnect"
    );
    env.close();

    let ep = episode_for(bench);
    assert_connected(&ep);
    // The recovery rungs are present, carry `recovered` status, and sit in
    // the faulted step's trace (not in fresh, disconnected traces).
    let step_traces: HashSet<u64> = spans_named(&ep, "env:step").map(|s| s.trace_id).collect();
    for name in ["tcp:reconnect", "env:checkpoint-restore", "env:replay"] {
        let span = spans_named(&ep, name)
            .next()
            .unwrap_or_else(|| panic!("no `{name}` span in episode {}", ep.episode_id));
        assert_eq!(
            span.status,
            SpanStatus::Recovered,
            "`{name}` not marked recovered"
        );
        assert!(
            step_traces.contains(&span.trace_id),
            "`{name}` is not part of a step's span tree"
        );
    }
    // The faulted-but-recovered step is marked on its root span.
    assert!(
        spans_named(&ep, "env:step").any(|s| s.status == SpanStatus::Recovered),
        "no env:step root carries the recovered status"
    );
    // Context crossed the wire: the remote dispatch span parents under the
    // client's rpc span within the same trace.
    let rpc_ids: HashSet<u64> = ep
        .spans
        .iter()
        .filter(|s| s.span == "rpc:Step")
        .map(|s| s.span_id)
        .collect();
    assert!(
        spans_named(&ep, "service:Step").any(|s| s.parent_id.is_some_and(|p| rpc_ids.contains(&p))),
        "no service:Step span parented under a client rpc:Step span"
    );
}

#[test]
fn checkpoint_restore_recovery_spans_stay_connected_in_process() {
    let plan = FaultPlan::seeded(7).schedule(7, FaultKind::Panic);
    let (factory, _stats) = plan.wrap(rec_factory());
    let bench = "benchmark://tracing-v0/checkpoint-restore";
    let mut env = CompilerEnv::with_factory(
        "cp-trace-v0",
        factory,
        bench,
        "Count",
        "Count",
        Duration::from_secs(5),
    )
    .unwrap();
    env.set_checkpoint_interval(2);
    env.reset().unwrap();
    // The 8th apply (global index 7) panics: the session is destroyed, the
    // worker restarts, checkpoint depth 6 restores, the 1-action suffix
    // replays, and the step retries.
    for _ in 0..8 {
        env.step(1).unwrap();
    }
    env.close();

    let ep = episode_for(bench);
    assert_connected(&ep);
    for name in ["env:checkpoint-restore", "env:replay"] {
        let span = spans_named(&ep, name)
            .next()
            .unwrap_or_else(|| panic!("no `{name}` span in episode {}", ep.episode_id));
        assert_eq!(
            span.status,
            SpanStatus::Recovered,
            "`{name}` not marked recovered"
        );
    }
    assert!(
        spans_named(&ep, "env:step").any(|s| s.status == SpanStatus::Recovered),
        "no env:step root carries the recovered status"
    );
    // Context crossed the in-process channel: service dispatch spans parent
    // under the client's rpc spans.
    let rpc_ids: HashSet<u64> = ep
        .spans
        .iter()
        .filter(|s| s.span.starts_with("rpc:"))
        .map(|s| s.span_id)
        .collect();
    assert!(
        spans_named(&ep, "service:Step").any(|s| s.parent_id.is_some_and(|p| rpc_ids.contains(&p))),
        "no service:Step span parented under a client rpc span"
    );
    // One trace per step: 8 steps → 8 distinct step traces, each also
    // carrying its own `step` summary event.
    let step_traces: HashSet<u64> = spans_named(&ep, "env:step").map(|s| s.trace_id).collect();
    assert_eq!(step_traces.len(), 8, "expected one trace per step");
}
