//! Integration tests for the parallel evaluation pool: batch evaluation
//! matches serial evaluation bit-for-bit, exact and prefix cache reuse
//! kicks in, vectorized reset/step drives one episode per worker, and a
//! worker blowing up mid-batch neither stalls siblings nor poisons the
//! cache.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cg_core::envs::session_factory;
use cg_core::{ActionSeq, CompilerEnv, EnvPool, EvalCache};

const CRC32: &str = "benchmark://cbench-v1/crc32";
const QSORT: &str = "benchmark://cbench-v1/qsort";

fn llvm_env() -> CompilerEnv {
    CompilerEnv::with_factory(
        "llvm-v0",
        session_factory("llvm-v0").unwrap(),
        CRC32,
        "Autophase",
        "IrInstructionCount",
        Duration::from_secs(30),
    )
    .unwrap()
}

fn llvm_factory() -> cg_core::EnvFactory {
    Arc::new(|_widx| {
        CompilerEnv::with_factory(
            "llvm-v0",
            session_factory("llvm-v0").unwrap(),
            CRC32,
            "Autophase",
            "IrInstructionCount",
            Duration::from_secs(30),
        )
    })
}

/// Serial reference evaluation: (episode reward, final metric).
fn serial_eval(env: &mut CompilerEnv, benchmark: &str, actions: &[usize]) -> (f64, f64) {
    env.set_benchmark(benchmark);
    env.reset().unwrap();
    for &a in actions {
        env.step(a).unwrap();
    }
    (env.episode_reward(), env.last_metric())
}

fn named(env: &CompilerEnv, names: &[&str]) -> Vec<usize> {
    names
        .iter()
        .map(|n| env.action_space().index_of(n).expect("known action"))
        .collect()
}

#[test]
fn batch_matches_serial_and_repeats_hit_cache() {
    let mut reference = llvm_env();
    let seq_a = named(
        &reference,
        &["mem2reg", "instcombine", "gvn", "simplifycfg"],
    );
    let seq_b = named(&reference, &["sroa", "sccp", "dce", "adce", "instcombine"]);
    let seq_c = named(&reference, &["mem2reg", "licm", "gvn"]);
    let expect: Vec<(f64, f64)> = [(CRC32, &seq_a), (QSORT, &seq_b), (CRC32, &seq_c)]
        .iter()
        .map(|(b, s)| serial_eval(&mut reference, b, s))
        .collect();

    let pool = EnvPool::new(2, llvm_factory());
    let jobs: Vec<ActionSeq> = [(CRC32, &seq_a), (QSORT, &seq_b), (CRC32, &seq_c)]
        .iter()
        .map(|(b, s)| ActionSeq {
            benchmark: (*b).into(),
            actions: (*s).clone(),
        })
        .collect();

    let first = pool.evaluate_batch(jobs.clone());
    assert_eq!(first.len(), 3);
    for (out, (score, metric)) in first.iter().zip(&expect) {
        assert!(out.error.is_none(), "job failed: {:?}", out.error);
        assert!(!out.cached, "first evaluation cannot be a cache hit");
        assert_eq!(
            out.score.to_bits(),
            score.to_bits(),
            "pool score diverged from serial"
        );
        assert_eq!(
            out.metric.to_bits(),
            metric.to_bits(),
            "pool metric diverged from serial"
        );
    }

    // The same batch again is answered entirely from the exact cache, with
    // identical numbers.
    let second = pool.evaluate_batch(jobs);
    for (out, (score, metric)) in second.iter().zip(&expect) {
        assert!(out.cached, "repeat evaluation must come from the cache");
        assert_eq!(out.score.to_bits(), score.to_bits());
        assert_eq!(out.metric.to_bits(), metric.to_bits());
    }
    assert_eq!(pool.cache().len(), 3);
}

#[test]
fn prefix_snapshots_are_reused_for_novel_suffixes() {
    let tel = cg_telemetry::global();
    let mut reference = llvm_env();
    // Two 8-action sequences sharing a 4-action prefix: with the default
    // snapshot interval of 4, the second only executes its suffix.
    let long_a = named(
        &reference,
        &[
            "mem2reg",
            "instcombine",
            "gvn",
            "simplifycfg",
            "sccp",
            "dce",
            "licm",
            "adce",
        ],
    );
    let mut long_b = long_a.clone();
    let tail = named(&reference, &["sroa", "instcombine", "dse", "dce"]);
    long_b.truncate(4);
    long_b.extend(tail);
    let expect_b = serial_eval(&mut reference, CRC32, &long_b);

    let pool = EnvPool::new(1, llvm_factory());
    let prefix_hits_before = tel.pool.prefix_hits.get();
    let executed_before = tel.pool.actions_executed.get();
    let a = pool.evaluate_batch(vec![ActionSeq {
        benchmark: CRC32.into(),
        actions: long_a.clone(),
    }]);
    assert!(a[0].error.is_none());
    assert!(
        pool.cache().snapshot_count() >= 1,
        "interval snapshots were not deposited"
    );

    let b = pool.evaluate_batch(vec![ActionSeq {
        benchmark: CRC32.into(),
        actions: long_b.clone(),
    }]);
    assert!(b[0].error.is_none());
    assert!(!b[0].cached, "novel suffix is not an exact hit");
    assert_eq!(
        b[0].score.to_bits(),
        expect_b.0.to_bits(),
        "prefix restore changed the score"
    );
    assert_eq!(
        b[0].metric.to_bits(),
        expect_b.1.to_bits(),
        "prefix restore changed the metric"
    );
    assert!(
        tel.pool.prefix_hits.get() > prefix_hits_before,
        "no prefix hit recorded"
    );
    // 8 actions for the first sequence, only the 4-action suffix for the
    // second (global counter: other tests may add, never subtract).
    assert!(
        tel.pool.actions_executed.get() - executed_before >= 12,
        "executed-action accounting went backwards"
    );
}

#[test]
fn vectorized_reset_and_step() {
    let pool = EnvPool::new(2, llvm_factory());
    let obs = pool.reset_all();
    assert_eq!(obs.len(), 2);
    for o in &obs {
        assert!(o.is_ok(), "vectorized reset failed: {o:?}");
    }
    let reference = llvm_env();
    let a = reference.action_space().index_of("mem2reg").unwrap();
    let steps = pool.step_all(&[a, a]);
    assert_eq!(steps.len(), 2);
    let rewards: Vec<f64> = steps
        .into_iter()
        .map(|s| s.expect("vectorized step failed").reward)
        .collect();
    // Both workers run the same benchmark, so the lockstep episodes agree.
    assert_eq!(rewards[0].to_bits(), rewards[1].to_bits());
    assert!(rewards[0] > 0.0, "mem2reg removes instructions on crc32");
}

#[test]
fn worker_panic_mid_batch_spares_siblings_and_cache() {
    let tel = cg_telemetry::global();
    // The first environment build anywhere in the pool panics; every later
    // build succeeds. Whichever worker grabs a job first blows up on it.
    let built = Arc::new(AtomicUsize::new(0));
    let factory: cg_core::EnvFactory = {
        let built = Arc::clone(&built);
        Arc::new(move |_widx| {
            if built.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("chaos: first env build dies");
            }
            CompilerEnv::with_factory(
                "llvm-v0",
                session_factory("llvm-v0").unwrap(),
                CRC32,
                "Autophase",
                "IrInstructionCount",
                Duration::from_secs(30),
            )
        })
    };
    let mut reference = llvm_env();
    let seqs: Vec<Vec<usize>> = [
        vec!["mem2reg", "instcombine"],
        vec!["sroa", "gvn", "dce"],
        vec!["sccp", "adce"],
        vec!["mem2reg", "licm", "simplifycfg"],
    ]
    .iter()
    .map(|names| named(&reference, names))
    .collect();
    let expect: Vec<(f64, f64)> = seqs
        .iter()
        .map(|s| serial_eval(&mut reference, CRC32, s))
        .collect();

    let cache = Arc::new(EvalCache::default());
    let pool = EnvPool::with_cache(2, factory, Arc::clone(&cache));
    let panics_before = tel.pool.job_panics.get();
    let jobs: Vec<ActionSeq> = seqs
        .iter()
        .map(|s| ActionSeq {
            benchmark: CRC32.into(),
            actions: s.clone(),
        })
        .collect();
    let out = pool.evaluate_batch(jobs.clone());

    let failed: Vec<usize> = (0..out.len()).filter(|&i| out[i].error.is_some()).collect();
    assert_eq!(
        failed.len(),
        1,
        "exactly the poisoned build's job fails: {out:?}"
    );
    assert!(
        tel.pool.job_panics.get() > panics_before,
        "panic not recorded"
    );
    for (i, o) in out.iter().enumerate() {
        if o.error.is_some() {
            assert!(o.score.is_infinite() && o.score < 0.0);
            // The failed job must not have been cached.
            assert!(
                cache.lookup(CRC32, &seqs[i]).is_none(),
                "panicked evaluation leaked into the cache"
            );
        } else {
            assert_eq!(
                o.score.to_bits(),
                expect[i].0.to_bits(),
                "sibling job corrupted"
            );
        }
    }

    // The pool recovers: re-running the batch succeeds everywhere, and the
    // previously failed sequence now evaluates correctly.
    let retry = pool.evaluate_batch(jobs);
    for (i, o) in retry.iter().enumerate() {
        assert!(o.error.is_none(), "pool did not recover after panic: {o:?}");
        assert_eq!(o.score.to_bits(), expect[i].0.to_bits());
        assert_eq!(o.metric.to_bits(), expect[i].1.to_bits());
    }
}
