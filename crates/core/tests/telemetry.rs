//! Integration tests for the telemetry layer: metrics recorded end-to-end
//! through the env → service → backend stack.
//!
//! The telemetry registry is a process-wide global shared by every test in
//! this binary (cargo runs them concurrently), so assertions here are
//! monotonic — "the counter grew by at least N" — never exact totals.

use std::sync::Arc;
use std::time::Duration;

use cg_core::service::SessionFactory;
use cg_core::session::{ActionOutcome, CompilationSession};
use cg_core::space::{
    ActionSpaceInfo, Observation, ObservationKind, ObservationSpaceInfo, RewardSpaceInfo,
};
use cg_core::{CgError, CompilerEnv};

#[test]
fn llvm_steps_populate_request_and_pass_telemetry() {
    let tel = cg_telemetry::global();
    let steps_before = tel.requests.get("Step").count();
    let episodes_before = tel.episode.episodes.get();
    let env_steps_before = tel.episode.steps.get();

    let mut env = cg_core::make("llvm-v0").unwrap();
    env.set_benchmark("benchmark://cbench-v1/crc32");
    env.reset().unwrap();
    for name in ["mem2reg", "instcombine", "gvn", "dce"] {
        let idx = env.action_space().index_of(name).unwrap();
        env.step(idx).unwrap();
    }

    // Per-request latency histogram populated (reset + 4 steps ≥ 5 Steps).
    assert!(tel.requests.get("Step").count() >= steps_before + 5);
    // Episode stats recorded.
    assert!(tel.episode.episodes.get() > episodes_before);
    assert!(tel.episode.steps.get() >= env_steps_before + 4);
    assert!(tel.episode.step_wall.count() >= 4);

    // Per-pass profiling accrued for each applied pass.
    for name in ["mem2reg", "instcombine", "gvn", "dce"] {
        let snap = tel.passes.get(name).snapshot();
        assert!(snap.calls >= 1, "no pass-table entry for {name}");
    }
    // mem2reg on crc32 removes allocas: it must be recorded as changing the
    // module and shrinking it.
    let m2r = tel.passes.get("mem2reg").snapshot();
    assert!(m2r.changed >= 1);
    assert!(m2r.inst_delta < 0);

    // Observation latency recorded for the default (Autophase) space.
    assert!(tel.observations.get("Autophase").count() >= 1);

    // The trace ring holds step / observation / pass spans.
    let events = tel.trace.events();
    for prefix in ["step", "observation:Autophase", "pass:mem2reg", "reset"] {
        assert!(
            events
                .iter()
                .any(|e| e.span == prefix || e.span.starts_with(prefix)),
            "no `{prefix}` span in trace"
        );
    }
    // And exports as one JSON object per line.
    let jsonl = tel.trace.export_jsonl();
    let first = jsonl.lines().next().unwrap();
    serde_json::from_str::<cg_telemetry::TraceEvent>(first).unwrap();

    // The snapshot sees the same data.
    let snap = tel.snapshot();
    assert!(snap.requests["Step"].count >= 5);
    assert!(snap.requests["Step"].max_micros >= snap.requests["Step"].p50_micros);
    assert!(snap.passes.contains_key("mem2reg"));
}

/// A session that panics when asked to apply action 1.
struct PanickySession;

impl CompilationSession for PanickySession {
    fn action_spaces(&self) -> Vec<ActionSpaceInfo> {
        vec![ActionSpaceInfo {
            name: "panicky".into(),
            actions: vec!["ok".into(), "boom".into()],
        }]
    }
    fn observation_spaces(&self) -> Vec<ObservationSpaceInfo> {
        vec![ObservationSpaceInfo {
            name: "Zero".into(),
            kind: ObservationKind::Scalar,
            deterministic: true,
            platform_dependent: false,
        }]
    }
    fn reward_spaces(&self) -> Vec<RewardSpaceInfo> {
        vec![RewardSpaceInfo {
            name: "Zero".into(),
            metric: "Zero".into(),
            sign: 1.0,
            baseline: None,
            deterministic: true,
        }]
    }
    fn init(&mut self, _benchmark: &str, _action_space: usize) -> Result<(), String> {
        Ok(())
    }
    fn apply_action(&mut self, action: usize) -> Result<ActionOutcome, String> {
        if action == 1 {
            panic!("simulated compiler crash");
        }
        Ok(ActionOutcome {
            end_of_episode: false,
            action_space_changed: false,
            changed: false,
        })
    }
    fn observe(&mut self, _space: &str) -> Result<Observation, String> {
        Ok(Observation::Scalar(0.0))
    }
    fn fork(&self) -> Box<dyn CompilationSession> {
        Box::new(PanickySession)
    }
}

#[test]
fn panicking_session_is_counted_and_traced() {
    let tel = cg_telemetry::global();
    let panics_before = tel.panics.get();
    let errors_before = tel.request_errors.get("Step").get();

    let factory: SessionFactory = Arc::new(|| Box::new(PanickySession));
    let mut env = CompilerEnv::with_factory(
        "panicky-v0",
        factory,
        "benchmark://none",
        "Zero",
        "Zero",
        Duration::from_secs(5),
    )
    .unwrap();
    env.reset().unwrap();
    env.step(0).unwrap();
    // The session panics on action 1 *every* time, so replay-based recovery
    // retries (restart → replay `[0]` → re-apply 1) until the policy is
    // exhausted, then surfaces the typed session-loss error.
    let recoveries_before = tel.recoveries.get();
    let err = env.step(1).unwrap_err();
    assert!(
        matches!(err, CgError::SessionLost(_)),
        "deterministic panic surfaces: {err:?}"
    );
    assert!(
        tel.recoveries.get() > recoveries_before,
        "recovery replays not counted"
    );

    // The panic was counted and traced, and the error response tallied.
    assert!(
        tel.panics.get() > panics_before,
        "panic counter did not grow"
    );
    assert!(tel.request_errors.get("Step").get() > errors_before);
    assert!(tel.trace.events().iter().any(|e| e.span == "service:panic"));

    // The service survived: a fresh episode works after the panic.
    env.reset().unwrap();
    env.step(0).unwrap();
}

#[test]
fn hung_service_restart_is_counted() {
    struct HangOnInit;
    impl CompilationSession for HangOnInit {
        fn action_spaces(&self) -> Vec<ActionSpaceInfo> {
            vec![ActionSpaceInfo {
                name: "hang".into(),
                actions: vec!["a".into()],
            }]
        }
        fn observation_spaces(&self) -> Vec<ObservationSpaceInfo> {
            vec![ObservationSpaceInfo {
                name: "Zero".into(),
                kind: ObservationKind::Scalar,
                deterministic: true,
                platform_dependent: false,
            }]
        }
        fn reward_spaces(&self) -> Vec<RewardSpaceInfo> {
            vec![RewardSpaceInfo {
                name: "Zero".into(),
                metric: "Zero".into(),
                sign: 1.0,
                baseline: None,
                deterministic: true,
            }]
        }
        fn init(&mut self, _b: &str, _s: usize) -> Result<(), String> {
            std::thread::sleep(Duration::from_secs(3600));
            Ok(())
        }
        fn apply_action(&mut self, _a: usize) -> Result<ActionOutcome, String> {
            unreachable!()
        }
        fn observe(&mut self, _s: &str) -> Result<Observation, String> {
            Ok(Observation::Scalar(0.0))
        }
        fn fork(&self) -> Box<dyn CompilationSession> {
            Box::new(HangOnInit)
        }
    }

    let tel = cg_telemetry::global();
    let restarts_before = tel.restarts.get();
    let timeouts_before = tel.timeouts.get();

    let factory: SessionFactory = Arc::new(|| Box::new(HangOnInit));
    let mut env = CompilerEnv::with_factory(
        "hang-v0",
        factory,
        "benchmark://none",
        "Zero",
        "Zero",
        Duration::from_millis(100),
    )
    .unwrap();
    // Every retry hangs too, so reset ultimately fails — but each failed
    // attempt restarts the service and is recorded.
    let err = env.reset().unwrap_err();
    assert!(matches!(err, CgError::ServiceFailure(_)));
    assert!(
        tel.restarts.get() >= restarts_before + 2,
        "transparent restarts not counted"
    );
    assert!(tel.timeouts.get() > timeouts_before, "timeout not counted");
    assert!(env.service_restarts() >= 2);
    assert!(tel
        .trace
        .events()
        .iter()
        .any(|e| e.span == "service:restart"));
}
