//! Cache-correctness suite: the evaluation cache must be observationally
//! invisible. 200 random `(benchmark, action-sequence)` pairs are evaluated
//! through the pool (exercising exact hits and prefix-snapshot restores)
//! and serially on a fresh environment; scores and metrics must match
//! bit-for-bit. A second sweep checks that restoring a mid-episode
//! snapshot reproduces the byte-identical IR text of an uninterrupted run
//! — the same differential-oracle discipline `cg difftest` applies to
//! pass pipelines, aimed at the cache.

use std::sync::Arc;
use std::time::Duration;

use cg_core::envs::session_factory;
use cg_core::space::Observation;
use cg_core::{ActionSeq, CompilerEnv, EnvPool};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BENCHMARKS: &[&str] = &[
    "benchmark://cbench-v1/crc32",
    "benchmark://cbench-v1/qsort",
    "benchmark://cbench-v1/sha",
    "benchmark://cbench-v1/bitcount",
];

fn llvm_env() -> CompilerEnv {
    CompilerEnv::with_factory(
        "llvm-v0",
        session_factory("llvm-v0").unwrap(),
        BENCHMARKS[0],
        "Autophase",
        "IrInstructionCount",
        Duration::from_secs(30),
    )
    .unwrap()
}

fn llvm_factory() -> cg_core::EnvFactory {
    Arc::new(|_widx| {
        CompilerEnv::with_factory(
            "llvm-v0",
            session_factory("llvm-v0").unwrap(),
            BENCHMARKS[0],
            "Autophase",
            "IrInstructionCount",
            Duration::from_secs(30),
        )
    })
}

fn random_pairs(seed: u64, n: usize, num_actions: usize) -> Vec<ActionSeq> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let benchmark = BENCHMARKS[rng.gen_range(0..BENCHMARKS.len())].to_string();
            let len = rng.gen_range(1..8);
            let actions = (0..len).map(|_| rng.gen_range(0..num_actions)).collect();
            ActionSeq { benchmark, actions }
        })
        .collect()
}

#[test]
fn two_hundred_random_pairs_cached_equals_fresh() {
    let mut reference = llvm_env();
    let num_actions = reference.action_space().len();
    let pairs = random_pairs(0xCAC4E, 200, num_actions);

    let pool = EnvPool::new(2, llvm_factory());
    // First sweep: mostly cold (duplicates and shared prefixes hit early).
    let first = pool.evaluate_batch(pairs.clone());
    // Second sweep: answered from the exact cache.
    let second = pool.evaluate_batch(pairs.clone());

    for (i, pair) in pairs.iter().enumerate() {
        reference.set_benchmark(&pair.benchmark);
        reference.reset().unwrap();
        reference.step_batched(&pair.actions).unwrap();
        let fresh_score = reference.episode_reward();
        let fresh_metric = reference.last_metric();
        for (label, out) in [("first", &first[i]), ("second", &second[i])] {
            assert!(
                out.error.is_none(),
                "{label} sweep pair {i} failed: {:?}",
                out.error
            );
            assert_eq!(
                out.score.to_bits(),
                fresh_score.to_bits(),
                "{label} sweep pair {i} ({:?}): cached score {} != fresh {}",
                pair,
                out.score,
                fresh_score
            );
            assert_eq!(
                out.metric.to_bits(),
                fresh_metric.to_bits(),
                "{label} sweep pair {i} ({:?}): cached metric {} != fresh {}",
                pair,
                out.metric,
                fresh_metric
            );
        }
        assert!(
            second[i].cached,
            "pair {i} missed the exact cache on the second sweep"
        );
    }
}

#[test]
fn snapshot_restore_reproduces_byte_identical_ir() {
    let mut rng = StdRng::seed_from_u64(0x1D);
    let mut straight = llvm_env();
    let mut donor = llvm_env();
    let mut restored = llvm_env();
    let num_actions = straight.action_space().len();
    for case in 0..20 {
        let benchmark = BENCHMARKS[rng.gen_range(0..BENCHMARKS.len())];
        let len = rng.gen_range(5..10);
        let cut = rng.gen_range(2..len - 1);
        let actions: Vec<usize> = (0..len).map(|_| rng.gen_range(0..num_actions)).collect();

        // Uninterrupted run.
        straight.set_benchmark(benchmark);
        straight.reset().unwrap();
        straight.step_batched(&actions).unwrap();
        let want_ir = straight.observe("Ir").unwrap();
        let want_reward = straight.episode_reward();

        // Snapshot at `cut`, restore into a different environment, finish.
        donor.set_benchmark(benchmark);
        donor.reset().unwrap();
        donor.step_batched(&actions[..cut]).unwrap();
        let snap = donor.episode_snapshot().unwrap();
        restored.restore_snapshot(&snap).unwrap();
        restored.step_batched(&actions[cut..]).unwrap();
        let got_ir = restored.observe("Ir").unwrap();

        match (&want_ir, &got_ir) {
            (Observation::Text(want), Observation::Text(got)) => {
                assert_eq!(want, got, "case {case}: restored IR text diverged");
            }
            other => panic!("case {case}: Ir observation is not text: {other:?}"),
        }
        assert_eq!(
            restored.episode_reward().to_bits(),
            want_reward.to_bits(),
            "case {case}: restored episode reward diverged"
        );
    }
}
