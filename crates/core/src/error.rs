//! The crate-wide error type.

use std::fmt;

/// Errors surfaced by environments and the service runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum CgError {
    /// A benchmark URI failed to resolve.
    Dataset(String),
    /// The named environment, space or action does not exist.
    Unknown(String),
    /// The backend session reported an error (compile failure, invalid
    /// action, trap).
    Session(String),
    /// The compiler service crashed, hung past its timeout, or disconnected.
    ServiceFailure(String),
    /// The backend session was destroyed mid-episode (e.g. a compiler panic
    /// took it down) while the service itself survived. Recoverable by
    /// replaying the episode's action history on a fresh session.
    SessionLost(String),
    /// Action-replay session restoration reached a state whose reward metric
    /// diverges from the pre-fault value: the compiler is nondeterministic
    /// (or a fault corrupted state), so the episode cannot be transparently
    /// recovered and must be reset.
    ReplayDivergence {
        /// The benchmark being replayed.
        benchmark: String,
        /// The metric recorded before the fault.
        expected: f64,
        /// The metric the replayed session produced.
        actual: f64,
    },
    /// Validation found a mismatch (reproducibility or semantics bug).
    Validation(String),
    /// The environment is not in a state where the operation is legal
    /// (e.g. `step` before `reset`).
    Usage(String),
}

impl fmt::Display for CgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CgError::Dataset(m) => write!(f, "dataset error: {m}"),
            CgError::Unknown(m) => write!(f, "unknown name: {m}"),
            CgError::Session(m) => write!(f, "session error: {m}"),
            CgError::ServiceFailure(m) => write!(f, "compiler service failure: {m}"),
            CgError::SessionLost(m) => write!(f, "session lost: {m}"),
            CgError::ReplayDivergence { benchmark, expected, actual } => write!(
                f,
                "replay divergence on {benchmark}: expected metric {expected}, \
                 replayed session produced {actual} (nondeterministic compiler \
                 or corrupted state)"
            ),
            CgError::Validation(m) => write!(f, "validation failed: {m}"),
            CgError::Usage(m) => write!(f, "usage error: {m}"),
        }
    }
}

impl std::error::Error for CgError {}

impl From<cg_datasets::DatasetError> for CgError {
    fn from(e: cg_datasets::DatasetError) -> CgError {
        CgError::Dataset(e.to_string())
    }
}
