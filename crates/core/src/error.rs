//! The crate-wide error type.

use std::fmt;

/// Errors surfaced by environments and the service runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum CgError {
    /// A benchmark URI failed to resolve.
    Dataset(String),
    /// The named environment, space or action does not exist.
    Unknown(String),
    /// The backend session reported an error (compile failure, invalid
    /// action, trap).
    Session(String),
    /// The compiler service crashed, hung past its timeout, or disconnected.
    ServiceFailure(String),
    /// The backend session was destroyed mid-episode (e.g. a compiler panic
    /// took it down) while the service itself survived. Recoverable by
    /// replaying the episode's action history on a fresh session.
    SessionLost(String),
    /// Action-replay session restoration reached a state whose reward metric
    /// diverges from the pre-fault value: the compiler is nondeterministic
    /// (or a fault corrupted state), so the episode cannot be transparently
    /// recovered and must be reset.
    ReplayDivergence {
        /// The benchmark being replayed.
        benchmark: String,
        /// The metric recorded before the fault.
        expected: f64,
        /// The metric the replayed session produced.
        actual: f64,
        /// Path of the self-contained JSON reproducer dumped for this
        /// divergence (benchmark, action history, both metrics), when the
        /// dump succeeded.
        repro: Option<String>,
    },
    /// The session exceeded its in-service resource budget (wall-clock
    /// deadline or state-size cap) and was destroyed by the service worker.
    /// The service itself survived; the episode is recoverable by
    /// checkpoint restore / replay like [`CgError::SessionLost`].
    BudgetExceeded(crate::budget::BudgetViolation),
    /// The per-(benchmark, action) circuit breaker is open: this pair has
    /// repeatedly killed compiler services and is quarantined until the
    /// cooldown allows a half-open probe. Fail-fast — the service was not
    /// contacted.
    CircuitOpen {
        /// The quarantined benchmark.
        benchmark: String,
        /// The quarantined action.
        action: usize,
        /// Milliseconds until a probe will be allowed.
        retry_in_ms: u64,
    },
    /// The service's front door refused the request under overload
    /// (admission control, a per-tenant quota, or queue-pressure shedding)
    /// with a typed in-band answer instead of hanging or dying. The session
    /// (if any) is untouched; clients should retry no earlier than
    /// `retry_after_ms` — [`crate::retry::RetryPolicy`] treats it as a
    /// backoff floor.
    Overloaded {
        /// Server-advised minimum delay before retrying, in milliseconds.
        retry_after_ms: u64,
        /// Which rung of the admission ladder refused (for diagnostics).
        reason: String,
    },
    /// Validation found a mismatch (reproducibility or semantics bug).
    Validation(String),
    /// The environment is not in a state where the operation is legal
    /// (e.g. `step` before `reset`).
    Usage(String),
}

impl fmt::Display for CgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CgError::Dataset(m) => write!(f, "dataset error: {m}"),
            CgError::Unknown(m) => write!(f, "unknown name: {m}"),
            CgError::Session(m) => write!(f, "session error: {m}"),
            CgError::ServiceFailure(m) => write!(f, "compiler service failure: {m}"),
            CgError::SessionLost(m) => write!(f, "session lost: {m}"),
            CgError::ReplayDivergence {
                benchmark,
                expected,
                actual,
                repro,
            } => {
                write!(
                    f,
                    "replay divergence on {benchmark}: expected metric {expected}, \
                     replayed session produced {actual} (nondeterministic compiler \
                     or corrupted state)"
                )?;
                match repro {
                    Some(path) => write!(f, "; reproducer written to {path}"),
                    None => Ok(()),
                }
            }
            CgError::BudgetExceeded(v) => write!(f, "resource budget exceeded: {v}"),
            CgError::CircuitOpen {
                benchmark,
                action,
                retry_in_ms,
            } => write!(
                f,
                "circuit open for {benchmark} action {action}: this pair repeatedly \
                 killed compiler services; next probe allowed in ~{retry_in_ms}ms"
            ),
            CgError::Overloaded {
                retry_after_ms,
                reason,
            } => write!(
                f,
                "service overloaded: {reason}; retry no earlier than {retry_after_ms}ms"
            ),
            CgError::Validation(m) => write!(f, "validation failed: {m}"),
            CgError::Usage(m) => write!(f, "usage error: {m}"),
        }
    }
}

impl std::error::Error for CgError {}

impl From<cg_datasets::DatasetError> for CgError {
    fn from(e: cg_datasets::DatasetError) -> CgError {
        CgError::Dataset(e.to_string())
    }
}
