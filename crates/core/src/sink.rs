//! The transition sink: an opt-in, process-global hook that feeds every
//! environment evaluation into an external transition log (the paper's
//! state-transition database, §V).
//!
//! When a sink is installed, [`crate::CompilerEnv`] piggybacks an `Ir`
//! observation onto the reset and step RPCs it already makes (same round
//! trip, no extra service call) and hands the IR text to the sink together
//! with the reward and the action history. Everything that steps through an
//! environment — the `EnvPool`'s workers, searchers, `cg random` — is
//! captured automatically; nothing is captured when no sink is installed
//! (the default), so the hook costs nothing unless asked for.
//!
//! The concrete sink lives in `cg-stdb` (it appends to the durable
//! write-ahead log); this module only defines the interface and the global
//! registration point, keeping the dependency arrow pointing from the store
//! to the core.

use std::sync::Arc;
use std::sync::OnceLock;

use parking_lot::RwLock;

/// A consumer of environment transitions. Implementations must be cheap in
/// the caller's thread (hash + enqueue); heavy work (feature extraction,
/// disk writes) belongs on the sink's own writer thread.
pub trait TransitionSink: Send + Sync {
    /// Records an episode start: `ir_text` is the initial state's IR.
    /// Returns the state hash the sink assigned (the environment threads it
    /// back through [`TransitionSink::record_step`] as `from_state`).
    fn record_reset(&self, benchmark: &str, ir_text: &str) -> u64;

    /// Registers a state observation without an edge or a reset marker —
    /// used when an environment resumes from a restored snapshot
    /// mid-episode and only learns its current state from the next step's
    /// piggybacked IR. Returns the state hash.
    fn record_state(&self, ir_text: &str) -> u64;

    /// Records one successful step: `action_history` is the full
    /// action-name sequence including this step's action(s), `from_state`
    /// the hash returned by the previous record call, `ir_text` the IR
    /// after the action(s), `reward` the step reward. Returns the new
    /// state's hash.
    fn record_step(
        &self,
        benchmark: &str,
        action_history: &[String],
        from_state: u64,
        ir_text: &str,
        reward: f64,
    ) -> u64;
}

fn slot() -> &'static RwLock<Option<Arc<dyn TransitionSink>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<dyn TransitionSink>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Installs the process-global transition sink (replacing any previous
/// one). Every environment with transition logging enabled (the default)
/// starts feeding it on its next reset.
pub fn install_transition_sink(sink: Arc<dyn TransitionSink>) {
    *slot().write() = Some(sink);
}

/// Removes the global transition sink; environments stop logging.
pub fn clear_transition_sink() {
    *slot().write() = None;
}

/// The currently installed sink, if any.
#[must_use]
pub fn transition_sink() -> Option<Arc<dyn TransitionSink>> {
    slot().read().clone()
}
