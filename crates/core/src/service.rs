//! The compiler service runtime (§IV-B): session workers behind an RPC
//! boundary, with timeouts, panic isolation, and restart-on-failure.
//!
//! Two transports implement the same request/response protocol:
//!
//! * **in-process** — a dedicated service thread per environment, reached
//!   over channels (the default; one "service process" per env, as the real
//!   system spawns one compiler service per environment);
//! * **TCP** — length-prefixed JSON frames over a socket, supporting
//!   compilation on a different machine than the frontend.
//!
//! Fault tolerance: every session call runs under `catch_unwind`, so a
//! crashing "compiler" yields a [`Response::Fatal`] instead of killing the
//! service; calls that exceed the client deadline surface as
//! [`CgError::ServiceFailure`]. Recovery behaviour (attempts, backoff,
//! per-request deadlines) is configured by a [`RetryPolicy`]; the
//! environment layer additionally restores lost sessions mid-episode by
//! replaying the action history (see `CompilerEnv`).
//!
//! Server-side containment (the other half of the ladder) lives here too:
//!
//! * **checkpointing** — the worker serializes each session every K applied
//!   actions into a client-owned [`CheckpointStore`], and
//!   [`Request::RestoreSession`] rebuilds a session from a snapshot so
//!   recovery replays only the ≤K-action suffix;
//! * **resource budgets** — `Step` runs under a [`ResourceBudget`]
//!   (wall-clock deadline via a supervised runner thread, state-size cap
//!   checked after every action), answering a typed [`Response::Budget`]
//!   in-band instead of hanging until the client deadline;
//! * **watchdog hooks** — [`ServiceClient::restart`] takes `&self` and
//!   propagates to all clones, and in-flight calls poll the restart
//!   generation so a watchdog restart aborts them quickly (see
//!   `crate::watchdog`).

use std::collections::HashMap;
use std::io::Read as _;
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cg_telemetry::{SpanStatus, TraceContext};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use serde::value::Value;
use serde::{Deserialize, Serialize};

use crate::budget::{BudgetKind, BudgetViolation, ResourceBudget};
use crate::checkpoint::{Checkpoint, CheckpointStore};
use crate::error::CgError;
use crate::retry::PipelineRetry;
use crate::retry::RetryPolicy;
use crate::session::CompilationSession;
use crate::space::{ActionSpaceInfo, Observation, ObservationSpaceInfo, RewardSpaceInfo};
use crate::wire::{self, WireCodec};

/// A request to the compiler service.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Describe the environment's spaces.
    GetSpaces,
    /// Start a session on a benchmark.
    StartSession {
        /// Benchmark URI.
        benchmark: String,
        /// Index into the advertised action spaces.
        action_space: usize,
    },
    /// Apply actions and compute observations in one round trip. Supports
    /// the batched (§III-B5: multiple actions per step) and lazy (chosen
    /// observation spaces per step) extensions.
    Step {
        /// Session to drive.
        session_id: u64,
        /// Actions to apply, in order (may be empty for observation-only).
        actions: Vec<usize>,
        /// Observation spaces to compute after the last action.
        observation_spaces: Vec<String>,
    },
    /// Deep-copy a session.
    Fork {
        /// Session to copy.
        session_id: u64,
    },
    /// Discard a session.
    EndSession {
        /// Session to end.
        session_id: u64,
    },
    /// Rebuild a session from a checkpoint: `init` on the benchmark, then
    /// `CompilationSession::load_state`. The recovery fast path — restoring
    /// replaces replaying the `actions` prefix the snapshot captured.
    RestoreSession {
        /// Benchmark URI.
        benchmark: String,
        /// Index into the advertised action spaces.
        action_space: usize,
        /// The action prefix the snapshot captured (becomes the restored
        /// session's history for subsequent checkpoints).
        actions: Vec<usize>,
        /// Serialized state from `CompilationSession::save_state`.
        state: Vec<u8>,
    },
    /// Serialize a session's current state (`CompilationSession::save_state`)
    /// without disturbing it. The dual of [`Request::RestoreSession`]: export
    /// here, restore elsewhere — how an `EnvPool` seeds a worker's session
    /// from a cached search-tree prefix instead of replaying actions.
    ExportState {
        /// Session to snapshot.
        session_id: u64,
    },
    /// Update the service's resource budget; applies to existing sessions
    /// and everything started afterwards.
    Configure {
        /// The new budget.
        budget: ResourceBudget,
    },
    /// Stop the service.
    Shutdown,
}

impl Request {
    /// The variant name, used to key per-request telemetry.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Ping => "Ping",
            Request::GetSpaces => "GetSpaces",
            Request::StartSession { .. } => "StartSession",
            Request::Step { .. } => "Step",
            Request::Fork { .. } => "Fork",
            Request::EndSession { .. } => "EndSession",
            Request::RestoreSession { .. } => "RestoreSession",
            Request::ExportState { .. } => "ExportState",
            Request::Configure { .. } => "Configure",
            Request::Shutdown => "Shutdown",
        }
    }
}

/// A response from the compiler service.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Response {
    /// Ping reply.
    Pong,
    /// Space description.
    Spaces {
        /// Action spaces.
        action_spaces: Vec<ActionSpaceInfo>,
        /// Observation spaces.
        observation_spaces: Vec<ObservationSpaceInfo>,
        /// Reward spaces.
        reward_spaces: Vec<RewardSpaceInfo>,
    },
    /// Session created.
    SessionStarted {
        /// Handle for subsequent requests.
        session_id: u64,
    },
    /// Step result.
    Stepped {
        /// Episode ended.
        end_of_episode: bool,
        /// Any action changed the state.
        changed: bool,
        /// Requested observations, in request order.
        observations: Vec<Observation>,
    },
    /// Fork created.
    Forked {
        /// The new session's handle.
        session_id: u64,
    },
    /// Session ended / shutdown acknowledged.
    Ok,
    /// Exported session state; `None` when the session has nothing to
    /// snapshot (e.g. uninitialized).
    State {
        /// Serialized state, loadable via [`Request::RestoreSession`].
        state: Option<Vec<u8>>,
    },
    /// The session exceeded its resource budget and was destroyed by the
    /// worker (a "budget kill"); the service itself survives. Surfaced to
    /// clients as [`CgError::BudgetExceeded`] — a fast typed in-band error
    /// replacing the hang → client timeout → restart cascade.
    Budget(BudgetViolation),
    /// The front door refused this request under overload — admission
    /// control, a per-tenant quota, queue-pressure shedding, or a draining
    /// server. A fast typed in-band refusal (surfaced to clients as
    /// [`CgError::Overloaded`]) instead of a hang or a dropped connection;
    /// any session the request addressed is untouched.
    Overloaded {
        /// Server-advised minimum delay before retrying, in milliseconds.
        retry_after_ms: u64,
        /// Which rung of the admission ladder refused.
        reason: String,
    },
    /// The request failed; the session (if any) is still usable.
    Error(String),
    /// The request failed fatally: the session it addressed was destroyed
    /// (e.g. a compiler panic) and its id is no longer valid. The service
    /// itself survives. Surfaced to clients as [`CgError::SessionLost`] so
    /// the environment can restore the episode by action replay.
    Fatal(String),
}

/// Factory producing fresh sessions for this service's environment.
pub type SessionFactory = Arc<dyn Fn() -> Box<dyn CompilationSession> + Send + Sync>;

/// Book-keeping the worker holds alongside each session to drive
/// checkpointing and budget enforcement.
struct SessionMeta {
    benchmark: String,
    action_space: usize,
    /// The action history known to be fully applied to the session.
    actions: Vec<usize>,
    /// State size right after `init`, the baseline for the growth cap.
    initial_size: Option<u64>,
    /// An action errored mid-application: the state may no longer equal
    /// `f(benchmark, action_space, actions)`, so stop checkpointing it.
    dirty: bool,
    /// Depth (action count) of the last checkpoint taken, for detecting
    /// interval-boundary crossings in batched steps.
    checkpointed_at: usize,
}

/// What one `Step` execution did to the session, separated from the
/// transport reply so the inline and budget-supervised paths share it.
enum StepVerdict {
    Done {
        end: bool,
        changed: bool,
        observations: Vec<Observation>,
    },
    SizeExceeded {
        observed: u64,
        limit: u64,
    },
    Error(String),
    Panicked,
}

struct StepRun {
    /// Leading actions known to be fully applied.
    applied: usize,
    /// An apply errored or panicked: state beyond `applied` is suspect.
    poisoned: bool,
    verdict: StepVerdict,
}

/// Applies actions and computes observations under panic isolation and an
/// optional state-size limit. Runs either inline on the worker thread or on
/// an ephemeral runner thread when a wall-clock budget is set.
fn execute_step(
    session: &mut Box<dyn CompilationSession>,
    actions: &[usize],
    observation_spaces: &[String],
    size_limit: Option<u64>,
) -> StepRun {
    let mut applied = 0usize;
    let mut poisoned = false;
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        let mut end = false;
        let mut changed = false;
        for a in actions {
            match session.apply_action(*a) {
                Ok(out) => {
                    applied += 1;
                    end |= out.end_of_episode;
                    changed |= out.changed;
                }
                Err(e) => {
                    poisoned = true;
                    return StepVerdict::Error(e);
                }
            }
            if let (Some(limit), Some(size)) = (size_limit, session.state_size()) {
                if size > limit {
                    return StepVerdict::SizeExceeded {
                        observed: size,
                        limit,
                    };
                }
            }
            if end {
                break;
            }
        }
        let mut observations = Vec::with_capacity(observation_spaces.len());
        for s in observation_spaces {
            let timer = cg_telemetry::Timer::start();
            match session.observe(s) {
                Ok(o) => {
                    let tel = cg_telemetry::global();
                    let dur = timer.observe(&tel.observations.get(s));
                    tel.trace.emit(format!("observation:{s}"), "", dur);
                    observations.push(o);
                }
                Err(e) => return StepVerdict::Error(e),
            }
        }
        StepVerdict::Done {
            end,
            changed,
            observations,
        }
    }));
    match result {
        Ok(verdict) => StepRun {
            applied,
            poisoned,
            verdict,
        },
        Err(_) => StepRun {
            applied,
            poisoned: true,
            verdict: StepVerdict::Panicked,
        },
    }
}

pub(crate) struct ServiceState {
    factory: SessionFactory,
    sessions: HashMap<u64, Box<dyn CompilationSession>>,
    meta: HashMap<u64, SessionMeta>,
    next_id: u64,
    budget: ResourceBudget,
    checkpoints: CheckpointStore,
}

impl ServiceState {
    pub(crate) fn new(
        factory: SessionFactory,
        budget: ResourceBudget,
        checkpoints: CheckpointStore,
    ) -> ServiceState {
        ServiceState {
            factory,
            sessions: HashMap::new(),
            meta: HashMap::new(),
            next_id: 0,
            budget,
            checkpoints,
        }
    }

    fn insert_session(&mut self, session: Box<dyn CompilationSession>, meta: SessionMeta) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.sessions.insert(id, session);
        self.meta.insert(id, meta);
        id
    }

    /// Serializes the session into the checkpoint ring when its history
    /// crossed a K-action boundary since the last snapshot. Best-effort:
    /// a panicking or non-serializing `save_state` never fails the step.
    fn maybe_checkpoint(&mut self, session_id: u64) {
        let interval = self.checkpoints.interval() as usize;
        if interval == 0 {
            return;
        }
        let Some(meta) = self.meta.get_mut(&session_id) else {
            return;
        };
        let depth = meta.actions.len();
        if meta.dirty || depth == 0 || depth / interval <= meta.checkpointed_at / interval {
            return;
        }
        let Some(session) = self.sessions.get(&session_id) else {
            return;
        };
        match std::panic::catch_unwind(AssertUnwindSafe(|| session.save_state())) {
            Ok(Some(state)) => {
                meta.checkpointed_at = depth;
                self.checkpoints.put(Checkpoint {
                    benchmark: meta.benchmark.clone(),
                    action_space: meta.action_space,
                    actions: meta.actions.clone(),
                    state,
                });
            }
            Ok(None) => {}
            Err(_) => meta.dirty = true,
        }
    }

    /// Snapshots every live session into the checkpoint store regardless of
    /// interval boundaries — the drain path's "park everything" sweep.
    /// Dirty sessions (whose state no longer equals their action history)
    /// are skipped; panicking `save_state`s mark the session dirty and move
    /// on. Returns how many sessions were checkpointed.
    pub(crate) fn checkpoint_all(&mut self) -> usize {
        let ids: Vec<u64> = self.sessions.keys().copied().collect();
        let mut saved = 0;
        for id in ids {
            let Some(meta) = self.meta.get_mut(&id) else {
                continue;
            };
            if meta.dirty {
                continue;
            }
            let Some(session) = self.sessions.get(&id) else {
                continue;
            };
            match std::panic::catch_unwind(AssertUnwindSafe(|| session.save_state())) {
                Ok(Some(state)) => {
                    meta.checkpointed_at = meta.actions.len();
                    self.checkpoints.put(Checkpoint {
                        benchmark: meta.benchmark.clone(),
                        action_space: meta.action_space,
                        actions: meta.actions.clone(),
                        state,
                    });
                    saved += 1;
                }
                Ok(None) => {}
                Err(_) => meta.dirty = true,
            }
        }
        saved
    }

    /// How many sessions this state is serving.
    pub(crate) fn session_count(&self) -> usize {
        self.sessions.len()
    }

    fn budget_kill(&mut self, session_id: u64, violation: &BudgetViolation) {
        self.sessions.remove(&session_id);
        self.meta.remove(&session_id);
        let tel = cg_telemetry::global();
        tel.budget_kills.inc();
        tel.trace.emit(
            "service:budget-kill",
            format!("session {session_id}: {violation}"),
            Duration::ZERO,
        );
    }

    /// Dispatches one request, recording latency, in-flight, error, and
    /// panic telemetry. Both transports funnel through here, so service
    /// metrics cover in-process and TCP alike.
    ///
    /// Each request runs under a `service:{kind}` span parented to the
    /// caller's context (installed by the transport from the channel tuple
    /// or the codec's metadata field), so everything `dispatch` emits —
    /// per-pass spans, observation timings, budget kills — lands in the
    /// client's trace tree.
    pub(crate) fn handle(&mut self, req: Request) -> Response {
        let tel = cg_telemetry::global();
        let kind = req.kind();
        tel.in_flight.inc();
        let mut span = tel.trace.span(format!("service:{kind}"));
        let timer = cg_telemetry::Timer::start();
        let resp = self.dispatch(req);
        let dur = timer.elapsed();
        tel.in_flight.dec();
        tel.requests.get(kind).record_duration(dur);
        match &resp {
            Response::Error(e) | Response::Fatal(e) => {
                tel.request_errors.get(kind).inc();
                tel.trace
                    .emit(format!("service:error:{kind}"), e.clone(), dur);
                span.set_status(SpanStatus::Error);
                span.set_detail(e.clone());
            }
            Response::Budget(v) => {
                span.set_status(SpanStatus::BudgetExceeded);
                span.set_detail(v.to_string());
            }
            _ => {}
        }
        resp
    }

    fn dispatch(&mut self, req: Request) -> Response {
        match req {
            Request::Ping => Response::Pong,
            Request::GetSpaces => {
                let probe = (self.factory)();
                Response::Spaces {
                    action_spaces: probe.action_spaces(),
                    observation_spaces: probe.observation_spaces(),
                    reward_spaces: probe.reward_spaces(),
                }
            }
            Request::StartSession {
                benchmark,
                action_space,
            } => {
                let mut session = (self.factory)();
                // Panic isolation also covers episode startup: a benchmark
                // that crashes the compiler's loader must not kill the
                // service.
                let budget = self.budget.clone();
                let init = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    session.init(&benchmark, action_space)?;
                    session.apply_budget(&budget);
                    Ok::<_, String>(session.state_size())
                }));
                match init {
                    Ok(Ok(initial_size)) => {
                        let id = self.insert_session(
                            session,
                            SessionMeta {
                                benchmark,
                                action_space,
                                actions: Vec::new(),
                                initial_size,
                                dirty: false,
                                checkpointed_at: 0,
                            },
                        );
                        Response::SessionStarted { session_id: id }
                    }
                    Ok(Err(e)) => Response::Error(e),
                    Err(_) => {
                        let tel = cg_telemetry::global();
                        tel.panics.inc();
                        tel.trace.emit(
                            "service:panic",
                            format!("init on {benchmark} panicked"),
                            Duration::ZERO,
                        );
                        Response::Fatal(format!("session init on {benchmark} panicked"))
                    }
                }
            }
            Request::RestoreSession {
                benchmark,
                action_space,
                actions,
                state,
            } => {
                let mut session = (self.factory)();
                let budget = self.budget.clone();
                let restore = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    session.init(&benchmark, action_space)?;
                    session.apply_budget(&budget);
                    // The growth baseline is the *episode-initial* size —
                    // measured after init, before the snapshot overwrites it.
                    let initial_size = session.state_size();
                    session.load_state(&state)?;
                    Ok::<_, String>(initial_size)
                }));
                match restore {
                    Ok(Ok(initial_size)) => {
                        let depth = actions.len();
                        let id = self.insert_session(
                            session,
                            SessionMeta {
                                benchmark,
                                action_space,
                                actions,
                                initial_size,
                                dirty: false,
                                checkpointed_at: depth,
                            },
                        );
                        Response::SessionStarted { session_id: id }
                    }
                    Ok(Err(e)) => Response::Error(e),
                    Err(_) => {
                        let tel = cg_telemetry::global();
                        tel.panics.inc();
                        tel.trace.emit(
                            "service:panic",
                            format!("restore on {benchmark} panicked"),
                            Duration::ZERO,
                        );
                        Response::Fatal(format!("session restore on {benchmark} panicked"))
                    }
                }
            }
            Request::ExportState { session_id } => {
                let Some(session) = self.sessions.get(&session_id) else {
                    return Response::Error(format!("no session {session_id}"));
                };
                match std::panic::catch_unwind(AssertUnwindSafe(|| session.save_state())) {
                    Ok(state) => Response::State { state },
                    Err(_) => {
                        // Serialization panicked: the session may be corrupt.
                        self.sessions.remove(&session_id);
                        self.meta.remove(&session_id);
                        let tel = cg_telemetry::global();
                        tel.panics.inc();
                        tel.trace.emit(
                            "service:panic",
                            format!("export_state destroyed session {session_id}"),
                            Duration::ZERO,
                        );
                        Response::Fatal(format!("save_state on session {session_id} panicked"))
                    }
                }
            }
            Request::Configure { budget } => {
                self.budget = budget;
                for session in self.sessions.values_mut() {
                    let b = self.budget.clone();
                    let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        session.apply_budget(&b);
                    }));
                }
                Response::Ok
            }
            Request::Step {
                session_id,
                actions,
                observation_spaces,
            } => {
                // The session leaves the map for the duration of the step so
                // a wall-budget kill can abandon it to the runner thread.
                let Some(mut session) = self.sessions.remove(&session_id) else {
                    return Response::Error(format!("no session {session_id}"));
                };
                let size_limit = self
                    .budget
                    .size_limit(self.meta.get(&session_id).and_then(|m| m.initial_size));
                // Panic isolation: a crashing pass must not take down the
                // service (the paper's "resilient to failures, crashes").
                let (session, run) = if let Some(wall) = self.budget.step_wall() {
                    // Supervised path: run on an ephemeral thread so the
                    // worker can abandon a pass that blows its deadline and
                    // answer in-band instead of wedging the whole service.
                    let (done_tx, done_rx) = bounded(1);
                    let acts = actions.clone();
                    let spaces = observation_spaces.clone();
                    // Thread-local trace context does not cross threads on
                    // its own: hand the dispatch span to the runner so pass
                    // and observation spans stay in the request's tree.
                    let trace_ctx = cg_telemetry::current_context();
                    std::thread::Builder::new()
                        .name("cg-step-runner".into())
                        .stack_size(16 << 20)
                        .spawn(move || {
                            let _trace_guard = trace_ctx.map(cg_telemetry::enter_context);
                            let run = execute_step(&mut session, &acts, &spaces, size_limit);
                            let _ = done_tx.send((session, run));
                        })
                        .expect("spawn step runner thread");
                    match done_rx.recv_timeout(wall) {
                        Ok((session, run)) => (Some(session), run),
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                            // The session stays with the abandoned runner and
                            // is dropped whenever (if ever) it finishes.
                            let limit = wall.as_micros() as u64;
                            let violation = BudgetViolation {
                                kind: BudgetKind::Wall,
                                limit,
                                observed: limit,
                                detail: format!(
                                    "step of {} action(s) still running at the {wall:?} deadline",
                                    actions.len()
                                ),
                            };
                            self.budget_kill(session_id, &violation);
                            return Response::Budget(violation);
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => (
                            None,
                            StepRun {
                                applied: 0,
                                poisoned: true,
                                verdict: StepVerdict::Panicked,
                            },
                        ),
                    }
                } else {
                    let run = execute_step(&mut session, &actions, &observation_spaces, size_limit);
                    (Some(session), run)
                };
                if let Some(meta) = self.meta.get_mut(&session_id) {
                    meta.actions.extend_from_slice(&actions[..run.applied]);
                    meta.dirty |= run.poisoned;
                }
                match run.verdict {
                    StepVerdict::Done {
                        end,
                        changed,
                        observations,
                    } => {
                        if let Some(session) = session {
                            self.sessions.insert(session_id, session);
                        }
                        self.maybe_checkpoint(session_id);
                        Response::Stepped {
                            end_of_episode: end,
                            changed,
                            observations,
                        }
                    }
                    StepVerdict::SizeExceeded { observed, limit } => {
                        let violation = BudgetViolation {
                            kind: BudgetKind::Growth,
                            limit,
                            observed,
                            detail: format!(
                                "state grew to {observed} (limit {limit}) applying actions {actions:?}"
                            ),
                        };
                        self.budget_kill(session_id, &violation);
                        Response::Budget(violation)
                    }
                    StepVerdict::Error(e) => {
                        if let Some(session) = session {
                            self.sessions.insert(session_id, session);
                        }
                        Response::Error(e)
                    }
                    StepVerdict::Panicked => {
                        // The session may be corrupt: drop it.
                        self.meta.remove(&session_id);
                        let tel = cg_telemetry::global();
                        tel.panics.inc();
                        tel.trace.emit(
                            "service:panic",
                            format!("session {session_id} destroyed"),
                            Duration::ZERO,
                        );
                        Response::Fatal(format!("session {session_id} panicked and was destroyed"))
                    }
                }
            }
            Request::Fork { session_id } => match self.sessions.get(&session_id) {
                Some(s) => {
                    let copy = s.fork();
                    let meta = self.meta.get(&session_id).map(|m| SessionMeta {
                        benchmark: m.benchmark.clone(),
                        action_space: m.action_space,
                        actions: m.actions.clone(),
                        initial_size: m.initial_size,
                        dirty: m.dirty,
                        checkpointed_at: m.checkpointed_at,
                    });
                    let id = self.next_id;
                    self.next_id += 1;
                    self.sessions.insert(id, copy);
                    if let Some(meta) = meta {
                        self.meta.insert(id, meta);
                    }
                    Response::Forked { session_id: id }
                }
                None => Response::Error(format!("no session {session_id}")),
            },
            Request::EndSession { session_id } => {
                self.sessions.remove(&session_id);
                self.meta.remove(&session_id);
                Response::Ok
            }
            Request::Shutdown => Response::Ok,
        }
    }
}

/// A handle to a running in-process compiler service.
///
/// Clones share the service: the worker channel, restart generation,
/// checkpoint store, and budget all live behind `Arc`s, so a restart issued
/// through any clone (including the watchdog's) is seen by all of them.
#[derive(Clone)]
pub struct ServiceClient {
    tx: Arc<Mutex<RequestSender>>,
    factory: SessionFactory,
    timeout: Duration,
    policy: RetryPolicy,
    generation: Arc<AtomicU64>,
    checkpoints: CheckpointStore,
    budget: Arc<Mutex<ResourceBudget>>,
}

impl std::fmt::Debug for ServiceClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceClient")
            .field("timeout", &self.timeout)
            .field("policy", &self.policy)
            .finish()
    }
}

/// Granularity at which in-flight calls notice a concurrent restart.
const GENERATION_POLL: Duration = Duration::from_millis(50);

/// The worker's request channel: each request travels with the caller's
/// trace context (so service-side spans parent under the client call) and
/// its reply sender.
type RequestSender = Sender<(Request, Option<TraceContext>, Sender<Response>)>;

fn spawn_worker(
    factory: SessionFactory,
    budget: ResourceBudget,
    checkpoints: CheckpointStore,
) -> RequestSender {
    let (tx, rx): (RequestSender, Receiver<_>) = unbounded();
    let f = Arc::clone(&factory);
    std::thread::Builder::new()
        .name("cg-compiler-service".into())
        .stack_size(16 << 20)
        .spawn(move || {
            let mut state = ServiceState::new(f, budget, checkpoints);
            while let Ok((req, ctx, reply)) = rx.recv() {
                let _trace_guard = ctx.map(cg_telemetry::enter_context);
                let shutdown = matches!(req, Request::Shutdown);
                let resp = state.handle(req);
                let _ = reply.send(resp);
                if shutdown {
                    break;
                }
            }
        })
        .expect("spawn service thread");
    tx
}

impl ServiceClient {
    /// Spawns a fresh in-process compiler service (the "service startup"
    /// cost of Table II) with the default [`RetryPolicy`] and returns a
    /// client for it.
    pub fn spawn(factory: SessionFactory, timeout: Duration) -> ServiceClient {
        Self::spawn_with_policy(factory, timeout, RetryPolicy::default())
    }

    /// Spawns a fresh service with an explicit recovery policy.
    pub fn spawn_with_policy(
        factory: SessionFactory,
        timeout: Duration,
        policy: RetryPolicy,
    ) -> ServiceClient {
        let checkpoints = CheckpointStore::default();
        let budget = ResourceBudget::default();
        let tx = spawn_worker(Arc::clone(&factory), budget.clone(), checkpoints.clone());
        ServiceClient {
            tx: Arc::new(Mutex::new(tx)),
            factory,
            timeout,
            policy,
            generation: Arc::new(AtomicU64::new(0)),
            checkpoints,
            budget: Arc::new(Mutex::new(budget)),
        }
    }

    /// The recovery policy in effect.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Replaces the recovery policy.
    pub fn set_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// The checkpoint store shared with the service worker. Client-owned,
    /// so it survives worker restarts — that is the point.
    pub fn checkpoint_store(&self) -> &CheckpointStore {
        &self.checkpoints
    }

    /// Replaces the checkpoint store (interval, capacity, disk sink). The
    /// *current* worker keeps writing to the old ring until the next
    /// restart; call before starting sessions for full coverage.
    pub fn set_checkpoint_store(&mut self, store: CheckpointStore) {
        self.checkpoints = store;
        self.restart();
    }

    /// The resource budget currently applied to the service.
    pub fn resource_budget(&self) -> ResourceBudget {
        self.budget.lock().clone()
    }

    /// Sets the service's resource budget: configures the live worker and
    /// remembers the budget so every restarted worker inherits it.
    ///
    /// # Errors
    /// Propagates the `Configure` call failure; the budget is remembered
    /// for future workers regardless.
    pub fn set_resource_budget(&self, budget: ResourceBudget) -> Result<(), CgError> {
        *self.budget.lock() = budget.clone();
        self.call(Request::Configure { budget }).map(|_| ())
    }

    fn call_inner(
        &self,
        req: Request,
        deadline: Duration,
        count_timeout: bool,
    ) -> Result<Response, CgError> {
        let generation = self.generation.load(Ordering::SeqCst);
        let (reply_tx, reply_rx) = bounded(1);
        let tx = self.tx.lock().clone();
        tx.send((req, cg_telemetry::current_context(), reply_tx))
            .map_err(|_| CgError::ServiceFailure("service disconnected".into()))?;
        let start = std::time::Instant::now();
        loop {
            let remaining = deadline.saturating_sub(start.elapsed());
            if remaining.is_zero() {
                if count_timeout {
                    cg_telemetry::global().timeouts.inc();
                }
                return Err(CgError::ServiceFailure(format!(
                    "service call exceeded {deadline:?} (hung or crashed)"
                )));
            }
            match reply_rx.recv_timeout(remaining.min(GENERATION_POLL)) {
                Ok(Response::Error(e)) => return Err(CgError::Session(e)),
                Ok(Response::Fatal(e)) => return Err(CgError::SessionLost(e)),
                Ok(Response::Budget(v)) => return Err(CgError::BudgetExceeded(v)),
                Ok(Response::Overloaded {
                    retry_after_ms,
                    reason,
                }) => {
                    return Err(CgError::Overloaded {
                        retry_after_ms,
                        reason,
                    });
                }
                Ok(resp) => return Ok(resp),
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    return Err(CgError::ServiceFailure(
                        "service worker died (reply channel closed)".into(),
                    ));
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    // A restart (e.g. by the watchdog) abandoned the worker
                    // this call was sent to: abort now rather than waiting
                    // out the full deadline for a reply that cannot come.
                    if self.generation.load(Ordering::SeqCst) != generation {
                        return Err(CgError::ServiceFailure(
                            "service restarted while the call was in flight".into(),
                        ));
                    }
                }
            }
        }
    }

    /// Issues one request, waiting up to the policy's per-kind deadline (or
    /// the client timeout when no override is configured).
    ///
    /// # Errors
    /// [`CgError::ServiceFailure`] when the service is dead or the call
    /// exceeded the deadline; [`CgError::SessionLost`] when the session was
    /// destroyed by a panic; [`CgError::Session`] for backend errors.
    pub fn call(&self, req: Request) -> Result<Response, CgError> {
        let kind = req.kind();
        let deadline = self.policy.deadline_for(kind).unwrap_or(self.timeout);
        let mut span = cg_telemetry::global().trace.span(format!("rpc:{kind}"));
        let result = self.call_inner(req, deadline, true);
        match &result {
            Err(CgError::BudgetExceeded(v)) => {
                span.set_status(SpanStatus::BudgetExceeded);
                span.set_detail(v.to_string());
            }
            Err(e) => {
                span.set_status(SpanStatus::Error);
                span.set_detail(e.to_string());
            }
            Ok(_) => {}
        }
        result
    }

    /// Issues a best-effort teardown request (e.g. `EndSession` against a
    /// service that may be hung or dead) bounded by the policy's short
    /// teardown deadline. Expiry is expected and is *not* counted as a
    /// timeout in telemetry.
    ///
    /// # Errors
    /// Same as [`ServiceClient::call`]; callers typically ignore the result.
    pub fn call_teardown(&self, req: Request) -> Result<Response, CgError> {
        let kind = req.kind();
        let deadline = self.policy.teardown_deadline.min(self.timeout);
        let mut span = cg_telemetry::global()
            .trace
            .span(format!("rpc:teardown:{kind}"));
        let result = self.call_inner(req, deadline, false);
        if let Err(e) = &result {
            span.set_status(SpanStatus::Error);
            span.set_detail(e.to_string());
        }
        result
    }

    /// Issues a request under the recovery policy: on service failure the
    /// service is restarted and the call retried after an exponential,
    /// deterministically jittered backoff, until the policy's attempt count
    /// or wall-clock budget is exhausted — the runtime's "retry loop".
    ///
    /// The request is passed by value: the happy path (and the final
    /// attempt) never clone it; a clone is taken only when a later retry is
    /// still possible.
    ///
    /// # Errors
    /// The final error when all attempts were exhausted.
    pub fn call_with_policy(&mut self, req: Request) -> Result<Response, CgError> {
        let policy = self.policy.clone();
        let start = std::time::Instant::now();
        let max = policy.max_attempts.max(1);
        let kind = req.kind();
        let mut req = Some(req);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let budget_spent = policy.budget.is_some_and(|b| start.elapsed() >= b);
            let last = attempt >= max || budget_spent;
            let this = if last {
                req.take().expect("request is held until the final attempt")
            } else {
                req.as_ref()
                    .expect("request is held until the final attempt")
                    .clone()
            };
            match self.call(this) {
                Err(CgError::ServiceFailure(e)) if !last => {
                    policy.record_retry(kind, attempt, &e);
                    self.restart();
                    std::thread::sleep(policy.backoff_for(attempt));
                }
                // A session destroyed at birth (init panic) is retryable on
                // a fresh session without restarting the whole service.
                Err(CgError::SessionLost(e)) if !last => {
                    policy.record_retry(kind, attempt, &e);
                    std::thread::sleep(policy.backoff_for(attempt));
                }
                // A typed overload refusal comes from a healthy but busy
                // front door: retry in place (no restart) and never earlier
                // than the server-advised retry_after floor.
                Err(CgError::Overloaded {
                    retry_after_ms,
                    reason,
                }) if !last => {
                    policy.record_retry(kind, attempt, &reason);
                    std::thread::sleep(
                        policy.backoff_with_floor(attempt, Duration::from_millis(retry_after_ms)),
                    );
                }
                other => return other,
            }
        }
    }

    /// Issues a batch of requests with all of them enqueued on the worker
    /// channel before the first reply is awaited — the in-process analog
    /// of [`TcpTransport::call_pipelined`]. The single service worker
    /// executes serially, so this pipelines submission rather than
    /// execution; it exists so both transports present the same windowed
    /// surface and per-session ordering guarantee (the worker drains its
    /// channel FIFO).
    ///
    /// Typed per-request errors come back as raw [`Response`] values in
    /// their slots; a dead or restarted worker errors the whole batch.
    ///
    /// # Errors
    /// [`CgError::ServiceFailure`] when the worker died, was restarted
    /// mid-batch, or the per-batch deadline expired.
    pub fn call_pipelined(&self, reqs: &[Request]) -> Result<Vec<Response>, CgError> {
        let wire_stats = &cg_telemetry::global().wire;
        // The batch deadline is the widest per-kind deadline in the window
        // times its length — the whole window runs on one serial worker.
        let per_call = reqs
            .iter()
            .map(|r| self.policy.deadline_for(r.kind()).unwrap_or(self.timeout))
            .max()
            .unwrap_or(self.timeout);
        let deadline = per_call.saturating_mul(reqs.len().max(1) as u32);
        let generation = self.generation.load(Ordering::SeqCst);
        let ctx = cg_telemetry::current_context();
        let tx = self.tx.lock().clone();
        let mut pending = Vec::with_capacity(reqs.len());
        for req in reqs {
            let (reply_tx, reply_rx) = bounded(1);
            tx.send((req.clone(), ctx, reply_tx))
                .map_err(|_| CgError::ServiceFailure("service disconnected".into()))?;
            wire_stats.pipelined_calls.inc();
            wire_stats.in_flight.inc();
            pending.push(reply_rx);
        }
        let start = std::time::Instant::now();
        let mut out = Vec::with_capacity(pending.len());
        let mut collect = || -> Result<(), CgError> {
            for rx in &pending {
                loop {
                    let remaining = deadline.saturating_sub(start.elapsed());
                    if remaining.is_zero() {
                        cg_telemetry::global().timeouts.inc();
                        return Err(CgError::ServiceFailure(format!(
                            "pipelined batch exceeded {deadline:?} (hung or crashed)"
                        )));
                    }
                    match rx.recv_timeout(remaining.min(GENERATION_POLL)) {
                        Ok(resp) => {
                            out.push(resp);
                            break;
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                            return Err(CgError::ServiceFailure(
                                "service worker died (reply channel closed)".into(),
                            ));
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                            if self.generation.load(Ordering::SeqCst) != generation {
                                return Err(CgError::ServiceFailure(
                                    "service restarted while the batch was in flight".into(),
                                ));
                            }
                        }
                    }
                }
            }
            Ok(())
        };
        let result = collect();
        for _ in out.len()..pending.len() {
            wire_stats.in_flight.dec();
        }
        for _ in 0..out.len() {
            wire_stats.in_flight.dec();
        }
        result.map(|()| out)
    }

    /// Abandons the (possibly hung) service thread and spawns a fresh one.
    /// Sessions are lost; callers re-establish them via `reset()`. Takes
    /// `&self` and propagates through all clones, so a supervisor (the
    /// watchdog) can restart a service other threads are using; their
    /// in-flight calls notice the generation change and abort with
    /// [`CgError::ServiceFailure`].
    pub fn restart(&self) {
        let fresh = spawn_worker(
            Arc::clone(&self.factory),
            self.budget.lock().clone(),
            self.checkpoints.clone(),
        );
        *self.tx.lock() = fresh;
        let generation = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
        let tel = cg_telemetry::global();
        tel.restarts.inc();
        tel.trace.emit(
            "service:restart",
            format!("generation {generation}"),
            Duration::ZERO,
        );
    }

    /// How many times this client has restarted its service.
    pub fn restarts(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Liveness probe: a `Ping` bounded by `deadline`, not counted as a
    /// timeout in telemetry. Used by the watchdog heartbeat. Note that a
    /// worker busy with a long legitimate request also misses heartbeats —
    /// pick a probe deadline comfortably above the expected step time, or
    /// set a step wall budget so no request can hold the worker that long.
    pub fn probe(&self, deadline: Duration) -> bool {
        matches!(
            self.call_inner(Request::Ping, deadline, false),
            Ok(Response::Pong)
        )
    }
}

// ---------------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------------

/// Writes one `len ‖ payload` frame with a single vectored syscall in the
/// common case. Coalescing the 4-byte length prefix and the payload into one
/// `writev` halves the syscalls per reply and avoids the prefix landing in
/// its own TCP segment under `TCP_NODELAY`. Short writes (the kernel took
/// only part of the iovec) are continued manually because
/// `write_all_vectored` is not yet stable.
pub(crate) fn write_frame<W: std::io::Write>(stream: &mut W, bytes: &[u8]) -> std::io::Result<()> {
    let prefix = (bytes.len() as u32).to_le_bytes();
    let mut written = 0usize;
    let total = prefix.len() + bytes.len();
    while written < total {
        let bufs: &[std::io::IoSlice<'_>] = if written < prefix.len() {
            &[
                std::io::IoSlice::new(&prefix[written..]),
                std::io::IoSlice::new(bytes),
            ]
        } else {
            &[std::io::IoSlice::new(&bytes[written - prefix.len()..])]
        };
        match stream.write_vectored(bufs) {
            Ok(0) => return Err(std::io::Error::new(std::io::ErrorKind::WriteZero, "frame")),
            Ok(n) => written += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Key under which the caller's trace context rides inside a request
/// frame's payload object. It lives *inside* the single variant object
/// (`{"step": {..., "__trace": [trace_id, span_id]}}`) rather than at the
/// top level, because the enum codec requires exactly one top-level key.
/// Both directions are version-tolerant: an old server ignores the unknown
/// key, and an old client simply never sends it.
const TRACE_METADATA_KEY: &str = "__trace";

/// Key under which the client's tenant identity rides inside a request
/// frame's payload object, next to [`TRACE_METADATA_KEY`]. The broker uses
/// it to attribute work to per-tenant queues and quotas; the legacy
/// per-connection server strips and ignores it. Version-tolerant in both
/// directions: an old server discards the unknown key, an old client never
/// sends it (and is billed to the anonymous tenant).
pub(crate) const TENANT_METADATA_KEY: &str = "__tenant";

/// Encodes a request frame, stamping the current trace context (and, when
/// set, the client's tenant identity) into the variant payload. Unit
/// variants (`ping`, …) serialize as bare strings and carry no metadata —
/// they are cheap probes and nothing downstream of them records spans worth
/// parenting or work worth billing.
fn encode_request(req: &Request, tenant: Option<&str>) -> Result<Vec<u8>, CgError> {
    let mut value = req.to_value();
    if let Value::Object(entries) = &mut value {
        if let Some((_, Value::Object(payload))) = entries.first_mut() {
            if let Some(ctx) = cg_telemetry::current_context() {
                payload.push((
                    TRACE_METADATA_KEY.to_string(),
                    Value::Array(vec![Value::UInt(ctx.trace_id), Value::UInt(ctx.span_id)]),
                ));
            }
            if let Some(tenant) = tenant {
                payload.push((
                    TENANT_METADATA_KEY.to_string(),
                    Value::Str(tenant.to_string()),
                ));
            }
        }
    }
    serde_json::to_vec(&value).map_err(|e| CgError::ServiceFailure(e.to_string()))
}

/// Strips the tenant-identity metadata from a decoded request frame, if
/// present, returning it so the front door can bill the request to the
/// right tenant. The value is left clean for `Request` deserialization.
pub(crate) fn extract_tenant(value: &mut Value) -> Option<String> {
    let Value::Object(entries) = value else {
        return None;
    };
    let (_, Value::Object(payload)) = entries.first_mut()? else {
        return None;
    };
    let at = payload.iter().position(|(k, _)| k == TENANT_METADATA_KEY)?;
    let (_, meta) = payload.remove(at);
    match meta {
        Value::Str(tenant) => Some(tenant),
        _ => None,
    }
}

/// Strips the trace-context metadata from a decoded request frame, if
/// present. Returns the caller's context so the server can install it
/// around dispatch; the value is left clean for `Request` deserialization.
pub(crate) fn extract_trace_context(value: &mut Value) -> Option<TraceContext> {
    let Value::Object(entries) = value else {
        return None;
    };
    let (_, Value::Object(payload)) = entries.first_mut()? else {
        return None;
    };
    let at = payload.iter().position(|(k, _)| k == TRACE_METADATA_KEY)?;
    let (_, meta) = payload.remove(at);
    let Value::Array(ids) = meta else { return None };
    let as_id = |v: &Value| match v {
        Value::UInt(n) => Some(*n),
        Value::Int(n) => u64::try_from(*n).ok(),
        _ => None,
    };
    match ids.as_slice() {
        [t, s] => Some(TraceContext {
            trace_id: as_id(t)?,
            span_id: as_id(s)?,
        }),
        _ => None,
    }
}

/// Hard cap on a single frame (either codec): a malformed or hostile length
/// prefix must not allocate unbounded memory.
pub(crate) const MAX_FRAME_LEN: usize = 64 << 20;

pub(crate) fn read_frame(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len)?;
    let n = u32::from_le_bytes(len) as usize;
    if n > MAX_FRAME_LEN {
        return Err(std::io::Error::other("frame too large"));
    }
    let mut buf = vec![0u8; n];
    stream.read_exact(&mut buf)?;
    Ok(buf)
}

/// Capacity a [`FrameReader`] keeps across frames. Buffers grown past this
/// by one oversized frame (a multi-MB printed-IR observation, say) are
/// shrunk back on the next small read, so a single outlier doesn't pin
/// megabytes for the connection's lifetime.
const FRAME_BUF_RETAIN: usize = 1 << 20;

/// Socket reads pull whole bursts rather than exact frames, so a pipelined
/// window of requests lands in one or two syscalls instead of two per
/// frame.
const FRAME_READ_CHUNK: usize = 64 << 10;

/// Reads `len ‖ payload` frames through an internal buffer reused across
/// frames — the per-connection receive path allocates once, not per frame.
/// Each socket read drains whatever is available (up to the buffer), so
/// back-to-back pipelined frames are served from memory without touching
/// the socket again; [`FrameReader::has_buffered_frame`] exposes that to
/// the server's reply batching.
#[derive(Debug, Default)]
pub(crate) struct FrameReader {
    buf: Vec<u8>,
    /// Consumed offset into `buf`.
    start: usize,
    /// Filled offset into `buf`.
    end: usize,
}

impl FrameReader {
    pub(crate) fn new() -> FrameReader {
        FrameReader::default()
    }

    fn pending(&self) -> usize {
        self.end - self.start
    }

    /// True when a complete frame is already buffered — the next
    /// [`FrameReader::read`] will not touch the socket. The server uses
    /// this to batch replies to a pipelined burst into a single write.
    pub(crate) fn has_buffered_frame(&self) -> bool {
        if self.pending() < 4 {
            return false;
        }
        let n =
            u32::from_le_bytes(self.buf[self.start..self.start + 4].try_into().unwrap()) as usize;
        n <= MAX_FRAME_LEN && self.pending() - 4 >= n
    }

    /// Buffers at least `need` unconsumed bytes, reading in large chunks.
    fn fill<R: std::io::Read>(&mut self, stream: &mut R, need: usize) -> std::io::Result<()> {
        if self.pending() >= need {
            return Ok(());
        }
        // Compact before growing so the buffer stays bounded by the frame
        // size plus one read chunk.
        if self.start > 0 {
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
        }
        let want = need.max(FRAME_READ_CHUNK);
        if self.buf.len() < want {
            self.buf.resize(want, 0);
        }
        while self.pending() < need {
            if self.end == self.buf.len() {
                self.buf.resize(self.buf.len() + FRAME_READ_CHUNK, 0);
            }
            let n = stream.read(&mut self.buf[self.end..])?;
            if n == 0 {
                return Err(std::io::ErrorKind::UnexpectedEof.into());
            }
            self.end += n;
        }
        Ok(())
    }

    /// Reads one frame, returning a view into the reused buffer. The view
    /// is valid until the next `read` call.
    pub(crate) fn read<R: std::io::Read>(&mut self, stream: &mut R) -> std::io::Result<&[u8]> {
        let pending = self.pending();
        if self.buf.len() > FRAME_BUF_RETAIN && pending <= FRAME_READ_CHUNK {
            let mut fresh = vec![0u8; FRAME_READ_CHUNK];
            fresh[..pending].copy_from_slice(&self.buf[self.start..self.end]);
            self.buf = fresh;
            self.start = 0;
            self.end = pending;
        }
        self.fill(stream, 4)?;
        let n =
            u32::from_le_bytes(self.buf[self.start..self.start + 4].try_into().unwrap()) as usize;
        if n > MAX_FRAME_LEN {
            return Err(std::io::Error::other("frame too large"));
        }
        self.fill(stream, 4 + n)?;
        self.start += 4;
        let at = self.start;
        self.start += n;
        Ok(&self.buf[at..at + n])
    }
}

/// Accounts one transmitted frame's payload bytes to the per-codec wire
/// counters.
pub(crate) fn account_tx(codec: WireCodec, n: usize) {
    let wire = &cg_telemetry::global().wire;
    wire.frames.inc();
    match codec {
        WireCodec::Json => wire.tx_bytes_json.add(n as u64),
        WireCodec::Binary => wire.tx_bytes_binary.add(n as u64),
    }
}

/// Accounts one received frame's payload bytes to the per-codec wire
/// counters.
pub(crate) fn account_rx(codec: WireCodec, n: usize) {
    let wire = &cg_telemetry::global().wire;
    wire.frames.inc();
    match codec {
        WireCodec::Json => wire.rx_bytes_json.add(n as u64),
        WireCodec::Binary => wire.rx_bytes_binary.add(n as u64),
    }
}

/// Default cap on concurrent legacy-mode TCP connections. Generous for the
/// thread-per-connection model it bounds; the broker front door
/// ([`crate::broker`]) is the right tool past this scale.
pub const DEFAULT_MAX_TCP_CONNECTIONS: usize = 256;

/// Serves the compiler service over TCP. Each connection gets its own
/// session table and worker ("support for compiling on a different system
/// architecture than the host by running the compiler service on a remote
/// machine"). Blocks forever; run it on a dedicated thread.
///
/// Concurrent connections are capped at [`DEFAULT_MAX_TCP_CONNECTIONS`]
/// (see [`serve_tcp_with_limit`]): excess connects are answered with one
/// typed in-band [`Response::Overloaded`] frame and closed, instead of
/// spawning threads without bound until the process wedges.
pub fn serve_tcp(listener: TcpListener, factory: SessionFactory) {
    serve_tcp_with_limit(listener, factory, DEFAULT_MAX_TCP_CONNECTIONS);
}

/// [`serve_tcp`] with an explicit concurrent-connection cap (min 1). A
/// connection at the cap is refused *in band*: the refused client's first
/// read yields `Overloaded { retry_after_ms }` — a typed, retryable answer —
/// rather than an unexplained reset or silent accept-queue growth.
pub fn serve_tcp_with_limit(
    listener: TcpListener,
    factory: SessionFactory,
    max_connections: usize,
) {
    let max_connections = max_connections.max(1);
    let active = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    for stream in listener.incoming() {
        let Ok(mut stream) = stream else { continue };
        let _ = stream.set_nodelay(true);
        // `fetch_add` before the check keeps the cap exact under concurrent
        // accepts; the slot is released on refusal or when the handler exits.
        if active.fetch_add(1, Ordering::SeqCst) >= max_connections {
            active.fetch_sub(1, Ordering::SeqCst);
            let tel = cg_telemetry::global();
            tel.broker.refused.inc();
            tel.trace.emit_status(
                "broker:shed",
                format!("legacy accept loop at connection cap {max_connections}"),
                Duration::ZERO,
                SpanStatus::Error,
            );
            let resp = Response::Overloaded {
                retry_after_ms: 100,
                reason: format!("connection cap {max_connections} reached"),
            };
            let _ = write_frame(&mut stream, &wire::encode_response_json(&resp));
            continue;
        }
        let f = Arc::clone(&factory);
        let slots = Arc::clone(&active);
        std::thread::spawn(move || {
            // Panic containment per connection: `handle` already isolates
            // session code, but a poisoned frame or a bug in the dispatch
            // layer itself must at worst kill *this* connection, never the
            // accept loop or sibling connections.
            let serve = std::panic::catch_unwind(AssertUnwindSafe(|| {
                let mut state =
                    ServiceState::new(f, ResourceBudget::default(), CheckpointStore::default());
                let mut reader = FrameReader::new();
                let mut scratch = Vec::new();
                // Binary replies accumulate here and flush once the burst
                // of already-buffered request frames is drained — one write
                // per pipelined window instead of one per request.
                let mut out: Vec<u8> = Vec::new();
                // Per-frame codec sniffing: JSON frames always start with
                // `{` or `"`, a CGB1 frame with its (non-UTF-8) magic — so
                // one connection can negotiate up to binary while an old
                // JSON-only client stays on its path without any handshake.
                while let Ok(frame) = reader.read(&mut stream) {
                    if wire::is_binary_frame(frame) {
                        account_rx(WireCodec::Binary, frame.len());
                        let (corr, req, ctx) = match wire::decode_frame(frame) {
                            Ok(wire::Frame::Hello { .. }) => {
                                cg_telemetry::global().wire.negotiations.inc();
                                wire::encode_hello_ack(&mut scratch);
                                account_tx(WireCodec::Binary, scratch.len());
                                out.extend_from_slice(&(scratch.len() as u32).to_le_bytes());
                                out.extend_from_slice(&scratch);
                                let flushed = stream.write_all(&out);
                                out.clear();
                                if flushed.is_err() {
                                    break;
                                }
                                continue;
                            }
                            Ok(wire::Frame::Request { corr, body }) => {
                                match wire::decode_request_body(corr, body) {
                                    Ok(rf) => {
                                        // Legacy mode has no tenant
                                        // accounting; the identity is
                                        // decoded and dropped.
                                        (rf.corr, rf.req, rf.ctx)
                                    }
                                    Err(e) => {
                                        cg_telemetry::global().wire.decode_errors.inc();
                                        let resp =
                                            Response::Error(format!("bad request frame: {e}"));
                                        wire::encode_response_frame(&mut scratch, corr, &resp);
                                        account_tx(WireCodec::Binary, scratch.len());
                                        out.extend_from_slice(
                                            &(scratch.len() as u32).to_le_bytes(),
                                        );
                                        out.extend_from_slice(&scratch);
                                        let flushed = stream.write_all(&out);
                                        out.clear();
                                        if flushed.is_err() {
                                            break;
                                        }
                                        continue;
                                    }
                                }
                            }
                            Ok(_) | Err(_) => {
                                cg_telemetry::global().wire.decode_errors.inc();
                                let resp = Response::Error("unexpected frame kind".to_string());
                                wire::encode_response_frame(&mut scratch, 0, &resp);
                                account_tx(WireCodec::Binary, scratch.len());
                                out.extend_from_slice(&(scratch.len() as u32).to_le_bytes());
                                out.extend_from_slice(&scratch);
                                let flushed = stream.write_all(&out);
                                out.clear();
                                if flushed.is_err() {
                                    break;
                                }
                                continue;
                            }
                        };
                        let shutdown = matches!(req, Request::Shutdown);
                        let resp = {
                            let _trace_guard = ctx.map(cg_telemetry::enter_context);
                            state.handle(req)
                        };
                        wire::encode_response_frame(&mut scratch, corr, &resp);
                        account_tx(WireCodec::Binary, scratch.len());
                        out.extend_from_slice(&(scratch.len() as u32).to_le_bytes());
                        out.extend_from_slice(&scratch);
                        // Hold the reply while more of the burst is already
                        // buffered: the whole window answers in one write.
                        if !shutdown && reader.has_buffered_frame() {
                            continue;
                        }
                        let flushed = stream.write_all(&out);
                        out.clear();
                        if flushed.is_err() || shutdown {
                            break;
                        }
                        continue;
                    }
                    account_rx(WireCodec::Json, frame.len());
                    // A mixed-codec client could interleave a JSON frame
                    // into a binary burst; flush held binary replies first
                    // so responses never overtake each other.
                    if !out.is_empty() {
                        if stream.write_all(&out).is_err() {
                            break;
                        }
                        out.clear();
                    }
                    // Decode in two stages: parse the frame into a tree,
                    // strip the (optional, version-tolerant) trace metadata,
                    // then deserialize the request from the cleaned tree.
                    let parsed = std::str::from_utf8(frame)
                        .map_err(|e| e.to_string())
                        .and_then(|s| serde_json::parse_value(s).map_err(|e| e.to_string()));
                    let (req, ctx) = match parsed {
                        Ok(mut value) => {
                            let ctx = extract_trace_context(&mut value);
                            // Legacy mode has no tenant accounting; strip
                            // the metadata so deserialization stays clean.
                            let _ = extract_tenant(&mut value);
                            match Request::from_value(&value) {
                                Ok(r) => (r, ctx),
                                Err(e) => {
                                    let resp = Response::Error(format!("bad request frame: {e}"));
                                    let _ = write_frame(
                                        &mut stream,
                                        &wire::encode_response_json(&resp),
                                    );
                                    continue;
                                }
                            }
                        }
                        Err(e) => {
                            let resp = Response::Error(format!("bad request frame: {e}"));
                            let _ = write_frame(&mut stream, &wire::encode_response_json(&resp));
                            continue;
                        }
                    };
                    let shutdown = matches!(req, Request::Shutdown);
                    let resp = {
                        let _trace_guard = ctx.map(cg_telemetry::enter_context);
                        state.handle(req)
                    };
                    let bytes = wire::encode_response_json(&resp);
                    account_tx(WireCodec::Json, bytes.len());
                    if write_frame(&mut stream, &bytes).is_err() {
                        break;
                    }
                    if shutdown {
                        break;
                    }
                }
            }));
            slots.fetch_sub(1, Ordering::SeqCst);
            if serve.is_err() {
                let tel = cg_telemetry::global();
                tel.panics.inc();
                tel.trace.emit(
                    "service:panic",
                    "tcp connection handler panicked; connection dropped",
                    Duration::ZERO,
                );
            }
        });
    }
}

/// A TCP client for a remote compiler service, with reconnect-on-I/O-error
/// governed by its [`RetryPolicy`].
#[derive(Debug)]
pub struct TcpClient {
    stream: TcpStream,
    addr: String,
    timeout: Duration,
    policy: RetryPolicy,
    /// Tenant identity stamped into every request frame (the broker's
    /// queueing/quota key). `None` bills to the anonymous tenant.
    tenant: Option<String>,
    /// Codec preference: [`WireCodec::Binary`] (the default) probes the
    /// peer with a `Hello` before the first call and falls back to JSON
    /// when the peer doesn't answer `HelloAck`; [`WireCodec::Json`] skips
    /// negotiation entirely.
    codec_pref: WireCodec,
    /// The codec negotiated on the *current* stream; `None` until the
    /// first call, and reset by every reconnect (the new peer may differ).
    negotiated: Option<WireCodec>,
    /// Next correlation id. Monotonic per connection; responses are
    /// demuxed by echoing it, which is what lets `call_pipelined` keep
    /// many requests in flight on this one socket.
    corr: u64,
    /// Reusable encode scratch — binary frames are built here instead of a
    /// fresh `Vec` per request.
    scratch: Vec<u8>,
    /// Reusable receive buffer (see [`FrameReader`]).
    reader: FrameReader,
}

impl TcpClient {
    /// Connects to a remote service with the default [`RetryPolicy`].
    ///
    /// # Errors
    /// Propagates connection failures as [`CgError::ServiceFailure`].
    pub fn connect(addr: &str, timeout: Duration) -> Result<TcpClient, CgError> {
        Self::connect_with_policy(addr, timeout, RetryPolicy::default())
    }

    /// Connects with an explicit recovery policy.
    ///
    /// # Errors
    /// Propagates connection failures as [`CgError::ServiceFailure`].
    pub fn connect_with_policy(
        addr: &str,
        timeout: Duration,
        policy: RetryPolicy,
    ) -> Result<TcpClient, CgError> {
        let stream = Self::open(addr, timeout)?;
        Ok(TcpClient {
            stream,
            addr: addr.to_string(),
            timeout,
            policy,
            tenant: None,
            codec_pref: WireCodec::Binary,
            negotiated: None,
            corr: 0,
            scratch: Vec::new(),
            reader: FrameReader::new(),
        })
    }

    /// Sets the codec preference. [`WireCodec::Json`] forces the legacy
    /// frames; [`WireCodec::Binary`] (the default) negotiates per
    /// connection and falls back transparently. Resets any negotiation
    /// already performed on the current connection.
    pub fn set_codec(&mut self, codec: WireCodec) {
        self.codec_pref = codec;
        self.negotiated = None;
    }

    /// The codec in use on the current connection, if negotiation has
    /// happened yet.
    pub fn codec(&self) -> Option<WireCodec> {
        self.negotiated
    }

    /// Sets the tenant identity stamped into every request frame, under
    /// which a broker-mode server queues, schedules, and quota-bills this
    /// client's work.
    pub fn set_tenant(&mut self, tenant: &str) {
        self.tenant = Some(tenant.to_string());
    }

    fn open(addr: &str, timeout: Duration) -> Result<TcpStream, CgError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| CgError::ServiceFailure(format!("connect {addr}: {e}")))?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| CgError::ServiceFailure(e.to_string()))?;
        // Nagle + delayed ACK would hold every small pipelined frame for
        // ~40ms; request/response traffic wants immediate flushes.
        let _ = stream.set_nodelay(true);
        Ok(stream)
    }

    /// The recovery policy in effect.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Ensures the codec for the current stream is settled, probing the
    /// peer with a `Hello` frame on the first binary-preferred call.
    ///
    /// The fallback signal is the frame magic: its first two bytes are
    /// invalid UTF-8, so a JSON-only server answers the probe with its
    /// usual typed `Error("bad request frame: …")` — consumed here as
    /// "peer speaks JSON only". A typed `Overloaded` answer (the
    /// connection-cap refusal) is surfaced as its error and leaves the
    /// codec unsettled so the retried call re-probes.
    fn ensure_negotiated(&mut self) -> Result<WireCodec, CgError> {
        if let Some(codec) = self.negotiated {
            return Ok(codec);
        }
        if self.codec_pref == WireCodec::Json {
            self.negotiated = Some(WireCodec::Json);
            return Ok(WireCodec::Json);
        }
        wire::encode_hello(&mut self.scratch);
        account_tx(WireCodec::Binary, self.scratch.len());
        write_frame(&mut self.stream, &self.scratch)
            .map_err(|e| CgError::ServiceFailure(format!("hello send: {e}")))?;
        let frame = self
            .reader
            .read(&mut self.stream)
            .map_err(|e| CgError::ServiceFailure(format!("hello recv: {e}")))?;
        if let Ok(wire::Frame::HelloAck { .. }) = wire::decode_frame(frame) {
            account_rx(WireCodec::Binary, frame.len());
            self.negotiated = Some(WireCodec::Binary);
            return Ok(WireCodec::Binary);
        }
        account_rx(WireCodec::Json, frame.len());
        let resp: Response = serde_json::from_slice(frame)
            .map_err(|e| CgError::ServiceFailure(format!("unintelligible hello reply: {e}")))?;
        if let Response::Overloaded {
            retry_after_ms,
            reason,
        } = resp
        {
            // A healthy-but-full peer refused the connection before seeing
            // the probe; surface the overload and renegotiate on retry.
            return Err(CgError::Overloaded {
                retry_after_ms,
                reason,
            });
        }
        // Any other JSON answer (typically the bad-frame error) marks an
        // old peer: fall back for the connection's lifetime.
        cg_telemetry::global().wire.fallbacks.inc();
        self.negotiated = Some(WireCodec::Json);
        Ok(WireCodec::Json)
    }

    /// Maps typed error responses to their error surface.
    fn settle_response(resp: Response) -> Result<Response, CgError> {
        match resp {
            Response::Error(e) => Err(CgError::Session(e)),
            Response::Fatal(e) => Err(CgError::SessionLost(e)),
            Response::Budget(v) => Err(CgError::BudgetExceeded(v)),
            Response::Overloaded {
                retry_after_ms,
                reason,
            } => Err(CgError::Overloaded {
                retry_after_ms,
                reason,
            }),
            ok => Ok(ok),
        }
    }

    /// Sends `req` on the negotiated codec, returning the stamped
    /// correlation id (binary) or 0 (JSON, which has in-order replies).
    fn send_request(&mut self, codec: WireCodec, req: &Request) -> Result<u64, CgError> {
        match codec {
            WireCodec::Json => {
                let bytes = encode_request(req, self.tenant.as_deref())?;
                account_tx(WireCodec::Json, bytes.len());
                write_frame(&mut self.stream, &bytes)
                    .map_err(|e| CgError::ServiceFailure(format!("send: {e}")))?;
                Ok(0)
            }
            WireCodec::Binary => {
                self.corr += 1;
                let corr = self.corr;
                wire::encode_request_frame(
                    &mut self.scratch,
                    corr,
                    req,
                    cg_telemetry::current_context(),
                    self.tenant.as_deref(),
                );
                account_tx(WireCodec::Binary, self.scratch.len());
                write_frame(&mut self.stream, &self.scratch)
                    .map_err(|e| CgError::ServiceFailure(format!("send: {e}")))?;
                Ok(corr)
            }
        }
    }

    /// Receives one response frame on the negotiated codec, returning its
    /// correlation id (0 for JSON frames).
    fn recv_response(&mut self, codec: WireCodec) -> Result<(u64, Response), CgError> {
        let frame = self.reader.read(&mut self.stream).map_err(|e| {
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) {
                cg_telemetry::global().timeouts.inc();
            }
            CgError::ServiceFailure(format!("recv: {e}"))
        })?;
        match codec {
            WireCodec::Json => {
                account_rx(WireCodec::Json, frame.len());
                let resp: Response = serde_json::from_slice(frame)
                    .map_err(|e| CgError::ServiceFailure(e.to_string()))?;
                Ok((0, resp))
            }
            WireCodec::Binary => {
                account_rx(WireCodec::Binary, frame.len());
                match wire::decode_frame(frame) {
                    Ok(wire::Frame::Response { corr, body }) => {
                        match wire::decode_response_body(body) {
                            Ok(resp) => Ok((corr, resp)),
                            Err(e) => {
                                cg_telemetry::global().wire.decode_errors.inc();
                                Err(CgError::ServiceFailure(format!("bad response frame: {e}")))
                            }
                        }
                    }
                    _ => {
                        cg_telemetry::global().wire.decode_errors.inc();
                        Err(CgError::ServiceFailure(
                            "unexpected frame kind in response".to_string(),
                        ))
                    }
                }
            }
        }
    }

    fn call_once(&mut self, req: &Request) -> Result<Response, CgError> {
        let codec = self.ensure_negotiated()?;
        let corr = self.send_request(codec, req)?;
        let (got, resp) = self.recv_response(codec)?;
        if got != corr {
            // A serial call found a stale reply on the socket (e.g. a
            // timed-out predecessor answered late): the stream is
            // desynchronized, which the retry ladder heals by reconnect.
            return Err(CgError::ServiceFailure(format!(
                "correlation mismatch: wanted {corr}, got {got}"
            )));
        }
        Self::settle_response(resp)
    }

    /// Issues a batch of requests with all of them in flight on this one
    /// socket before the first reply is awaited, then demuxes the replies
    /// by correlation id (binary codec) or strict FIFO order (JSON codec —
    /// both servers process a connection's frames sequentially and reply
    /// in receipt order).
    ///
    /// Typed per-request errors (`Error`, `Budget`, …) are returned as
    /// their raw [`Response`] values in the matching slot — one failed
    /// step must not discard its siblings' results. Transport-level
    /// failures abort the whole batch.
    ///
    /// # Errors
    /// [`CgError::ServiceFailure`] on I/O or decode failure.
    pub fn call_pipelined(&mut self, reqs: &[Request]) -> Result<Vec<Response>, CgError> {
        let mut out: Vec<Option<Response>> = vec![None; reqs.len()];
        self.pipeline_once(reqs, &mut out)?;
        Ok(out
            .into_iter()
            .map(|r| r.expect("pipeline_once fills every slot on success"))
            .collect())
    }

    /// One pipelined attempt: sends every request whose `done` slot is
    /// still empty, then collects replies until all slots are filled.
    /// Slots filled by a previous attempt are left untouched, so a retry
    /// wrapper re-issues only the requests whose replies were lost.
    fn pipeline_once(
        &mut self,
        reqs: &[Request],
        done: &mut [Option<Response>],
    ) -> Result<(), CgError> {
        debug_assert_eq!(reqs.len(), done.len());
        let codec = self.ensure_negotiated()?;
        let wire_stats = &cg_telemetry::global().wire;
        // corr id → slot index, for the binary demux.
        let mut pending: HashMap<u64, usize> = HashMap::new();
        let mut order: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        // The whole window is encoded into one buffer and flushed with a
        // single write: one syscall per window instead of one per request,
        // and no chance for the kernel to coalesce-and-stall partial frames.
        let mut batch: Vec<u8> = Vec::new();
        for (at, req) in reqs.iter().enumerate() {
            if done[at].is_some() {
                continue;
            }
            let corr = match codec {
                WireCodec::Json => {
                    let bytes = encode_request(req, self.tenant.as_deref())?;
                    account_tx(WireCodec::Json, bytes.len());
                    batch.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                    batch.extend_from_slice(&bytes);
                    0
                }
                WireCodec::Binary => {
                    self.corr += 1;
                    wire::encode_request_frame(
                        &mut self.scratch,
                        self.corr,
                        req,
                        cg_telemetry::current_context(),
                        self.tenant.as_deref(),
                    );
                    account_tx(WireCodec::Binary, self.scratch.len());
                    batch.extend_from_slice(&(self.scratch.len() as u32).to_le_bytes());
                    batch.extend_from_slice(&self.scratch);
                    self.corr
                }
            };
            wire_stats.pipelined_calls.inc();
            wire_stats.in_flight.inc();
            pending.insert(corr, at);
            order.push_back(at);
        }
        if !batch.is_empty() {
            use std::io::Write as _;
            if let Err(e) = self.stream.write_all(&batch) {
                for _ in &order {
                    wire_stats.in_flight.dec();
                }
                return Err(CgError::ServiceFailure(format!("send: {e}")));
            }
        }
        let result = (|| {
            while !order.is_empty() {
                let (corr, resp) = self.recv_response(codec)?;
                let at = match codec {
                    // JSON replies carry no ids; both server loops answer a
                    // connection's frames strictly in receipt order.
                    WireCodec::Json => order.pop_front().expect("order is non-empty"),
                    WireCodec::Binary => {
                        let at = pending.remove(&corr).ok_or_else(|| {
                            CgError::ServiceFailure(format!(
                                "correlation mismatch: unexpected id {corr}"
                            ))
                        })?;
                        let in_order = order.front() == Some(&at);
                        if in_order {
                            order.pop_front();
                        } else {
                            order.retain(|x| *x != at);
                        }
                        at
                    }
                };
                wire_stats.in_flight.dec();
                done[at] = Some(resp);
            }
            Ok(())
        })();
        // On transport failure the unanswered requests stay in flight from
        // the gauge's perspective unless drained here.
        if result.is_err() {
            for _ in &order {
                wire_stats.in_flight.dec();
            }
        }
        result
    }

    /// Issues one request over the socket. On an I/O error the connection is
    /// re-established (with backoff) and the request re-sent, up to the
    /// policy's attempt count.
    ///
    /// Note that the server executes a request as soon as it is fully
    /// received: a retried mutating `Step` whose first reply was lost to a
    /// connection drop may be applied twice. Remote sessions needing exact
    /// state should be restored by action replay (as `CompilerEnv` does)
    /// rather than resumed blindly after an I/O error.
    ///
    /// # Errors
    /// [`CgError::ServiceFailure`] on I/O or timeout after all attempts;
    /// [`CgError::SessionLost`] when the remote session was destroyed;
    /// [`CgError::Session`] for backend errors.
    pub fn call(&mut self, req: &Request) -> Result<Response, CgError> {
        let start = std::time::Instant::now();
        let max = self.policy.max_attempts.max(1);
        let kind = req.kind();
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let budget_spent = self.policy.budget.is_some_and(|b| start.elapsed() >= b);
            let last = attempt >= max || budget_spent;
            match self.call_once(req) {
                Err(CgError::ServiceFailure(e)) if !last => {
                    self.policy.record_retry(kind, attempt, &e);
                    std::thread::sleep(self.policy.backoff_for(attempt));
                    // On reconnect failure, keep the old stream; the next
                    // attempt retries the connect from scratch.
                    self.reconnect(&e);
                }
                other => return other,
            }
        }
    }

    /// Re-opens the connection after `why`; on success the reconnect is
    /// counted and recorded as a span under the caller's current context.
    fn reconnect(&mut self, why: &str) -> bool {
        match Self::open(&self.addr, self.timeout) {
            Ok(stream) => {
                self.stream = stream;
                // The new peer may be older or newer than the last one:
                // renegotiate the codec on the first call over this stream.
                self.negotiated = None;
                let tel = cg_telemetry::global();
                tel.reconnects.inc();
                tel.trace.emit_status(
                    "tcp:reconnect",
                    format!("{} after: {why}", self.addr),
                    Duration::ZERO,
                    SpanStatus::Recovered,
                );
                true
            }
            Err(_) => false,
        }
    }
}

/// A [`TcpClient`] wrapped to present the same call surface as
/// [`ServiceClient`], so `CompilerEnv` can drive a remote service through
/// the identical recovery ladder it uses in-process.
///
/// Clones share the underlying connection (the remote side keys its session
/// table per connection, so a forked environment *must* reuse the socket its
/// parent's sessions live on) and the restart generation. The checkpoint
/// store is client-owned: a remote worker's server-side store dies with the
/// connection, so the environment exports snapshots back over the wire and
/// parks them here, where they survive reconnects.
#[derive(Clone)]
pub struct TcpTransport {
    inner: Arc<Mutex<TcpClient>>,
    policy: RetryPolicy,
    checkpoints: CheckpointStore,
    budget: Arc<Mutex<ResourceBudget>>,
    restarts: Arc<AtomicU64>,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("policy", &self.policy)
            .finish()
    }
}

impl TcpTransport {
    /// Connects to a remote service with the default [`RetryPolicy`].
    ///
    /// # Errors
    /// Propagates connection failures as [`CgError::ServiceFailure`].
    pub fn connect(addr: &str, timeout: Duration) -> Result<TcpTransport, CgError> {
        Self::connect_with_policy(addr, timeout, RetryPolicy::default())
    }

    /// Connects with an explicit recovery policy.
    ///
    /// # Errors
    /// Propagates connection failures as [`CgError::ServiceFailure`].
    pub fn connect_with_policy(
        addr: &str,
        timeout: Duration,
        policy: RetryPolicy,
    ) -> Result<TcpTransport, CgError> {
        let client = TcpClient::connect_with_policy(addr, timeout, policy.clone())?;
        Ok(TcpTransport {
            inner: Arc::new(Mutex::new(client)),
            policy,
            checkpoints: CheckpointStore::default(),
            budget: Arc::new(Mutex::new(ResourceBudget::default())),
            restarts: Arc::new(AtomicU64::new(0)),
        })
    }

    /// The recovery policy in effect.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Replaces the recovery policy (on this handle and the shared socket).
    pub fn set_policy(&mut self, policy: RetryPolicy) {
        self.inner.lock().policy = policy.clone();
        self.policy = policy;
    }

    /// The client-side checkpoint store snapshots are parked in.
    pub fn checkpoint_store(&self) -> &CheckpointStore {
        &self.checkpoints
    }

    /// Replaces the checkpoint store (interval, capacity, disk sink).
    pub fn set_checkpoint_store(&mut self, store: CheckpointStore) {
        self.checkpoints = store;
    }

    /// The resource budget last configured on the remote service.
    pub fn resource_budget(&self) -> ResourceBudget {
        self.budget.lock().clone()
    }

    /// Configures the remote service's resource budget. Unlike the
    /// in-process transport, a remote worker survives reconnects, so the
    /// remembered budget only matters for reporting.
    ///
    /// # Errors
    /// Propagates the `Configure` call failure.
    pub fn set_resource_budget(&self, budget: ResourceBudget) -> Result<(), CgError> {
        *self.budget.lock() = budget.clone();
        self.call(Request::Configure { budget }).map(|_| ())
    }

    /// Issues one request over the socket — a single attempt, recorded as an
    /// `rpc:{kind}` span whose context rides the frame to the server, so the
    /// remote `service:{kind}` dispatch span parents under it.
    ///
    /// # Errors
    /// Same surface as [`ServiceClient::call`].
    pub fn call(&self, req: Request) -> Result<Response, CgError> {
        let kind = req.kind();
        let mut span = cg_telemetry::global().trace.span(format!("rpc:{kind}"));
        let result = self.inner.lock().call_once(&req);
        match &result {
            Err(CgError::BudgetExceeded(v)) => {
                span.set_status(SpanStatus::BudgetExceeded);
                span.set_detail(v.to_string());
            }
            Err(e) => {
                span.set_status(SpanStatus::Error);
                span.set_detail(e.to_string());
            }
            Ok(_) => {}
        }
        result
    }

    /// Best-effort teardown bounded by the policy's short teardown deadline:
    /// the socket read timeout is temporarily shortened so a hung remote
    /// cannot stall `close()`. A timed-out teardown leaves the stream
    /// desynchronized (the late reply is still in flight), so the connection
    /// is quietly re-opened before returning.
    ///
    /// # Errors
    /// Same as [`TcpTransport::call`]; callers typically ignore the result.
    pub fn call_teardown(&self, req: Request) -> Result<Response, CgError> {
        let kind = req.kind();
        let mut span = cg_telemetry::global()
            .trace
            .span(format!("rpc:teardown:{kind}"));
        let mut client = self.inner.lock();
        let deadline = self.policy.teardown_deadline.min(client.timeout);
        let _ = client.stream.set_read_timeout(Some(deadline));
        let bytes = encode_request(&req, client.tenant.as_deref())?;
        let result = (|| {
            write_frame(&mut client.stream, &bytes)
                .map_err(|e| CgError::ServiceFailure(format!("send: {e}")))?;
            let frame = read_frame(&mut client.stream)
                .map_err(|e| CgError::ServiceFailure(format!("recv: {e}")))?;
            let resp: Response = serde_json::from_slice(&frame)
                .map_err(|e| CgError::ServiceFailure(e.to_string()))?;
            match resp {
                Response::Error(e) => Err(CgError::Session(e)),
                Response::Fatal(e) => Err(CgError::SessionLost(e)),
                Response::Budget(v) => Err(CgError::BudgetExceeded(v)),
                Response::Overloaded {
                    retry_after_ms,
                    reason,
                } => Err(CgError::Overloaded {
                    retry_after_ms,
                    reason,
                }),
                ok => Ok(ok),
            }
        })();
        let _ = client.stream.set_read_timeout(Some(client.timeout));
        if let Err(e) = &result {
            span.set_status(SpanStatus::Error);
            span.set_detail(e.to_string());
            if matches!(e, CgError::ServiceFailure(_)) {
                if let Ok(stream) = TcpClient::open(&client.addr, client.timeout) {
                    client.stream = stream;
                }
            }
        }
        result
    }

    /// Issues a request under the recovery policy: on I/O failure the
    /// connection is re-established and the call retried with backoff, up to
    /// the policy's attempt count or wall-clock budget.
    ///
    /// # Errors
    /// The final error when all attempts were exhausted.
    pub fn call_with_policy(&mut self, req: Request) -> Result<Response, CgError> {
        let policy = self.policy.clone();
        let start = std::time::Instant::now();
        let max = policy.max_attempts.max(1);
        let kind = req.kind();
        let mut req = Some(req);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let budget_spent = policy.budget.is_some_and(|b| start.elapsed() >= b);
            let last = attempt >= max || budget_spent;
            let this = if last {
                req.take().expect("request is held until the final attempt")
            } else {
                req.as_ref()
                    .expect("request is held until the final attempt")
                    .clone()
            };
            match self.call(this) {
                Err(CgError::ServiceFailure(e)) if !last => {
                    policy.record_retry(kind, attempt, &e);
                    std::thread::sleep(policy.backoff_for(attempt));
                    self.inner.lock().reconnect(&e);
                }
                Err(CgError::SessionLost(e)) if !last => {
                    policy.record_retry(kind, attempt, &e);
                    std::thread::sleep(policy.backoff_for(attempt));
                }
                // Overload is answered by a healthy server over a healthy
                // socket: no reconnect, just back off at the server's floor.
                Err(CgError::Overloaded {
                    retry_after_ms,
                    reason,
                }) if !last => {
                    policy.record_retry(kind, attempt, &reason);
                    std::thread::sleep(
                        policy.backoff_with_floor(attempt, Duration::from_millis(retry_after_ms)),
                    );
                }
                other => return other,
            }
        }
    }

    /// Sets the codec preference on the shared socket (see
    /// [`TcpClient::set_codec`]).
    pub fn set_codec(&self, codec: WireCodec) {
        self.inner.lock().set_codec(codec);
    }

    /// The codec negotiated on the current connection, if settled.
    pub fn codec(&self) -> Option<WireCodec> {
        self.inner.lock().codec()
    }

    /// Issues a batch of requests with the whole window in flight on the
    /// socket before the first reply is awaited (see
    /// [`TcpClient::call_pipelined`]), under the recovery policy with
    /// per-correlation-id retry accounting: a transport failure mid-window
    /// reconnects and re-issues only the unanswered requests, each bounded
    /// individually by the policy's attempt count and wall budget — replies
    /// that already landed are never re-executed.
    ///
    /// Typed per-request errors are returned in their slots as raw
    /// [`Response`] values; only transport-level failure errors the batch.
    ///
    /// # Errors
    /// The final transport error once any unanswered request exhausts the
    /// policy.
    pub fn call_pipelined(&self, reqs: &[Request]) -> Result<Vec<Response>, CgError> {
        let mut span = cg_telemetry::global()
            .trace
            .span(format!("rpc:pipeline:{}", reqs.len()));
        let mut done: Vec<Option<Response>> = vec![None; reqs.len()];
        let mut tracker = PipelineRetry::new(reqs.len(), self.policy.clone());
        loop {
            let result = self.inner.lock().pipeline_once(reqs, &mut done);
            match result {
                Ok(()) => {
                    return Ok(done
                        .into_iter()
                        .map(|r| r.expect("pipeline_once fills every slot on success"))
                        .collect());
                }
                Err(CgError::ServiceFailure(e)) => {
                    let unanswered: Vec<usize> = done
                        .iter()
                        .enumerate()
                        .filter_map(|(at, r)| r.is_none().then_some(at))
                        .collect();
                    match tracker.record_failure(&unanswered, &e) {
                        Some(backoff) => {
                            std::thread::sleep(backoff);
                            self.inner.lock().reconnect(&e);
                        }
                        None => {
                            span.set_status(SpanStatus::Error);
                            span.set_detail(&e);
                            return Err(CgError::ServiceFailure(e));
                        }
                    }
                }
                Err(other) => {
                    span.set_status(SpanStatus::Error);
                    span.set_detail(other.to_string());
                    return Err(other);
                }
            }
        }
    }

    /// The TCP analog of [`ServiceClient::restart`]: drop the (possibly
    /// wedged) connection and open a fresh one. Remote sessions on the old
    /// connection are lost; callers re-establish them via replay, exactly as
    /// after an in-process worker restart.
    pub fn restart(&self) {
        let reconnected = self.inner.lock().reconnect("transport restart");
        let generation = self.restarts.fetch_add(1, Ordering::SeqCst) + 1;
        let tel = cg_telemetry::global();
        tel.restarts.inc();
        tel.trace.emit(
            "service:restart",
            format!("tcp generation {generation}, reconnected={reconnected}"),
            Duration::ZERO,
        );
    }

    /// How many times this transport has torn down and re-opened its
    /// connection via [`TcpTransport::restart`].
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{FaultKind, FaultPlan};
    use crate::session::ActionOutcome;

    /// A writer that takes at most `cap` bytes per call, exercising the
    /// partial-write continuation of the vectored [`write_frame`].
    struct DribbleWriter {
        cap: usize,
        data: Vec<u8>,
    }

    impl std::io::Write for DribbleWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            let n = buf.len().min(self.cap);
            self.data.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// Framing regression: the single-writev frame must be byte-identical
    /// to the old prefix-then-payload encoding, for empty, tiny and
    /// megabyte payloads, even when the writer accepts 1–7 bytes at a time.
    #[test]
    fn vectored_frames_encode_identically_under_partial_writes() {
        let payloads: Vec<Vec<u8>> = vec![
            vec![],
            vec![0xAB],
            b"abc".to_vec(),
            (0..1_000_003u32).map(|i| i as u8).collect(),
        ];
        for payload in &payloads {
            for cap in [1usize, 3, 7, 4096, usize::MAX] {
                let mut w = DribbleWriter {
                    cap,
                    data: Vec::new(),
                };
                write_frame(&mut w, payload).unwrap();
                let mut expect = (payload.len() as u32).to_le_bytes().to_vec();
                expect.extend_from_slice(payload);
                assert_eq!(w.data, expect, "cap={cap} len={}", payload.len());
            }
        }
    }

    /// A minimal well-behaved session counting its applies. All misbehaviour
    /// in these tests is injected around it by [`crate::chaos`].
    struct CountingSession {
        steps: usize,
    }

    impl CompilationSession for CountingSession {
        fn action_spaces(&self) -> Vec<ActionSpaceInfo> {
            vec![ActionSpaceInfo {
                name: "count".into(),
                actions: vec!["a".into(); 8],
            }]
        }
        fn observation_spaces(&self) -> Vec<ObservationSpaceInfo> {
            vec![]
        }
        fn reward_spaces(&self) -> Vec<RewardSpaceInfo> {
            vec![]
        }
        fn init(&mut self, _b: &str, _s: usize) -> Result<(), String> {
            Ok(())
        }
        fn apply_action(&mut self, _action: usize) -> Result<ActionOutcome, String> {
            self.steps += 1;
            Ok(ActionOutcome {
                end_of_episode: false,
                action_space_changed: false,
                changed: true,
            })
        }
        fn observe(&mut self, _s: &str) -> Result<Observation, String> {
            Ok(Observation::Scalar(self.steps as f64))
        }
        fn fork(&self) -> Box<dyn CompilationSession> {
            Box::new(CountingSession { steps: self.steps })
        }
        fn save_state(&self) -> Option<Vec<u8>> {
            Some((self.steps as u64).to_le_bytes().to_vec())
        }
        fn load_state(&mut self, state: &[u8]) -> Result<(), String> {
            let bytes: [u8; 8] = state.try_into().map_err(|_| "bad snapshot".to_string())?;
            self.steps = u64::from_le_bytes(bytes) as usize;
            Ok(())
        }
        fn state_size(&self) -> Option<u64> {
            Some(self.steps as u64 * 10)
        }
    }

    fn counting_factory() -> SessionFactory {
        Arc::new(|| Box::new(CountingSession { steps: 0 }))
    }

    /// Serializes the tests that make assertions about the process-global
    /// `timeouts` counter, so they cannot race each other's increments.
    static TIMEOUT_COUNTER: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn start(client: &ServiceClient) -> u64 {
        match client
            .call(Request::StartSession {
                benchmark: "x".into(),
                action_space: 0,
            })
            .unwrap()
        {
            Response::SessionStarted { session_id } => session_id,
            r => panic!("{r:?}"),
        }
    }

    #[test]
    fn panicking_session_is_isolated() {
        let (factory, _) = FaultPlan::seeded(1)
            .schedule(2, FaultKind::Panic)
            .wrap(counting_factory());
        let client = ServiceClient::spawn(factory, Duration::from_secs(5));
        let sid = start(&client);
        // Normal steps work (applies 0 and 1).
        let r = client
            .call(Request::Step {
                session_id: sid,
                actions: vec![0, 1],
                observation_spaces: vec![],
            })
            .unwrap();
        assert!(matches!(r, Response::Stepped { .. }));
        // The crashing apply destroys the session, not the service.
        let e = client
            .call(Request::Step {
                session_id: sid,
                actions: vec![3],
                observation_spaces: vec![],
            })
            .unwrap_err();
        assert!(matches!(e, CgError::SessionLost(_)));
        // The service is still alive for new sessions.
        assert!(matches!(
            client.call(Request::Ping).unwrap(),
            Response::Pong
        ));
        let sid2 = start(&client);
        assert_ne!(sid, sid2);
    }

    #[test]
    fn injected_backend_error_is_a_session_error() {
        let (factory, stats) = FaultPlan::seeded(1)
            .schedule(0, FaultKind::Error)
            .wrap(counting_factory());
        let client = ServiceClient::spawn(factory, Duration::from_secs(5));
        let sid = start(&client);
        let e = client
            .call(Request::Step {
                session_id: sid,
                actions: vec![0],
                observation_spaces: vec![],
            })
            .unwrap_err();
        // Backend errors are legitimate results, never retried or recovered.
        assert!(matches!(e, CgError::Session(_)));
        assert_eq!(stats.errors(), 1);
    }

    #[test]
    fn hung_session_times_out_and_restarts() {
        let _guard = TIMEOUT_COUNTER.lock().unwrap_or_else(|e| e.into_inner());
        let (factory, _) = FaultPlan::seeded(2)
            .schedule(0, FaultKind::Hang)
            .with_hang_duration(Duration::from_millis(500))
            .wrap(counting_factory());
        let mut client = ServiceClient::spawn(factory, Duration::from_millis(100));
        let sid = start(&client);
        let e = client
            .call(Request::Step {
                session_id: sid,
                actions: vec![2],
                observation_spaces: vec![],
            })
            .unwrap_err();
        assert!(matches!(e, CgError::ServiceFailure(_)));
        // The policy-driven retry restarts the service; Ping succeeds again.
        let r = client.call_with_policy(Request::Ping).unwrap();
        assert!(matches!(r, Response::Pong));
        assert!(client.restarts() >= 1);
    }

    #[test]
    fn teardown_deadline_bounds_end_session_against_a_hung_service() {
        let _guard = TIMEOUT_COUNTER.lock().unwrap_or_else(|e| e.into_inner());
        let (factory, _) = FaultPlan::seeded(3)
            .schedule(0, FaultKind::Hang)
            .with_hang_duration(Duration::from_secs(2))
            .wrap(counting_factory());
        let mut client = ServiceClient::spawn(factory, Duration::from_secs(30));
        client.set_policy(RetryPolicy::default().with_teardown_deadline(Duration::from_millis(50)));
        let sid = start(&client);
        // Wedge the worker without waiting for the (long) call deadline.
        let (reply_tx, _reply_rx) = bounded(1);
        client
            .tx
            .lock()
            .send((
                Request::Step {
                    session_id: sid,
                    actions: vec![0],
                    observation_spaces: vec![],
                },
                None,
                reply_tx,
            ))
            .unwrap();
        let timeouts_before = cg_telemetry::global().timeouts.get();
        let t = std::time::Instant::now();
        let e = client
            .call_teardown(Request::EndSession { session_id: sid })
            .unwrap_err();
        assert!(matches!(e, CgError::ServiceFailure(_)));
        assert!(
            t.elapsed() < Duration::from_secs(1),
            "teardown must not block for the full 30s call timeout, took {:?}",
            t.elapsed()
        );
        // Expected expiry of a best-effort teardown is not a telemetry
        // timeout event.
        assert_eq!(cg_telemetry::global().timeouts.get(), timeouts_before);
    }

    #[test]
    fn fork_duplicates_state() {
        let client = ServiceClient::spawn(counting_factory(), Duration::from_secs(5));
        let sid = start(&client);
        client
            .call(Request::Step {
                session_id: sid,
                actions: vec![0, 0],
                observation_spaces: vec![],
            })
            .unwrap();
        let forked = match client.call(Request::Fork { session_id: sid }).unwrap() {
            Response::Forked { session_id } => session_id,
            r => panic!("{r:?}"),
        };
        let obs = |sid| match client
            .call(Request::Step {
                session_id: sid,
                actions: vec![],
                observation_spaces: vec!["steps".into()],
            })
            .unwrap()
        {
            Response::Stepped { observations, .. } => observations[0].as_scalar().unwrap(),
            r => panic!("{r:?}"),
        };
        assert_eq!(obs(sid), obs(forked));
    }

    #[test]
    fn wall_budget_kills_in_band_without_restart() {
        // A 2s hang against a 100ms wall budget: the worker must answer a
        // typed budget error well within 2x the budget — no client-side
        // timeout, no service restart.
        let (factory, _) = FaultPlan::seeded(4)
            .schedule(0, FaultKind::Hang)
            .with_hang_duration(Duration::from_secs(2))
            .wrap(counting_factory());
        let client = ServiceClient::spawn(factory, Duration::from_secs(10));
        client
            .set_resource_budget(
                ResourceBudget::default().with_step_wall(Duration::from_millis(100)),
            )
            .unwrap();
        let sid = start(&client);
        let kills_before = cg_telemetry::global().budget_kills.get();
        let t = std::time::Instant::now();
        let e = client
            .call(Request::Step {
                session_id: sid,
                actions: vec![0],
                observation_spaces: vec![],
            })
            .unwrap_err();
        let elapsed = t.elapsed();
        match e {
            CgError::BudgetExceeded(v) => assert_eq!(v.kind, crate::budget::BudgetKind::Wall),
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        assert!(
            elapsed < Duration::from_millis(1000),
            "typed error must arrive promptly, took {elapsed:?}"
        );
        assert_eq!(
            client.restarts(),
            0,
            "budget kill must not restart the service"
        );
        assert!(cg_telemetry::global().budget_kills.get() > kills_before);
        // The service survives and serves new sessions immediately.
        assert!(matches!(
            client.call(Request::Ping).unwrap(),
            Response::Pong
        ));
        let sid2 = start(&client);
        assert_ne!(sid, sid2);
    }

    #[test]
    fn growth_budget_kills_in_band() {
        // CountingSession reports size = steps * 10; cap at 25 so the third
        // apply (size 30) trips the growth check mid-batch.
        let client = ServiceClient::spawn(counting_factory(), Duration::from_secs(5));
        client
            .set_resource_budget(ResourceBudget::default().with_max_state_size(25))
            .unwrap();
        let sid = start(&client);
        let e = client
            .call(Request::Step {
                session_id: sid,
                actions: vec![0, 0, 0, 0, 0],
                observation_spaces: vec![],
            })
            .unwrap_err();
        match e {
            CgError::BudgetExceeded(v) => {
                assert_eq!(v.kind, crate::budget::BudgetKind::Growth);
                assert_eq!(v.limit, 25);
                assert_eq!(v.observed, 30);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        // The session was destroyed; the service survives.
        let e = client
            .call(Request::Step {
                session_id: sid,
                actions: vec![],
                observation_spaces: vec![],
            })
            .unwrap_err();
        assert!(matches!(e, CgError::Session(_)));
        assert_eq!(client.restarts(), 0);
    }

    #[test]
    fn worker_checkpoints_every_k_actions_and_restores() {
        let client = ServiceClient::spawn(counting_factory(), Duration::from_secs(5));
        let sid = start(&client);
        for _ in 0..25 {
            client
                .call(Request::Step {
                    session_id: sid,
                    actions: vec![0],
                    observation_spaces: vec![],
                })
                .unwrap();
        }
        // Default interval K=10: snapshots at depths 10 and 20.
        let store = client.checkpoint_store();
        assert_eq!(store.checkpoints_taken(), 2);
        let ck = store.latest_matching("x", 0, &[0; 25]).unwrap();
        assert_eq!(ck.depth(), 20);
        // Restore into a fresh session and confirm the state came back.
        let restored = match client
            .call(Request::RestoreSession {
                benchmark: ck.benchmark,
                action_space: ck.action_space,
                actions: ck.actions,
                state: ck.state,
            })
            .unwrap()
        {
            Response::SessionStarted { session_id } => session_id,
            r => panic!("{r:?}"),
        };
        let r = client
            .call(Request::Step {
                session_id: restored,
                actions: vec![],
                observation_spaces: vec!["steps".into()],
            })
            .unwrap();
        match r {
            Response::Stepped { observations, .. } => {
                assert_eq!(observations[0].as_scalar(), Some(20.0));
            }
            r => panic!("{r:?}"),
        }
    }

    #[test]
    fn checkpoint_store_survives_restart() {
        let client = ServiceClient::spawn(counting_factory(), Duration::from_secs(5));
        let sid = start(&client);
        client
            .call(Request::Step {
                session_id: sid,
                actions: vec![0; 10],
                observation_spaces: vec![],
            })
            .unwrap();
        assert_eq!(client.checkpoint_store().len(), 1);
        client.restart();
        // The ring is client-owned: worker death does not empty it, and the
        // fresh worker keeps writing into the same ring.
        assert_eq!(client.checkpoint_store().len(), 1);
        let sid2 = start(&client);
        client
            .call(Request::Step {
                session_id: sid2,
                actions: vec![0; 10],
                observation_spaces: vec![],
            })
            .unwrap();
        assert_eq!(client.checkpoint_store().len(), 2);
    }

    #[test]
    fn tcp_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || serve_tcp(listener, counting_factory()));
        let mut client = TcpClient::connect(&addr, Duration::from_secs(5)).unwrap();
        assert!(matches!(
            client.call(&Request::Ping).unwrap(),
            Response::Pong
        ));
        let sid = match client
            .call(&Request::StartSession {
                benchmark: "x".into(),
                action_space: 0,
            })
            .unwrap()
        {
            Response::SessionStarted { session_id } => session_id,
            r => panic!("{r:?}"),
        };
        let r = client
            .call(&Request::Step {
                session_id: sid,
                actions: vec![0],
                observation_spaces: vec!["steps".into()],
            })
            .unwrap();
        match r {
            Response::Stepped { observations, .. } => {
                assert_eq!(observations[0].as_scalar(), Some(1.0));
            }
            r => panic!("{r:?}"),
        }
        let _ = client.call(&Request::Shutdown);
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let t = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            // A header claiming a 1 GiB frame, no body. Hold the connection
            // open so the reader fails on the size check, not on EOF.
            conn.write_all(&(1u32 << 30).to_le_bytes()).unwrap();
            std::thread::sleep(Duration::from_millis(200));
        });
        let mut stream = TcpStream::connect(&addr).unwrap();
        let err = read_frame(&mut stream).unwrap_err();
        assert!(err.to_string().contains("frame too large"), "{err}");
        t.join().unwrap();
    }

    #[test]
    fn truncated_frame_fails_cleanly() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let t = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            // Promise 64 bytes, deliver 3, then drop the connection.
            conn.write_all(&64u32.to_le_bytes()).unwrap();
            conn.write_all(b"abc").unwrap();
        });
        let mut stream = TcpStream::connect(&addr).unwrap();
        let err = read_frame(&mut stream).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        t.join().unwrap();
    }

    #[test]
    fn tcp_connection_panic_does_not_kill_the_server() {
        /// A session whose *space description* panics: `GetSpaces` probes the
        /// factory outside the per-session `catch_unwind`, so this panics the
        /// connection-handler layer itself — exactly the hole the
        /// per-connection containment covers.
        struct PoisonedSpaces;
        impl CompilationSession for PoisonedSpaces {
            fn action_spaces(&self) -> Vec<ActionSpaceInfo> {
                panic!("chaos: poisoned space description")
            }
            fn observation_spaces(&self) -> Vec<ObservationSpaceInfo> {
                vec![]
            }
            fn reward_spaces(&self) -> Vec<RewardSpaceInfo> {
                vec![]
            }
            fn init(&mut self, _b: &str, _s: usize) -> Result<(), String> {
                Ok(())
            }
            fn apply_action(&mut self, _a: usize) -> Result<ActionOutcome, String> {
                Ok(ActionOutcome {
                    end_of_episode: false,
                    action_space_changed: false,
                    changed: false,
                })
            }
            fn observe(&mut self, _s: &str) -> Result<Observation, String> {
                Ok(Observation::Scalar(0.0))
            }
            fn fork(&self) -> Box<dyn CompilationSession> {
                Box::new(PoisonedSpaces)
            }
        }
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || serve_tcp(listener, Arc::new(|| Box::new(PoisonedSpaces))));
        let no_retry = RetryPolicy::default().with_max_attempts(1);
        let mut poisoned =
            TcpClient::connect_with_policy(&addr, Duration::from_secs(5), no_retry.clone())
                .unwrap();
        assert!(matches!(
            poisoned.call(&Request::Ping).unwrap(),
            Response::Pong
        ));
        // The handler panics and this connection dies...
        let e = poisoned.call(&Request::GetSpaces).unwrap_err();
        assert!(matches!(e, CgError::ServiceFailure(_)));
        // ...but the accept loop survives: a fresh connection still works.
        let mut fresh =
            TcpClient::connect_with_policy(&addr, Duration::from_secs(5), no_retry).unwrap();
        assert!(matches!(
            fresh.call(&Request::Ping).unwrap(),
            Response::Pong
        ));
        let _ = fresh.call(&Request::Shutdown);
    }

    #[test]
    fn tcp_reconnects_after_peer_drop() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            // Accept and immediately drop the first connection, then serve
            // normally: the client's first call dies mid-flight and must
            // transparently reconnect under its policy.
            let (first, _) = listener.accept().unwrap();
            drop(first);
            serve_tcp(listener, counting_factory());
        });
        let tel = cg_telemetry::global();
        let reconnects_before = tel.reconnects.get();
        let mut client = TcpClient::connect_with_policy(
            &addr,
            Duration::from_secs(5),
            RetryPolicy::default().with_max_attempts(4),
        )
        .unwrap();
        assert!(matches!(
            client.call(&Request::Ping).unwrap(),
            Response::Pong
        ));
        assert!(
            tel.reconnects.get() > reconnects_before,
            "a reconnect was recorded"
        );
        let _ = client.call(&Request::Shutdown);
    }

    #[test]
    fn tcp_connection_cap_refuses_in_band_and_recovers() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || serve_tcp_with_limit(listener, counting_factory(), 1));
        let no_retry = RetryPolicy::default().with_max_attempts(1);
        let mut first =
            TcpClient::connect_with_policy(&addr, Duration::from_secs(5), no_retry.clone())
                .unwrap();
        assert!(matches!(
            first.call(&Request::Ping).unwrap(),
            Response::Pong
        ));

        // The second connection is over the cap. Read before writing: the
        // refusal arrives unsolicited as one typed `Overloaded` frame, so a
        // refused client never has to race its request against the close.
        let mut refused = std::net::TcpStream::connect(&addr).unwrap();
        refused
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let frame = read_frame(&mut refused).unwrap();
        let resp: Response = serde_json::from_slice(&frame).unwrap();
        match resp {
            Response::Overloaded {
                retry_after_ms,
                reason,
            } => {
                assert!(retry_after_ms > 0, "refusal must advise a retry delay");
                assert!(reason.contains("connection cap"), "reason: {reason}");
            }
            other => panic!("expected a typed refusal, got {other:?}"),
        }
        drop(refused);

        // Ending the first connection frees the slot; a later connect is
        // admitted and served (polling, since the slot is released when the
        // handler thread exits).
        let _ = first.call(&Request::Shutdown);
        drop(first);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let mut next =
                TcpClient::connect_with_policy(&addr, Duration::from_secs(5), no_retry.clone())
                    .unwrap();
            match next.call(&Request::Ping) {
                Ok(Response::Pong) => {
                    let _ = next.call(&Request::Shutdown);
                    break;
                }
                Ok(other) => panic!("unexpected ping reply: {other:?}"),
                Err(CgError::Overloaded { .. } | CgError::ServiceFailure(_))
                    if std::time::Instant::now() < deadline =>
                {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => panic!("cap never released: {e}"),
            }
        }
    }

    #[test]
    fn tcp_negotiates_binary_by_default() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || serve_tcp(listener, counting_factory()));
        let mut client = TcpClient::connect(&addr, Duration::from_secs(5)).unwrap();
        assert_eq!(client.codec(), None, "codec settles lazily, on first call");
        assert!(matches!(
            client.call(&Request::Ping).unwrap(),
            Response::Pong
        ));
        assert_eq!(client.codec(), Some(crate::wire::WireCodec::Binary));
        // A full session round-trips typed payloads over the binary codec.
        let sid = match client
            .call(&Request::StartSession {
                benchmark: "x".into(),
                action_space: 0,
            })
            .unwrap()
        {
            Response::SessionStarted { session_id } => session_id,
            r => panic!("{r:?}"),
        };
        match client
            .call(&Request::Step {
                session_id: sid,
                actions: vec![0, 0, 0],
                observation_spaces: vec!["steps".into()],
            })
            .unwrap()
        {
            Response::Stepped { observations, .. } => {
                assert_eq!(observations[0].as_scalar(), Some(3.0));
            }
            r => panic!("{r:?}"),
        }
        let _ = client.call(&Request::Shutdown);
    }

    #[test]
    fn json_pinned_client_skips_negotiation() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || serve_tcp(listener, counting_factory()));
        let mut client = TcpClient::connect(&addr, Duration::from_secs(5)).unwrap();
        client.set_codec(crate::wire::WireCodec::Json);
        assert!(matches!(
            client.call(&Request::Ping).unwrap(),
            Response::Pong
        ));
        assert_eq!(client.codec(), Some(crate::wire::WireCodec::Json));
        let _ = client.call(&Request::Shutdown);
    }

    #[test]
    fn json_only_peer_interops_with_binary_server() {
        // Simulates an old, pre-CGB1 client: hand-rolled JSON frames on a
        // raw socket, no Hello, no magic. The binary-capable server must
        // sniff each frame and answer it in JSON, unchanged.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || serve_tcp(listener, counting_factory()));
        let mut peer = TcpStream::connect(&addr).unwrap();
        peer.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut rpc = |req: &Request| -> Response {
            write_frame(&mut peer, &serde_json::to_vec(req).unwrap()).unwrap();
            let frame = read_frame(&mut peer).unwrap();
            serde_json::from_slice(&frame).unwrap()
        };
        assert!(matches!(rpc(&Request::Ping), Response::Pong));
        let sid = match rpc(&Request::StartSession {
            benchmark: "x".into(),
            action_space: 0,
        }) {
            Response::SessionStarted { session_id } => session_id,
            r => panic!("{r:?}"),
        };
        match rpc(&Request::Step {
            session_id: sid,
            actions: vec![0, 0],
            observation_spaces: vec!["steps".into()],
        }) {
            Response::Stepped { observations, .. } => {
                assert_eq!(observations[0].as_scalar(), Some(2.0));
            }
            r => panic!("{r:?}"),
        }
        assert!(matches!(rpc(&Request::Shutdown), Response::Ok));
    }

    #[test]
    fn binary_client_falls_back_against_json_only_server() {
        // A legacy JSON-only server: anything it cannot parse as UTF-8 JSON
        // (such as a CGB1 Hello probe) gets a typed JSON error reply. A
        // binary-preferring client must settle on JSON transparently.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            loop {
                let frame = match read_frame(&mut conn) {
                    Ok(f) => f,
                    Err(_) => return,
                };
                let parsed = std::str::from_utf8(&frame)
                    .map_err(|e| e.to_string())
                    .and_then(|s| serde_json::from_str::<Request>(s).map_err(|e| e.to_string()));
                let resp = match parsed {
                    Ok(Request::Ping) => Response::Pong,
                    Ok(Request::Shutdown) => {
                        let _ = write_frame(&mut conn, &serde_json::to_vec(&Response::Ok).unwrap());
                        return;
                    }
                    Ok(_) => Response::Error("unsupported".into()),
                    Err(e) => Response::Error(format!("bad request frame: {e}")),
                };
                if write_frame(&mut conn, &serde_json::to_vec(&resp).unwrap()).is_err() {
                    return;
                }
            }
        });
        let tel = cg_telemetry::global();
        let fallbacks_before = tel.wire.fallbacks.get();
        let mut client = TcpClient::connect_with_policy(
            &addr,
            Duration::from_secs(5),
            RetryPolicy::default().with_max_attempts(1),
        )
        .unwrap();
        assert!(matches!(
            client.call(&Request::Ping).unwrap(),
            Response::Pong
        ));
        assert_eq!(client.codec(), Some(crate::wire::WireCodec::Json));
        assert!(
            tel.wire.fallbacks.get() > fallbacks_before,
            "the JSON fallback must be recorded"
        );
        let _ = client.call(&Request::Shutdown);
    }

    #[test]
    fn trace_and_tenant_metadata_survive_binary_codec() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || serve_tcp(listener, counting_factory()));
        let mut client = TcpClient::connect(&addr, Duration::from_secs(5)).unwrap();
        client.set_tenant("metadata-tenant");
        let sentinel = cg_telemetry::TraceContext {
            trace_id: 0xC0FF_EE00_0000_0042,
            span_id: 7,
        };
        {
            let _guard = cg_telemetry::enter_context(sentinel);
            assert!(matches!(
                client.call(&Request::Ping).unwrap(),
                Response::Pong
            ));
        }
        assert_eq!(client.codec(), Some(crate::wire::WireCodec::Binary));
        // The server-side dispatch span must have joined the client's trace:
        // the `__trace`-equivalent metadata rode inside the binary frame.
        let joined = cg_telemetry::global()
            .trace
            .events()
            .iter()
            .any(|s| s.trace_id == sentinel.trace_id && s.span.starts_with("service:"));
        assert!(joined, "server span must carry the client's trace id");
        let _ = client.call(&Request::Shutdown);
    }

    #[test]
    fn tcp_pipelined_matches_serial() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || serve_tcp(listener, counting_factory()));
        let transport = TcpTransport::connect(&addr, Duration::from_secs(5)).unwrap();

        // Serial reference run.
        let sid = match transport
            .call(Request::StartSession {
                benchmark: "x".into(),
                action_space: 0,
            })
            .unwrap()
        {
            Response::SessionStarted { session_id } => session_id,
            r => panic!("{r:?}"),
        };
        let mut serial = Vec::new();
        for _ in 0..4 {
            match transport
                .call(Request::Step {
                    session_id: sid,
                    actions: vec![0],
                    observation_spaces: vec!["steps".into()],
                })
                .unwrap()
            {
                Response::Stepped { observations, .. } => {
                    serial.push(observations[0].as_scalar().unwrap())
                }
                r => panic!("{r:?}"),
            }
        }

        // Pipelined run on a fresh session: same actions, one wire window.
        let sid2 = match transport
            .call(Request::StartSession {
                benchmark: "x".into(),
                action_space: 0,
            })
            .unwrap()
        {
            Response::SessionStarted { session_id } => session_id,
            r => panic!("{r:?}"),
        };
        let reqs: Vec<Request> = (0..4)
            .map(|_| Request::Step {
                session_id: sid2,
                actions: vec![0],
                observation_spaces: vec!["steps".into()],
            })
            .collect();
        let tel = cg_telemetry::global();
        let pipelined_before = tel.wire.pipelined_calls.get();
        let replies = transport.call_pipelined(&reqs).unwrap();
        assert!(tel.wire.pipelined_calls.get() >= pipelined_before + 4);
        let pipelined: Vec<f64> = replies
            .iter()
            .map(|r| match r {
                Response::Stepped { observations, .. } => observations[0].as_scalar().unwrap(),
                r => panic!("{r:?}"),
            })
            .collect();
        // Byte-identical step semantics: responses land in request order
        // and the counter advances exactly as in the serial run.
        assert_eq!(serial, pipelined);
        let _ = transport.call(Request::Shutdown);
    }

    #[test]
    fn service_client_pipelined_steps_in_order() {
        let client = ServiceClient::spawn(counting_factory(), Duration::from_secs(5));
        let sid = start(&client);
        let reqs: Vec<Request> = (0..8)
            .map(|_| Request::Step {
                session_id: sid,
                actions: vec![0],
                observation_spaces: vec!["steps".into()],
            })
            .collect();
        let replies = client.call_pipelined(&reqs).unwrap();
        let counts: Vec<f64> = replies
            .iter()
            .map(|r| match r {
                Response::Stepped { observations, .. } => observations[0].as_scalar().unwrap(),
                r => panic!("{r:?}"),
            })
            .collect();
        assert_eq!(counts, (1..=8).map(f64::from).collect::<Vec<_>>());
    }
}
