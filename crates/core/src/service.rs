//! The compiler service runtime (§IV-B): session workers behind an RPC
//! boundary, with timeouts, panic isolation, and restart-on-failure.
//!
//! Two transports implement the same request/response protocol:
//!
//! * **in-process** — a dedicated service thread per environment, reached
//!   over channels (the default; one "service process" per env, as the real
//!   system spawns one compiler service per environment);
//! * **TCP** — length-prefixed JSON frames over a socket, supporting
//!   compilation on a different machine than the frontend.
//!
//! Fault tolerance: every session call runs under `catch_unwind`, so a
//! crashing "compiler" yields an error response instead of killing the
//! service; calls that exceed the client timeout surface as
//! [`CgError::ServiceFailure`] and the environment transparently restarts
//! the service on the next `reset()`.

use std::collections::HashMap;
use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use serde::{Deserialize, Serialize};

use crate::error::CgError;
use crate::session::CompilationSession;
use crate::space::{ActionSpaceInfo, Observation, ObservationSpaceInfo, RewardSpaceInfo};

/// A request to the compiler service.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Describe the environment's spaces.
    GetSpaces,
    /// Start a session on a benchmark.
    StartSession {
        /// Benchmark URI.
        benchmark: String,
        /// Index into the advertised action spaces.
        action_space: usize,
    },
    /// Apply actions and compute observations in one round trip. Supports
    /// the batched (§III-B5: multiple actions per step) and lazy (chosen
    /// observation spaces per step) extensions.
    Step {
        /// Session to drive.
        session_id: u64,
        /// Actions to apply, in order (may be empty for observation-only).
        actions: Vec<usize>,
        /// Observation spaces to compute after the last action.
        observation_spaces: Vec<String>,
    },
    /// Deep-copy a session.
    Fork {
        /// Session to copy.
        session_id: u64,
    },
    /// Discard a session.
    EndSession {
        /// Session to end.
        session_id: u64,
    },
    /// Stop the service.
    Shutdown,
}

impl Request {
    /// The variant name, used to key per-request telemetry.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Ping => "Ping",
            Request::GetSpaces => "GetSpaces",
            Request::StartSession { .. } => "StartSession",
            Request::Step { .. } => "Step",
            Request::Fork { .. } => "Fork",
            Request::EndSession { .. } => "EndSession",
            Request::Shutdown => "Shutdown",
        }
    }
}

/// A response from the compiler service.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Response {
    /// Ping reply.
    Pong,
    /// Space description.
    Spaces {
        /// Action spaces.
        action_spaces: Vec<ActionSpaceInfo>,
        /// Observation spaces.
        observation_spaces: Vec<ObservationSpaceInfo>,
        /// Reward spaces.
        reward_spaces: Vec<RewardSpaceInfo>,
    },
    /// Session created.
    SessionStarted {
        /// Handle for subsequent requests.
        session_id: u64,
    },
    /// Step result.
    Stepped {
        /// Episode ended.
        end_of_episode: bool,
        /// Any action changed the state.
        changed: bool,
        /// Requested observations, in request order.
        observations: Vec<Observation>,
    },
    /// Fork created.
    Forked {
        /// The new session's handle.
        session_id: u64,
    },
    /// Session ended / shutdown acknowledged.
    Ok,
    /// The request failed.
    Error(String),
}

/// Factory producing fresh sessions for this service's environment.
pub type SessionFactory = Arc<dyn Fn() -> Box<dyn CompilationSession> + Send + Sync>;

struct ServiceState {
    factory: SessionFactory,
    sessions: HashMap<u64, Box<dyn CompilationSession>>,
    next_id: u64,
}

impl ServiceState {
    /// Dispatches one request, recording latency, in-flight, error, and
    /// panic telemetry. Both transports funnel through here, so service
    /// metrics cover in-process and TCP alike.
    fn handle(&mut self, req: Request) -> Response {
        let tel = cg_telemetry::global();
        let kind = req.kind();
        tel.in_flight.inc();
        let timer = cg_telemetry::Timer::start();
        let resp = self.dispatch(req);
        let dur = timer.elapsed();
        tel.in_flight.dec();
        tel.requests.get(kind).record_duration(dur);
        if let Response::Error(e) = &resp {
            tel.request_errors.get(kind).inc();
            tel.trace.emit(format!("service:error:{kind}"), e.clone(), dur);
        }
        resp
    }

    fn dispatch(&mut self, req: Request) -> Response {
        match req {
            Request::Ping => Response::Pong,
            Request::GetSpaces => {
                let probe = (self.factory)();
                Response::Spaces {
                    action_spaces: probe.action_spaces(),
                    observation_spaces: probe.observation_spaces(),
                    reward_spaces: probe.reward_spaces(),
                }
            }
            Request::StartSession { benchmark, action_space } => {
                let mut session = (self.factory)();
                match session.init(&benchmark, action_space) {
                    Ok(()) => {
                        let id = self.next_id;
                        self.next_id += 1;
                        self.sessions.insert(id, session);
                        Response::SessionStarted { session_id: id }
                    }
                    Err(e) => Response::Error(e),
                }
            }
            Request::Step { session_id, actions, observation_spaces } => {
                let Some(session) = self.sessions.get_mut(&session_id) else {
                    return Response::Error(format!("no session {session_id}"));
                };
                // Panic isolation: a crashing pass must not take down the
                // service (the paper's "resilient to failures, crashes").
                let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    let mut end = false;
                    let mut changed = false;
                    for a in &actions {
                        let out = session.apply_action(*a)?;
                        end |= out.end_of_episode;
                        changed |= out.changed;
                        if end {
                            break;
                        }
                    }
                    let mut observations = Vec::with_capacity(observation_spaces.len());
                    for s in &observation_spaces {
                        let timer = cg_telemetry::Timer::start();
                        observations.push(session.observe(s)?);
                        let tel = cg_telemetry::global();
                        let dur = timer.observe(&tel.observations.get(s));
                        tel.trace.emit(format!("observation:{s}"), "", dur);
                    }
                    Ok::<_, String>((end, changed, observations))
                }));
                match result {
                    Ok(Ok((end_of_episode, changed, observations))) => {
                        Response::Stepped { end_of_episode, changed, observations }
                    }
                    Ok(Err(e)) => Response::Error(e),
                    Err(_) => {
                        // The session may be corrupt: drop it.
                        self.sessions.remove(&session_id);
                        let tel = cg_telemetry::global();
                        tel.panics.inc();
                        tel.trace.emit(
                            "service:panic",
                            format!("session {session_id} destroyed"),
                            Duration::ZERO,
                        );
                        Response::Error("session panicked; session destroyed".into())
                    }
                }
            }
            Request::Fork { session_id } => match self.sessions.get(&session_id) {
                Some(s) => {
                    let copy = s.fork();
                    let id = self.next_id;
                    self.next_id += 1;
                    self.sessions.insert(id, copy);
                    Response::Forked { session_id: id }
                }
                None => Response::Error(format!("no session {session_id}")),
            },
            Request::EndSession { session_id } => {
                self.sessions.remove(&session_id);
                Response::Ok
            }
            Request::Shutdown => Response::Ok,
        }
    }
}

/// A handle to a running in-process compiler service.
#[derive(Clone)]
pub struct ServiceClient {
    tx: Sender<(Request, Sender<Response>)>,
    factory: SessionFactory,
    timeout: Duration,
    generation: Arc<AtomicU64>,
}

impl std::fmt::Debug for ServiceClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceClient").field("timeout", &self.timeout).finish()
    }
}

fn spawn_worker(factory: SessionFactory) -> Sender<(Request, Sender<Response>)> {
    let (tx, rx): (Sender<(Request, Sender<Response>)>, Receiver<_>) = unbounded();
    let f = Arc::clone(&factory);
    std::thread::Builder::new()
        .name("cg-compiler-service".into())
        .stack_size(16 << 20)
        .spawn(move || {
            let mut state = ServiceState { factory: f, sessions: HashMap::new(), next_id: 0 };
            while let Ok((req, reply)) = rx.recv() {
                let shutdown = matches!(req, Request::Shutdown);
                let resp = state.handle(req);
                let _ = reply.send(resp);
                if shutdown {
                    break;
                }
            }
        })
        .expect("spawn service thread");
    tx
}

impl ServiceClient {
    /// Spawns a fresh in-process compiler service (the "service startup"
    /// cost of Table II) and returns a client for it.
    pub fn spawn(factory: SessionFactory, timeout: Duration) -> ServiceClient {
        let tx = spawn_worker(Arc::clone(&factory));
        ServiceClient { tx, factory, timeout, generation: Arc::new(AtomicU64::new(0)) }
    }

    /// Issues one request, waiting up to the client timeout.
    ///
    /// # Errors
    /// [`CgError::ServiceFailure`] when the service is dead or the call
    /// exceeded the timeout; [`CgError::Session`] for backend errors.
    pub fn call(&self, req: Request) -> Result<Response, CgError> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send((req, reply_tx))
            .map_err(|_| CgError::ServiceFailure("service disconnected".into()))?;
        match reply_rx.recv_timeout(self.timeout) {
            Ok(Response::Error(e)) => Err(CgError::Session(e)),
            Ok(resp) => Ok(resp),
            Err(_) => {
                cg_telemetry::global().timeouts.inc();
                Err(CgError::ServiceFailure(format!(
                    "service call exceeded {:?} (hung or crashed)",
                    self.timeout
                )))
            }
        }
    }

    /// Issues a request, restarting the service and retrying (up to
    /// `retries` times) on service failure — the runtime's "retry loop".
    ///
    /// # Errors
    /// The final error when all retries were exhausted.
    pub fn call_with_retries(&mut self, req: Request, retries: u32) -> Result<Response, CgError> {
        let mut last = self.call(req.clone());
        for _ in 0..retries {
            match &last {
                Err(CgError::ServiceFailure(_)) => {
                    self.restart();
                    last = self.call(req.clone());
                }
                _ => break,
            }
        }
        last
    }

    /// Abandons the (possibly hung) service thread and spawns a fresh one.
    /// Sessions are lost; callers re-establish them via `reset()`.
    pub fn restart(&mut self) {
        self.tx = spawn_worker(Arc::clone(&self.factory));
        let generation = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
        let tel = cg_telemetry::global();
        tel.restarts.inc();
        tel.trace.emit("service:restart", format!("generation {generation}"), Duration::ZERO);
    }

    /// How many times this client has restarted its service.
    pub fn restarts(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }
}

// ---------------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------------

fn write_frame(stream: &mut TcpStream, bytes: &[u8]) -> std::io::Result<()> {
    stream.write_all(&(bytes.len() as u32).to_le_bytes())?;
    stream.write_all(bytes)
}

fn read_frame(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len)?;
    let n = u32::from_le_bytes(len) as usize;
    if n > (64 << 20) {
        return Err(std::io::Error::other("frame too large"));
    }
    let mut buf = vec![0u8; n];
    stream.read_exact(&mut buf)?;
    Ok(buf)
}

/// Serves the compiler service over TCP. Each connection gets its own
/// session table and worker ("support for compiling on a different system
/// architecture than the host by running the compiler service on a remote
/// machine"). Blocks forever; run it on a dedicated thread.
pub fn serve_tcp(listener: TcpListener, factory: SessionFactory) {
    for stream in listener.incoming() {
        let Ok(mut stream) = stream else { continue };
        let f = Arc::clone(&factory);
        std::thread::spawn(move || {
            let mut state = ServiceState { factory: f, sessions: HashMap::new(), next_id: 0 };
            while let Ok(frame) = read_frame(&mut stream) {
                let req: Request = match serde_json::from_slice(&frame) {
                    Ok(r) => r,
                    Err(e) => {
                        let resp = Response::Error(format!("bad request frame: {e}"));
                        let _ = write_frame(&mut stream, &serde_json::to_vec(&resp).unwrap());
                        continue;
                    }
                };
                let shutdown = matches!(req, Request::Shutdown);
                let resp = state.handle(req);
                if write_frame(&mut stream, &serde_json::to_vec(&resp).unwrap()).is_err() {
                    break;
                }
                if shutdown {
                    break;
                }
            }
        });
    }
}

/// A TCP client for a remote compiler service.
#[derive(Debug)]
pub struct TcpClient {
    stream: TcpStream,
}

impl TcpClient {
    /// Connects to a remote service.
    ///
    /// # Errors
    /// Propagates connection failures as [`CgError::ServiceFailure`].
    pub fn connect(addr: &str, timeout: Duration) -> Result<TcpClient, CgError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| CgError::ServiceFailure(format!("connect {addr}: {e}")))?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| CgError::ServiceFailure(e.to_string()))?;
        Ok(TcpClient { stream })
    }

    /// Issues one request over the socket.
    ///
    /// # Errors
    /// [`CgError::ServiceFailure`] on I/O or timeout; [`CgError::Session`]
    /// for backend errors.
    pub fn call(&mut self, req: &Request) -> Result<Response, CgError> {
        let bytes = serde_json::to_vec(req).map_err(|e| CgError::ServiceFailure(e.to_string()))?;
        write_frame(&mut self.stream, &bytes)
            .map_err(|e| CgError::ServiceFailure(format!("send: {e}")))?;
        let frame = read_frame(&mut self.stream).map_err(|e| {
            if matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut) {
                cg_telemetry::global().timeouts.inc();
            }
            CgError::ServiceFailure(format!("recv: {e}"))
        })?;
        let resp: Response =
            serde_json::from_slice(&frame).map_err(|e| CgError::ServiceFailure(e.to_string()))?;
        match resp {
            Response::Error(e) => Err(CgError::Session(e)),
            ok => Ok(ok),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::ActionOutcome;

    /// A deliberately broken session for fault-tolerance tests: panics or
    /// hangs on command.
    struct FlakySession {
        panic_on_action: Option<usize>,
        hang_on_action: Option<usize>,
        steps: usize,
    }

    impl CompilationSession for FlakySession {
        fn action_spaces(&self) -> Vec<ActionSpaceInfo> {
            vec![ActionSpaceInfo { name: "flaky".into(), actions: vec!["a".into(); 8] }]
        }
        fn observation_spaces(&self) -> Vec<ObservationSpaceInfo> {
            vec![]
        }
        fn reward_spaces(&self) -> Vec<RewardSpaceInfo> {
            vec![]
        }
        fn init(&mut self, _b: &str, _s: usize) -> Result<(), String> {
            Ok(())
        }
        fn apply_action(&mut self, action: usize) -> Result<ActionOutcome, String> {
            if self.panic_on_action == Some(action) {
                panic!("simulated compiler crash");
            }
            if self.hang_on_action == Some(action) {
                std::thread::sleep(Duration::from_secs(3600));
            }
            self.steps += 1;
            Ok(ActionOutcome { end_of_episode: false, action_space_changed: false, changed: true })
        }
        fn observe(&mut self, _s: &str) -> Result<Observation, String> {
            Ok(Observation::Scalar(self.steps as f64))
        }
        fn fork(&self) -> Box<dyn CompilationSession> {
            Box::new(FlakySession {
                panic_on_action: self.panic_on_action,
                hang_on_action: self.hang_on_action,
                steps: self.steps,
            })
        }
    }

    fn flaky_factory(panic_on: Option<usize>, hang_on: Option<usize>) -> SessionFactory {
        Arc::new(move || {
            Box::new(FlakySession { panic_on_action: panic_on, hang_on_action: hang_on, steps: 0 })
        })
    }

    fn start(client: &ServiceClient) -> u64 {
        match client.call(Request::StartSession { benchmark: "x".into(), action_space: 0 }).unwrap()
        {
            Response::SessionStarted { session_id } => session_id,
            r => panic!("{r:?}"),
        }
    }

    #[test]
    fn panicking_session_is_isolated() {
        let client = ServiceClient::spawn(flaky_factory(Some(3), None), Duration::from_secs(5));
        let sid = start(&client);
        // Normal steps work.
        let r = client
            .call(Request::Step { session_id: sid, actions: vec![0, 1], observation_spaces: vec![] })
            .unwrap();
        assert!(matches!(r, Response::Stepped { .. }));
        // The crashing action yields an error, not a dead service.
        let e = client
            .call(Request::Step { session_id: sid, actions: vec![3], observation_spaces: vec![] })
            .unwrap_err();
        assert!(matches!(e, CgError::Session(_)));
        // The service is still alive for new sessions.
        assert!(matches!(client.call(Request::Ping).unwrap(), Response::Pong));
        let sid2 = start(&client);
        assert_ne!(sid, sid2);
    }

    #[test]
    fn hung_session_times_out_and_restarts() {
        let mut client =
            ServiceClient::spawn(flaky_factory(None, Some(2)), Duration::from_millis(100));
        let sid = start(&client);
        let e = client
            .call(Request::Step { session_id: sid, actions: vec![2], observation_spaces: vec![] })
            .unwrap_err();
        assert!(matches!(e, CgError::ServiceFailure(_)));
        // The retry wrapper restarts the service; Ping succeeds again.
        let r = client.call_with_retries(Request::Ping, 2).unwrap();
        assert!(matches!(r, Response::Pong));
        assert!(client.restarts() >= 1);
    }

    #[test]
    fn fork_duplicates_state() {
        let client = ServiceClient::spawn(flaky_factory(None, None), Duration::from_secs(5));
        let sid = start(&client);
        client
            .call(Request::Step { session_id: sid, actions: vec![0, 0], observation_spaces: vec![] })
            .unwrap();
        let forked = match client.call(Request::Fork { session_id: sid }).unwrap() {
            Response::Forked { session_id } => session_id,
            r => panic!("{r:?}"),
        };
        let obs = |sid| match client
            .call(Request::Step {
                session_id: sid,
                actions: vec![],
                observation_spaces: vec!["steps".into()],
            })
            .unwrap()
        {
            Response::Stepped { observations, .. } => observations[0].as_scalar().unwrap(),
            r => panic!("{r:?}"),
        };
        assert_eq!(obs(sid), obs(forked));
    }

    #[test]
    fn tcp_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || serve_tcp(listener, flaky_factory(None, None)));
        let mut client = TcpClient::connect(&addr, Duration::from_secs(5)).unwrap();
        assert!(matches!(client.call(&Request::Ping).unwrap(), Response::Pong));
        let sid = match client
            .call(&Request::StartSession { benchmark: "x".into(), action_space: 0 })
            .unwrap()
        {
            Response::SessionStarted { session_id } => session_id,
            r => panic!("{r:?}"),
        };
        let r = client
            .call(&Request::Step {
                session_id: sid,
                actions: vec![0],
                observation_spaces: vec!["steps".into()],
            })
            .unwrap();
        match r {
            Response::Stepped { observations, .. } => {
                assert_eq!(observations[0].as_scalar(), Some(1.0));
            }
            r => panic!("{r:?}"),
        }
        let _ = client.call(&Request::Shutdown);
    }
}
