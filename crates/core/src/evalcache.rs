//! Concurrent evaluation cache for pass-sequence search.
//!
//! Sequence-based searchers (random search, GA, MCTS) re-evaluate the same
//! `(benchmark, action-sequence)` pairs constantly: elites survive
//! generations unchanged, mutations share long prefixes with their parent,
//! and MCTS extends one prefix at a time. Because every pass is a
//! deterministic function of the module (a standing invariant enforced by
//! the `pass_properties` suite), an evaluation is a pure function of its
//! key — so caching is sound, and the cache-correctness suite verifies
//! byte-identical results against fresh evaluations.
//!
//! Two structures share one lock:
//!
//! * an **exact map** from `(benchmark, sequence-hash)` to the finished
//!   `(score, metric)` — repeat evaluations cost a hash lookup;
//! * a **prefix trie** per benchmark whose nodes hold
//!   [`EpisodeSnapshot`]s at interval boundaries — a novel sequence
//!   restores the deepest cached prefix (the `fork()`-style reuse of
//!   §III-B6, but across threads and searches) and only executes its
//!   novel suffix.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::env::EpisodeSnapshot;

/// Default bound on cached exact entries (and trie snapshots).
pub const DEFAULT_CAPACITY: usize = 100_000;

/// Default depth interval between prefix snapshots.
pub const DEFAULT_SNAPSHOT_INTERVAL: usize = 4;

/// A finished evaluation: the sequence it belongs to (kept to rule out
/// hash collisions) and its results.
#[derive(Debug, Clone)]
pub struct CachedEval {
    /// The exact action sequence this entry was computed for.
    pub actions: Vec<usize>,
    /// Episode reward of the sequence.
    pub score: f64,
    /// Reward metric after the last action.
    pub metric: f64,
}

#[derive(Default)]
struct TrieNode {
    children: HashMap<usize, TrieNode>,
    snapshot: Option<Arc<EpisodeSnapshot>>,
}

#[derive(Default)]
struct Inner {
    exact: HashMap<(String, u64), CachedEval>,
    trie: HashMap<String, TrieNode>,
    snapshots: usize,
}

/// The shared evaluation cache. All methods take `&self`; one mutex guards
/// both structures (operations are map/trie walks, orders of magnitude
/// cheaper than the pass pipelines they save, so a single lock does not
/// bottleneck the pool).
pub struct EvalCache {
    inner: Mutex<Inner>,
    capacity: usize,
    snapshot_interval: usize,
    enabled: bool,
}

impl Default for EvalCache {
    fn default() -> EvalCache {
        EvalCache::new(DEFAULT_CAPACITY)
    }
}

fn seq_hash(actions: &[usize]) -> u64 {
    // FNV-1a over the little-endian action words; stable across runs.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &a in actions {
        for b in (a as u64).to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

impl EvalCache {
    /// Creates a cache bounded to `capacity` exact entries and snapshots.
    pub fn new(capacity: usize) -> EvalCache {
        EvalCache {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
            snapshot_interval: DEFAULT_SNAPSHOT_INTERVAL,
            enabled: true,
        }
    }

    /// A cache that remembers nothing: every lookup misses and every
    /// insert is dropped. Used to measure how much work caching saves
    /// (`cg bench-pool`) under otherwise identical plumbing.
    pub fn disabled() -> EvalCache {
        let mut c = EvalCache::new(1);
        c.enabled = false;
        c
    }

    /// Overrides the prefix-snapshot interval (in actions).
    pub fn with_snapshot_interval(mut self, every: usize) -> EvalCache {
        self.snapshot_interval = every.max(1);
        self
    }

    /// Depth interval at which evaluators should deposit prefix snapshots.
    pub fn snapshot_interval(&self) -> usize {
        self.snapshot_interval
    }

    /// Looks up a finished evaluation. Counts a pool cache hit or miss.
    pub fn lookup(&self, benchmark: &str, actions: &[usize]) -> Option<CachedEval> {
        let tel = cg_telemetry::global();
        if !self.enabled {
            tel.pool.cache_misses.inc();
            return None;
        }
        let inner = self.inner.lock();
        match inner.exact.get(&(benchmark.to_string(), seq_hash(actions))) {
            Some(e) if e.actions == actions => {
                tel.pool.cache_hits.inc();
                // Parented under the caller's pool:job span, so a cached
                // outcome is visible (and explains the missing env spans)
                // when a job's trace is reconstructed.
                tel.trace.emit(
                    "cache:hit",
                    format!("{benchmark} depth {}", actions.len()),
                    std::time::Duration::ZERO,
                );
                Some(e.clone())
            }
            _ => {
                tel.pool.cache_misses.inc();
                None
            }
        }
    }

    /// Records a finished evaluation. At capacity the whole cache is
    /// dropped (generation-style eviction: cheap, and search workloads
    /// re-warm it within one population).
    pub fn insert(&self, benchmark: &str, actions: &[usize], score: f64, metric: f64) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.lock();
        if inner.exact.len() >= self.capacity {
            cg_telemetry::global().pool.evictions.inc();
            *inner = Inner::default();
        }
        inner.exact.insert(
            (benchmark.to_string(), seq_hash(actions)),
            CachedEval {
                actions: actions.to_vec(),
                score,
                metric,
            },
        );
    }

    /// The deepest cached snapshot along a *proper* prefix of `actions`
    /// (never the full sequence — that is the exact map's job). The caller
    /// records the pool prefix-hit telemetry once the snapshot actually
    /// restores.
    pub fn longest_prefix(
        &self,
        benchmark: &str,
        actions: &[usize],
    ) -> Option<(usize, Arc<EpisodeSnapshot>)> {
        let inner = self.inner.lock();
        let mut node = inner.trie.get(benchmark)?;
        let mut found: Option<(usize, Arc<EpisodeSnapshot>)> = None;
        for (depth, a) in actions.iter().enumerate() {
            if depth > 0 {
                if let Some(s) = &node.snapshot {
                    found = Some((depth, Arc::clone(s)));
                }
            }
            match node.children.get(a) {
                Some(next) => node = next,
                None => break,
            }
        }
        found
    }

    /// Deposits a prefix snapshot at the trie path of `snap.actions`.
    /// First writer wins (the pass determinism invariant makes duplicates
    /// byte-equivalent anyway). At capacity the trie is dropped and
    /// re-warmed, mirroring the exact map's eviction policy.
    pub fn store_snapshot(&self, snap: EpisodeSnapshot) {
        if !self.enabled || snap.actions.is_empty() {
            return;
        }
        let mut inner = self.inner.lock();
        if inner.snapshots >= self.capacity {
            cg_telemetry::global().pool.evictions.inc();
            inner.trie.clear();
            inner.snapshots = 0;
        }
        let mut node = inner.trie.entry(snap.benchmark.clone()).or_default();
        for &a in &snap.actions {
            node = node.children.entry(a).or_default();
        }
        if node.snapshot.is_none() {
            node.snapshot = Some(Arc::new(snap));
            inner.snapshots += 1;
        }
    }

    /// Number of exact entries (for tests and stats).
    pub fn len(&self) -> usize {
        self.inner.lock().exact.len()
    }

    /// Whether the exact map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of stored prefix snapshots (for tests and stats).
    pub fn snapshot_count(&self) -> usize {
        self.inner.lock().snapshots
    }

    /// Drops all cached entries and snapshots.
    pub fn clear(&self) {
        *self.inner.lock() = Inner::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(benchmark: &str, actions: Vec<usize>) -> EpisodeSnapshot {
        EpisodeSnapshot {
            benchmark: benchmark.into(),
            action_space_index: 0,
            actions,
            state: vec![1, 2, 3],
            prev_metric: 10.0,
            init_metric: 12.0,
            baseline_metric: None,
            episode_reward: 2.0,
        }
    }

    #[test]
    fn exact_roundtrip_and_miss() {
        let c = EvalCache::new(16);
        assert!(c.lookup("b", &[1, 2, 3]).is_none());
        c.insert("b", &[1, 2, 3], 5.0, 95.0);
        let hit = c.lookup("b", &[1, 2, 3]).unwrap();
        assert_eq!(hit.score, 5.0);
        assert_eq!(hit.metric, 95.0);
        assert!(c.lookup("b", &[1, 2]).is_none());
        assert!(c.lookup("other", &[1, 2, 3]).is_none());
    }

    #[test]
    fn longest_prefix_returns_deepest_proper_prefix() {
        let c = EvalCache::new(16);
        c.store_snapshot(snap("b", vec![1, 2]));
        c.store_snapshot(snap("b", vec![1, 2, 3, 4]));
        // Full sequence [1,2] is not a proper prefix of itself.
        assert!(c.longest_prefix("b", &[1, 2]).is_none());
        let (d, s) = c.longest_prefix("b", &[1, 2, 9]).unwrap();
        assert_eq!(d, 2);
        assert_eq!(s.actions, vec![1, 2]);
        let (d, s) = c.longest_prefix("b", &[1, 2, 3, 4, 5]).unwrap();
        assert_eq!(d, 4);
        assert_eq!(s.actions, vec![1, 2, 3, 4]);
        // Diverging first action: nothing to reuse.
        assert!(c.longest_prefix("b", &[7, 2, 3]).is_none());
    }

    #[test]
    fn capacity_overflow_clears_and_counts_eviction() {
        let c = EvalCache::new(2);
        c.insert("b", &[1], 1.0, 1.0);
        c.insert("b", &[2], 2.0, 2.0);
        c.insert("b", &[3], 3.0, 3.0); // trips the bound, drops 1 and 2
        assert!(c.lookup("b", &[1]).is_none());
        assert!(c.lookup("b", &[3]).is_some());
        assert!(c.len() <= 2);
    }

    #[test]
    fn hash_collisions_are_verified_by_sequence() {
        // Same hash is astronomically unlikely for these, but the equality
        // check must also reject a same-hash different-sequence entry;
        // simulate by checking lookup compares the stored actions.
        let c = EvalCache::new(16);
        c.insert("b", &[5, 6], 1.0, 1.0);
        assert!(c.lookup("b", &[6, 5]).is_none());
    }
}
