//! Environment wrappers (§III-C): composable mutations of the MDP —
//! episode time limits, benchmark iteration, action subsets, and derived
//! observation spaces.

use crate::env::{CompilerEnv, StepResult};
use crate::error::CgError;
use crate::space::Observation;

/// The minimal environment interface wrappers compose over.
pub trait Env: Send {
    /// Starts an episode.
    ///
    /// # Errors
    /// Propagates environment failures.
    fn reset(&mut self) -> Result<Observation, CgError>;

    /// Applies one action.
    ///
    /// # Errors
    /// Propagates environment failures.
    fn step(&mut self, action: usize) -> Result<StepResult, CgError>;

    /// Size of the action space.
    fn num_actions(&self) -> usize;

    /// Cumulative reward this episode.
    fn episode_reward(&self) -> f64;

    /// The current benchmark URI.
    fn benchmark(&self) -> String;

    /// Selects the benchmark for subsequent episodes.
    fn set_benchmark(&mut self, uri: &str);
}

impl Env for CompilerEnv {
    fn reset(&mut self) -> Result<Observation, CgError> {
        CompilerEnv::reset(self)
    }

    fn step(&mut self, action: usize) -> Result<StepResult, CgError> {
        CompilerEnv::step(self, action)
    }

    fn num_actions(&self) -> usize {
        self.action_space().len()
    }

    fn episode_reward(&self) -> f64 {
        CompilerEnv::episode_reward(self)
    }

    fn benchmark(&self) -> String {
        CompilerEnv::benchmark(self).to_string()
    }

    fn set_benchmark(&mut self, uri: &str) {
        CompilerEnv::set_benchmark(self, uri);
    }
}

/// Ends episodes after a fixed number of steps (phase ordering has no
/// natural terminal state; RL training needs one).
#[derive(Debug)]
pub struct TimeLimit<E> {
    env: E,
    limit: usize,
    steps: usize,
}

impl<E: Env> TimeLimit<E> {
    /// Wraps `env` with an episode limit of `limit` steps.
    pub fn new(env: E, limit: usize) -> TimeLimit<E> {
        TimeLimit {
            env,
            limit,
            steps: 0,
        }
    }

    /// The wrapped environment.
    pub fn inner(&mut self) -> &mut E {
        &mut self.env
    }
}

impl<E: Env> Env for TimeLimit<E> {
    fn reset(&mut self) -> Result<Observation, CgError> {
        self.steps = 0;
        self.env.reset()
    }

    fn step(&mut self, action: usize) -> Result<StepResult, CgError> {
        let mut r = self.env.step(action)?;
        self.steps += 1;
        if self.steps >= self.limit {
            r.done = true;
        }
        Ok(r)
    }

    fn num_actions(&self) -> usize {
        self.env.num_actions()
    }

    fn episode_reward(&self) -> f64 {
        self.env.episode_reward()
    }

    fn benchmark(&self) -> String {
        self.env.benchmark()
    }

    fn set_benchmark(&mut self, uri: &str) {
        self.env.set_benchmark(uri);
    }
}

/// Cycles over a fixed list of benchmarks, advancing on every `reset()` —
/// the training-loop wrapper of Listing 2.
#[derive(Debug)]
pub struct CycleOverBenchmarks<E> {
    env: E,
    benchmarks: Vec<String>,
    next: usize,
}

impl<E: Env> CycleOverBenchmarks<E> {
    /// Wraps `env` to cycle over `benchmarks`.
    ///
    /// # Panics
    /// Panics if `benchmarks` is empty.
    pub fn new(env: E, benchmarks: Vec<String>) -> CycleOverBenchmarks<E> {
        assert!(!benchmarks.is_empty(), "need at least one benchmark");
        CycleOverBenchmarks {
            env,
            benchmarks,
            next: 0,
        }
    }
}

impl<E: Env> Env for CycleOverBenchmarks<E> {
    fn reset(&mut self) -> Result<Observation, CgError> {
        let uri = self.benchmarks[self.next % self.benchmarks.len()].clone();
        self.next += 1;
        self.env.set_benchmark(&uri);
        self.env.reset()
    }

    fn step(&mut self, action: usize) -> Result<StepResult, CgError> {
        self.env.step(action)
    }

    fn num_actions(&self) -> usize {
        self.env.num_actions()
    }

    fn episode_reward(&self) -> f64 {
        self.env.episode_reward()
    }

    fn benchmark(&self) -> String {
        self.env.benchmark()
    }

    fn set_benchmark(&mut self, uri: &str) {
        self.env.set_benchmark(uri);
    }
}

/// Restricts the action space to a subset of actions (by inner index),
/// renumbering them densely — the "subset of command line flags" wrapper.
#[derive(Debug)]
pub struct ActionSubset<E> {
    env: E,
    indices: Vec<usize>,
}

impl<E: Env> ActionSubset<E> {
    /// Wraps `env`, exposing only `indices` (inner action numbers).
    pub fn new(env: E, indices: Vec<usize>) -> ActionSubset<E> {
        ActionSubset { env, indices }
    }
}

impl<E: Env> Env for ActionSubset<E> {
    fn reset(&mut self) -> Result<Observation, CgError> {
        self.env.reset()
    }

    fn step(&mut self, action: usize) -> Result<StepResult, CgError> {
        let inner = *self
            .indices
            .get(action)
            .ok_or_else(|| CgError::Unknown(format!("subset action {action}")))?;
        self.env.step(inner)
    }

    fn num_actions(&self) -> usize {
        self.indices.len()
    }

    fn episode_reward(&self) -> f64 {
        self.env.episode_reward()
    }

    fn benchmark(&self) -> String {
        self.env.benchmark()
    }

    fn set_benchmark(&mut self, uri: &str) {
        self.env.set_benchmark(uri);
    }
}

/// Derived observation space: concatenates the wrapped environment's integer
/// observation with a histogram of the agent's previous actions — the
/// Autophase paper's state representation, used by the RL experiments
/// (§VII-G, §VII-I).
#[derive(Debug)]
pub struct ConcatActionHistogram<E> {
    env: E,
    histogram: Vec<i64>,
}

impl<E: Env> ConcatActionHistogram<E> {
    /// Wraps `env`.
    pub fn new(env: E) -> ConcatActionHistogram<E> {
        let n = env.num_actions();
        ConcatActionHistogram {
            env,
            histogram: vec![0; n],
        }
    }

    fn concat(&self, obs: Observation) -> Result<Observation, CgError> {
        match obs {
            Observation::IntVector(mut v) => {
                v.extend_from_slice(&self.histogram);
                Ok(Observation::IntVector(v))
            }
            other => Err(CgError::Usage(format!(
                "ConcatActionHistogram needs an integer-vector observation, got {other:?}"
            ))),
        }
    }
}

impl<E: Env> Env for ConcatActionHistogram<E> {
    fn reset(&mut self) -> Result<Observation, CgError> {
        self.histogram.iter_mut().for_each(|x| *x = 0);
        let obs = self.env.reset()?;
        self.concat(obs)
    }

    fn step(&mut self, action: usize) -> Result<StepResult, CgError> {
        let mut r = self.env.step(action)?;
        if action < self.histogram.len() {
            self.histogram[action] += 1;
        }
        r.observation = self.concat(r.observation)?;
        Ok(r)
    }

    fn num_actions(&self) -> usize {
        self.env.num_actions()
    }

    fn episode_reward(&self) -> f64 {
        self.env.episode_reward()
    }

    fn benchmark(&self) -> String {
        self.env.benchmark()
    }

    fn set_benchmark(&mut self, uri: &str) {
        self.env.set_benchmark(uri);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::make;

    fn llvm_env(benchmark: &str) -> CompilerEnv {
        let mut e = make("llvm-v0").unwrap();
        e.set_benchmark(benchmark);
        e
    }

    #[test]
    fn time_limit_terminates() {
        let mut env = TimeLimit::new(llvm_env("benchmark://cbench-v1/crc32"), 3);
        env.reset().unwrap();
        assert!(!env.step(0).unwrap().done);
        assert!(!env.step(1).unwrap().done);
        assert!(env.step(2).unwrap().done);
        // Reset clears the counter.
        env.reset().unwrap();
        assert!(!env.step(0).unwrap().done);
    }

    #[test]
    fn cycle_over_benchmarks_advances_on_reset() {
        let benches = vec![
            "benchmark://cbench-v1/crc32".to_string(),
            "benchmark://cbench-v1/sha".to_string(),
        ];
        let mut env = CycleOverBenchmarks::new(llvm_env("benchmark://cbench-v1/crc32"), benches);
        env.reset().unwrap();
        assert!(env.benchmark().ends_with("crc32"));
        env.reset().unwrap();
        assert!(env.benchmark().ends_with("sha"));
        env.reset().unwrap();
        assert!(env.benchmark().ends_with("crc32"));
    }

    #[test]
    fn action_subset_remaps() {
        let inner = llvm_env("benchmark://cbench-v1/crc32");
        let m2r = inner.action_space().index_of("mem2reg").unwrap();
        let mut env = ActionSubset::new(inner, vec![m2r]);
        assert_eq!(env.num_actions(), 1);
        env.reset().unwrap();
        let r = env.step(0).unwrap();
        assert!(r.reward > 0.0);
        assert!(env.step(1).is_err());
    }

    #[test]
    fn histogram_concat_grows_observation() {
        let inner = llvm_env("benchmark://cbench-v1/crc32");
        let n = inner.action_space().len();
        let mut env = ConcatActionHistogram::new(inner);
        let obs = env.reset().unwrap();
        assert_eq!(obs.as_int_vector().unwrap().len(), 56 + n);
        let r = env.step(5).unwrap();
        let v = r.observation.as_int_vector().unwrap();
        assert_eq!(v[56 + 5], 1, "action 5 counted");
    }

    #[test]
    fn wrappers_compose() {
        // The Listing 2 stack: TimeLimit(CycleOverBenchmarks(env)).
        let benches: Vec<String> = cg_datasets::dataset("npb-v0")
            .unwrap()
            .benchmark_paths(3)
            .into_iter()
            .map(|p| format!("benchmark://npb-v0/{p}"))
            .collect();
        let mut env = TimeLimit::new(
            CycleOverBenchmarks::new(llvm_env("benchmark://cbench-v1/crc32"), benches),
            2,
        );
        env.reset().unwrap();
        assert!(env.benchmark().contains("npb"));
        env.step(0).unwrap();
        assert!(env.step(1).unwrap().done);
    }
}
