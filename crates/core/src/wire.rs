//! The `CGB1` binary wire codec: versioned, correlation-id-stamped frames
//! carrying [`Request`]/[`Response`] bodies in a compact tag-based binary
//! encoding, negotiated per connection with transparent fallback to the
//! legacy JSON frames for old peers.
//!
//! # Frame layout
//!
//! Every binary frame rides inside the existing `len ‖ payload` transport
//! framing (see `service::write_frame`) and starts with a 4-byte magic:
//!
//! ```text
//! +----------------+------+-------------------+----------------+
//! | C9 47 42 31    | kind | correlation (u64) | body ...       |
//! | "ÉGB1" magic   | u8   | little-endian     | kind-specific  |
//! +----------------+------+-------------------+----------------+
//! ```
//!
//! The magic's first byte `0xC9` followed by ASCII `G` is deliberately
//! invalid UTF-8: an old JSON-only server that tries `str::from_utf8` on a
//! binary frame fails immediately and answers its usual typed
//! `Response::Error("bad request frame: …")` JSON frame — which a
//! negotiating client interprets as "this peer speaks JSON only" and falls
//! back transparently. Conversely, legacy JSON frames always begin with `{`
//! or `"`, so a binary-capable server distinguishes the two codecs per
//! frame from the first byte and serves old JSON clients unchanged.
//!
//! # Frame kinds
//!
//! * `0` **Hello** — client → server codec negotiation probe (body: one
//!   protocol-version byte). A binary-capable server answers `HelloAck`;
//!   anything else (a JSON error frame, EOF) means "JSON-only peer".
//! * `1` **HelloAck** — server → client negotiation accept (body: the
//!   server's protocol version byte).
//! * `2` **Request** — body: metadata flags + optional trace context and
//!   tenant identity (carried natively instead of the JSON `__trace` /
//!   `__tenant` payload entries) + a tag-encoded [`Request`].
//! * `3` **Response** — body: a tag-encoded [`Response`]. The correlation
//!   id echoes the request's, so a pipelining client can keep many
//!   requests in flight on one socket and demux replies out of order.
//!
//! # Body encoding
//!
//! Tag-based enums (one leading byte per variant), little-endian
//! fixed-width scalars, `u32`-length-prefixed strings and byte slices, and
//! observation vectors written as raw element runs (`i64`/`f32` × count)
//! that decode with a single `memcpy` instead of a JSON number parse per
//! element. Decoding reads borrowed `&[u8]`/`&str` views out of the frame
//! buffer ([`WireReader`]) and copies only at the owned
//! `Request`/`Response` construction edge; encoding appends into a
//! caller-owned scratch buffer reused across frames (no per-frame `Vec`
//! churn).

use cg_telemetry::TraceContext;
use serde::value::Value;
use serde::{Deserialize, Serialize};

use crate::budget::{BudgetKind, BudgetViolation, ResourceBudget};
use crate::space::{
    ActionSpaceInfo, Observation, ObservationKind, ObservationSpaceInfo, ProgramGraph,
    RewardSpaceInfo,
};
use cg_llvm::observation::{EdgeKind, GraphNode, NodeKind};

use crate::service::{Request, Response};

/// The frame magic: `0xC9 'G' 'B' '1'`. Invalid UTF-8 by construction (a
/// `0xC9` lead byte must be followed by a continuation byte, `'G'` is not),
/// so legacy JSON servers reject binary frames cleanly — the negotiation
/// fallback signal.
pub const WIRE_MAGIC: [u8; 4] = [0xC9, b'G', b'B', b'1'];

/// Protocol version carried in Hello/HelloAck bodies.
pub const WIRE_VERSION: u8 = 1;

const KIND_HELLO: u8 = 0;
const KIND_HELLO_ACK: u8 = 1;
const KIND_REQUEST: u8 = 2;
const KIND_RESPONSE: u8 = 3;

/// Fixed frame header: magic + kind byte + correlation id.
const HEADER_LEN: usize = 4 + 1 + 8;

/// Which codec a connection speaks. Negotiated per connection; the JSON
/// codec is the legacy length-prefixed `serde_json` frame format every
/// peer understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireCodec {
    /// Legacy JSON frames (`{"step":{...}}`).
    Json,
    /// `CGB1` binary frames.
    Binary,
}

impl WireCodec {
    /// Lowercase name, for telemetry keys and bench reports.
    pub fn name(self) -> &'static str {
        match self {
            WireCodec::Json => "json",
            WireCodec::Binary => "binary",
        }
    }
}

impl std::str::FromStr for WireCodec {
    type Err = String;

    fn from_str(s: &str) -> Result<WireCodec, String> {
        match s {
            "json" => Ok(WireCodec::Json),
            "binary" => Ok(WireCodec::Binary),
            other => Err(format!("unknown codec {other:?} (expected json|binary)")),
        }
    }
}

/// A binary-codec decode failure. Carried in-band back to the peer as a
/// typed `Response::Error`, never a dropped connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn err<T>(msg: impl Into<String>) -> Result<T, WireError> {
    Err(WireError(msg.into()))
}

/// Whether a received frame is a `CGB1` binary frame (vs a legacy JSON
/// frame, which always starts with `{` or `"`).
pub fn is_binary_frame(frame: &[u8]) -> bool {
    frame.len() >= 4 && frame[..4] == WIRE_MAGIC
}

// ---------------------------------------------------------------------------
// Zero-copy reader
// ---------------------------------------------------------------------------

/// A bounds-checked cursor over a received frame, yielding borrowed views
/// (`&'a str`, `&'a [u8]`) into the frame buffer — decoding copies nothing
/// until an owned `Request`/`Response` is constructed from the views.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wraps a frame (or frame body) for decoding.
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return err(format!(
                "truncated frame: wanted {n} bytes at offset {}, {} left",
                self.pos,
                self.remaining()
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A length-prefixed byte slice, borrowed from the frame.
    fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// A length-prefixed UTF-8 string, borrowed from the frame.
    fn str(&mut self) -> Result<&'a str, WireError> {
        let raw = self.bytes()?;
        std::str::from_utf8(raw).map_err(|e| WireError(format!("invalid UTF-8 in string: {e}")))
    }

    /// A raw `i64` run: count-prefixed, one `memcpy`-friendly pass.
    /// A width-tagged `i64` run: count, a width byte (1|2|4|8), then the
    /// values as sign-extended little-endian integers of that width. Most
    /// feature vectors (instruction counts, Autophase) are small counts, so
    /// narrowing beats a fixed 8-byte lane by 4x on typical payloads.
    fn i64_run(&mut self) -> Result<Vec<i64>, WireError> {
        let n = self.u32()? as usize;
        let width = self.u8()? as usize;
        if !matches!(width, 1 | 2 | 4 | 8) {
            return err(format!("bad int run width {width}"));
        }
        let raw = self.take(
            n.checked_mul(width)
                .ok_or(WireError("run overflow".into()))?,
        )?;
        Ok(raw
            .chunks_exact(width)
            .map(|c| match width {
                1 => c[0] as i8 as i64,
                2 => i16::from_le_bytes(c.try_into().unwrap()) as i64,
                4 => i32::from_le_bytes(c.try_into().unwrap()) as i64,
                _ => i64::from_le_bytes(c.try_into().unwrap()),
            })
            .collect())
    }

    /// A raw `f32` run.
    fn f32_run(&mut self) -> Result<Vec<f32>, WireError> {
        let n = self.u32()? as usize;
        let raw = self.take(n.checked_mul(4).ok_or(WireError("run overflow".into()))?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// A count-prefixed run of `u64`-encoded action indices.
    fn action_run(&mut self) -> Result<Vec<usize>, WireError> {
        let n = self.u32()? as usize;
        let raw = self.take(n.checked_mul(8).ok_or(WireError("run overflow".into()))?)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()) as usize)
            .collect())
    }

    fn str_list(&mut self) -> Result<Vec<String>, WireError> {
        let n = self.u32()? as usize;
        // Cap the pre-allocation by what the frame could possibly hold (one
        // length prefix per entry) so a hostile count cannot OOM the server.
        let mut out = Vec::with_capacity(n.min(self.remaining() / 4 + 1));
        for _ in 0..n {
            out.push(self.str()?.to_owned());
        }
        Ok(out)
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            t => err(format!("bad option tag {t}")),
        }
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => err(format!("bad bool {t}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Writer primitives (append into a reusable scratch buffer)
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(buf: &mut Vec<u8>, v: &[u8]) {
    put_u32(buf, v.len() as u32);
    buf.extend_from_slice(v);
}

fn put_str(buf: &mut Vec<u8>, v: &str) {
    put_bytes(buf, v.as_bytes());
}

fn put_i64_run(buf: &mut Vec<u8>, v: &[i64]) {
    put_u32(buf, v.len() as u32);
    // Narrowest width that fits every value; see `WireReader::i64_run`.
    let width: u8 = v
        .iter()
        .map(|&x| {
            if i64::from(x as i8) == x {
                1
            } else if i64::from(x as i16) == x {
                2
            } else if i64::from(x as i32) == x {
                4
            } else {
                8
            }
        })
        .max()
        .unwrap_or(1);
    buf.push(width);
    buf.reserve(v.len() * width as usize);
    for x in v {
        buf.extend_from_slice(&x.to_le_bytes()[..width as usize]);
    }
}

fn put_f32_run(buf: &mut Vec<u8>, v: &[f32]) {
    put_u32(buf, v.len() as u32);
    buf.reserve(v.len() * 4);
    for x in v {
        buf.extend_from_slice(&x.to_le_bytes());
    }
}

fn put_action_run(buf: &mut Vec<u8>, v: &[usize]) {
    put_u32(buf, v.len() as u32);
    buf.reserve(v.len() * 8);
    for x in v {
        buf.extend_from_slice(&(*x as u64).to_le_bytes());
    }
}

fn put_str_list(buf: &mut Vec<u8>, v: &[String]) {
    put_u32(buf, v.len() as u32);
    for s in v {
        put_str(buf, s);
    }
}

fn put_opt_u64(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => buf.push(0),
        Some(x) => {
            buf.push(1);
            put_u64(buf, x);
        }
    }
}

fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(u8::from(v));
}

fn header(buf: &mut Vec<u8>, kind: u8, corr: u64) {
    buf.clear();
    buf.extend_from_slice(&WIRE_MAGIC);
    buf.push(kind);
    put_u64(buf, corr);
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

/// A decoded frame header with its borrowed body.
pub enum Frame<'a> {
    /// Client negotiation probe.
    Hello {
        /// Peer protocol version.
        version: u8,
    },
    /// Server negotiation accept.
    HelloAck {
        /// Peer protocol version.
        version: u8,
    },
    /// A request body, not yet decoded.
    Request {
        /// Correlation id to echo in the response frame.
        corr: u64,
        /// Tag-encoded request body.
        body: &'a [u8],
    },
    /// A response body, not yet decoded.
    Response {
        /// The request's correlation id.
        corr: u64,
        /// Tag-encoded response body.
        body: &'a [u8],
    },
}

/// Splits a binary frame into its kind, correlation id, and body.
///
/// # Errors
/// [`WireError`] when the magic, kind, or header length is invalid.
pub fn decode_frame(frame: &[u8]) -> Result<Frame<'_>, WireError> {
    if !is_binary_frame(frame) {
        return err("not a CGB1 frame");
    }
    if frame.len() < HEADER_LEN {
        return err("truncated frame header");
    }
    let kind = frame[4];
    let corr = u64::from_le_bytes(frame[5..13].try_into().unwrap());
    let body = &frame[HEADER_LEN..];
    match kind {
        KIND_HELLO => Ok(Frame::Hello {
            version: body.first().copied().unwrap_or(0),
        }),
        KIND_HELLO_ACK => Ok(Frame::HelloAck {
            version: body.first().copied().unwrap_or(0),
        }),
        KIND_REQUEST => Ok(Frame::Request { corr, body }),
        KIND_RESPONSE => Ok(Frame::Response { corr, body }),
        k => err(format!("unknown frame kind {k}")),
    }
}

/// Encodes a negotiation Hello into `buf` (cleared first).
pub fn encode_hello(buf: &mut Vec<u8>) {
    header(buf, KIND_HELLO, 0);
    buf.push(WIRE_VERSION);
}

/// Encodes a negotiation HelloAck into `buf` (cleared first).
pub fn encode_hello_ack(buf: &mut Vec<u8>) {
    header(buf, KIND_HELLO_ACK, 0);
    buf.push(WIRE_VERSION);
}

// ---------------------------------------------------------------------------
// Request bodies
// ---------------------------------------------------------------------------

const REQ_PING: u8 = 0;
const REQ_GET_SPACES: u8 = 1;
const REQ_START_SESSION: u8 = 2;
const REQ_STEP: u8 = 3;
const REQ_FORK: u8 = 4;
const REQ_END_SESSION: u8 = 5;
const REQ_RESTORE_SESSION: u8 = 6;
const REQ_EXPORT_STATE: u8 = 7;
const REQ_CONFIGURE: u8 = 8;
const REQ_SHUTDOWN: u8 = 9;

/// Request metadata flag: a trace context follows.
const META_TRACE: u8 = 1;
/// Request metadata flag: a tenant identity follows.
const META_TENANT: u8 = 2;

/// A decoded binary request frame: the request plus the natively-carried
/// transport metadata (the binary codec's equivalent of the JSON codec's
/// `__trace` / `__tenant` payload entries).
pub struct RequestFrame {
    /// Correlation id to echo in the response.
    pub corr: u64,
    /// The request.
    pub req: Request,
    /// The caller's trace context, if stamped.
    pub ctx: Option<TraceContext>,
    /// The caller's tenant identity, if stamped.
    pub tenant: Option<String>,
}

/// Encodes a request frame into `buf` (cleared first), stamping the given
/// trace context and tenant identity natively into the metadata section.
pub fn encode_request_frame(
    buf: &mut Vec<u8>,
    corr: u64,
    req: &Request,
    ctx: Option<TraceContext>,
    tenant: Option<&str>,
) {
    let timer = cg_telemetry::Timer::start();
    header(buf, KIND_REQUEST, corr);
    let mut flags = 0u8;
    if ctx.is_some() {
        flags |= META_TRACE;
    }
    if tenant.is_some() {
        flags |= META_TENANT;
    }
    buf.push(flags);
    if let Some(ctx) = ctx {
        put_u64(buf, ctx.trace_id);
        put_u64(buf, ctx.span_id);
    }
    if let Some(tenant) = tenant {
        put_str(buf, tenant);
    }
    match req {
        Request::Ping => buf.push(REQ_PING),
        Request::GetSpaces => buf.push(REQ_GET_SPACES),
        Request::StartSession {
            benchmark,
            action_space,
        } => {
            buf.push(REQ_START_SESSION);
            put_str(buf, benchmark);
            put_u64(buf, *action_space as u64);
        }
        Request::Step {
            session_id,
            actions,
            observation_spaces,
        } => {
            buf.push(REQ_STEP);
            put_u64(buf, *session_id);
            put_action_run(buf, actions);
            put_str_list(buf, observation_spaces);
        }
        Request::Fork { session_id } => {
            buf.push(REQ_FORK);
            put_u64(buf, *session_id);
        }
        Request::EndSession { session_id } => {
            buf.push(REQ_END_SESSION);
            put_u64(buf, *session_id);
        }
        Request::RestoreSession {
            benchmark,
            action_space,
            actions,
            state,
        } => {
            buf.push(REQ_RESTORE_SESSION);
            put_str(buf, benchmark);
            put_u64(buf, *action_space as u64);
            put_action_run(buf, actions);
            put_bytes(buf, state);
        }
        Request::ExportState { session_id } => {
            buf.push(REQ_EXPORT_STATE);
            put_u64(buf, *session_id);
        }
        Request::Configure { budget } => {
            buf.push(REQ_CONFIGURE);
            put_budget(buf, budget);
        }
        Request::Shutdown => buf.push(REQ_SHUTDOWN),
    }
    cg_telemetry::global()
        .wire
        .encode_wall
        .record_duration(timer.elapsed());
}

/// Decodes a request frame body (the part after the frame header).
///
/// # Errors
/// [`WireError`] on any malformed or truncated body; the server answers it
/// in band as a typed `Response::Error`.
pub fn decode_request_body(corr: u64, body: &[u8]) -> Result<RequestFrame, WireError> {
    let timer = cg_telemetry::Timer::start();
    let mut r = WireReader::new(body);
    let flags = r.u8()?;
    let ctx = if flags & META_TRACE != 0 {
        Some(TraceContext {
            trace_id: r.u64()?,
            span_id: r.u64()?,
        })
    } else {
        None
    };
    let tenant = if flags & META_TENANT != 0 {
        Some(r.str()?.to_owned())
    } else {
        None
    };
    let req = match r.u8()? {
        REQ_PING => Request::Ping,
        REQ_GET_SPACES => Request::GetSpaces,
        REQ_START_SESSION => Request::StartSession {
            benchmark: r.str()?.to_owned(),
            action_space: r.u64()? as usize,
        },
        REQ_STEP => Request::Step {
            session_id: r.u64()?,
            actions: r.action_run()?,
            observation_spaces: r.str_list()?,
        },
        REQ_FORK => Request::Fork {
            session_id: r.u64()?,
        },
        REQ_END_SESSION => Request::EndSession {
            session_id: r.u64()?,
        },
        REQ_RESTORE_SESSION => Request::RestoreSession {
            benchmark: r.str()?.to_owned(),
            action_space: r.u64()? as usize,
            actions: r.action_run()?,
            state: r.bytes()?.to_owned(),
        },
        REQ_EXPORT_STATE => Request::ExportState {
            session_id: r.u64()?,
        },
        REQ_CONFIGURE => Request::Configure {
            budget: read_budget(&mut r)?,
        },
        REQ_SHUTDOWN => Request::Shutdown,
        t => return err(format!("unknown request tag {t}")),
    };
    if r.remaining() != 0 {
        return err(format!("{} trailing bytes after request", r.remaining()));
    }
    cg_telemetry::global()
        .wire
        .decode_wall
        .record_duration(timer.elapsed());
    Ok(RequestFrame {
        corr,
        req,
        ctx,
        tenant,
    })
}

// ---------------------------------------------------------------------------
// Response bodies
// ---------------------------------------------------------------------------

const RESP_PONG: u8 = 0;
const RESP_SPACES: u8 = 1;
const RESP_SESSION_STARTED: u8 = 2;
const RESP_STEPPED: u8 = 3;
const RESP_FORKED: u8 = 4;
const RESP_OK: u8 = 5;
const RESP_STATE: u8 = 6;
const RESP_BUDGET: u8 = 7;
const RESP_OVERLOADED: u8 = 8;
const RESP_ERROR: u8 = 9;
const RESP_FATAL: u8 = 10;

const OBS_TEXT: u8 = 0;
const OBS_INT_VECTOR: u8 = 1;
const OBS_FLOAT_VECTOR: u8 = 2;
const OBS_SCALAR: u8 = 3;
const OBS_GRAPH: u8 = 4;
const OBS_BYTES: u8 = 5;

/// Encodes a response frame into `buf` (cleared first), echoing the
/// request's correlation id.
pub fn encode_response_frame(buf: &mut Vec<u8>, corr: u64, resp: &Response) {
    let timer = cg_telemetry::Timer::start();
    header(buf, KIND_RESPONSE, corr);
    match resp {
        Response::Pong => buf.push(RESP_PONG),
        Response::Spaces {
            action_spaces,
            observation_spaces,
            reward_spaces,
        } => {
            buf.push(RESP_SPACES);
            put_u32(buf, action_spaces.len() as u32);
            for s in action_spaces {
                put_str(buf, &s.name);
                put_str_list(buf, &s.actions);
            }
            put_u32(buf, observation_spaces.len() as u32);
            for s in observation_spaces {
                put_str(buf, &s.name);
                buf.push(obs_kind_tag(s.kind));
                put_bool(buf, s.deterministic);
                put_bool(buf, s.platform_dependent);
            }
            put_u32(buf, reward_spaces.len() as u32);
            for s in reward_spaces {
                put_str(buf, &s.name);
                put_str(buf, &s.metric);
                put_f64(buf, s.sign);
                match &s.baseline {
                    None => buf.push(0),
                    Some(b) => {
                        buf.push(1);
                        put_str(buf, b);
                    }
                }
                put_bool(buf, s.deterministic);
            }
        }
        Response::SessionStarted { session_id } => {
            buf.push(RESP_SESSION_STARTED);
            put_u64(buf, *session_id);
        }
        Response::Stepped {
            end_of_episode,
            changed,
            observations,
        } => {
            buf.push(RESP_STEPPED);
            put_bool(buf, *end_of_episode);
            put_bool(buf, *changed);
            put_u32(buf, observations.len() as u32);
            for obs in observations {
                put_observation(buf, obs);
            }
        }
        Response::Forked { session_id } => {
            buf.push(RESP_FORKED);
            put_u64(buf, *session_id);
        }
        Response::Ok => buf.push(RESP_OK),
        Response::State { state } => {
            buf.push(RESP_STATE);
            match state {
                None => buf.push(0),
                Some(s) => {
                    buf.push(1);
                    put_bytes(buf, s);
                }
            }
        }
        Response::Budget(v) => {
            buf.push(RESP_BUDGET);
            buf.push(match v.kind {
                BudgetKind::Wall => 0,
                BudgetKind::Growth => 1,
            });
            put_u64(buf, v.limit);
            put_u64(buf, v.observed);
            put_str(buf, &v.detail);
        }
        Response::Overloaded {
            retry_after_ms,
            reason,
        } => {
            buf.push(RESP_OVERLOADED);
            put_u64(buf, *retry_after_ms);
            put_str(buf, reason);
        }
        Response::Error(e) => {
            buf.push(RESP_ERROR);
            put_str(buf, e);
        }
        Response::Fatal(e) => {
            buf.push(RESP_FATAL);
            put_str(buf, e);
        }
    }
    cg_telemetry::global()
        .wire
        .encode_wall
        .record_duration(timer.elapsed());
}

/// Decodes a response frame body (the part after the frame header).
///
/// # Errors
/// [`WireError`] on any malformed or truncated body.
pub fn decode_response_body(body: &[u8]) -> Result<Response, WireError> {
    let timer = cg_telemetry::Timer::start();
    let mut r = WireReader::new(body);
    let resp = match r.u8()? {
        RESP_PONG => Response::Pong,
        RESP_SPACES => {
            let n = r.u32()? as usize;
            let mut action_spaces = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                action_spaces.push(ActionSpaceInfo {
                    name: r.str()?.to_owned(),
                    actions: r.str_list()?,
                });
            }
            let n = r.u32()? as usize;
            let mut observation_spaces = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                observation_spaces.push(ObservationSpaceInfo {
                    name: r.str()?.to_owned(),
                    kind: obs_kind_from_tag(r.u8()?)?,
                    deterministic: r.bool()?,
                    platform_dependent: r.bool()?,
                });
            }
            let n = r.u32()? as usize;
            let mut reward_spaces = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                reward_spaces.push(RewardSpaceInfo {
                    name: r.str()?.to_owned(),
                    metric: r.str()?.to_owned(),
                    sign: r.f64()?,
                    baseline: match r.u8()? {
                        0 => None,
                        1 => Some(r.str()?.to_owned()),
                        t => return err(format!("bad option tag {t}")),
                    },
                    deterministic: r.bool()?,
                });
            }
            Response::Spaces {
                action_spaces,
                observation_spaces,
                reward_spaces,
            }
        }
        RESP_SESSION_STARTED => Response::SessionStarted {
            session_id: r.u64()?,
        },
        RESP_STEPPED => {
            let end_of_episode = r.bool()?;
            let changed = r.bool()?;
            let n = r.u32()? as usize;
            let mut observations = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                observations.push(read_observation(&mut r)?);
            }
            Response::Stepped {
                end_of_episode,
                changed,
                observations,
            }
        }
        RESP_FORKED => Response::Forked {
            session_id: r.u64()?,
        },
        RESP_OK => Response::Ok,
        RESP_STATE => Response::State {
            state: match r.u8()? {
                0 => None,
                1 => Some(r.bytes()?.to_owned()),
                t => return err(format!("bad option tag {t}")),
            },
        },
        RESP_BUDGET => Response::Budget(BudgetViolation {
            kind: match r.u8()? {
                0 => BudgetKind::Wall,
                1 => BudgetKind::Growth,
                t => return err(format!("bad budget kind {t}")),
            },
            limit: r.u64()?,
            observed: r.u64()?,
            detail: r.str()?.to_owned(),
        }),
        RESP_OVERLOADED => Response::Overloaded {
            retry_after_ms: r.u64()?,
            reason: r.str()?.to_owned(),
        },
        RESP_ERROR => Response::Error(r.str()?.to_owned()),
        RESP_FATAL => Response::Fatal(r.str()?.to_owned()),
        t => return err(format!("unknown response tag {t}")),
    };
    if r.remaining() != 0 {
        return err(format!("{} trailing bytes after response", r.remaining()));
    }
    cg_telemetry::global()
        .wire
        .decode_wall
        .record_duration(timer.elapsed());
    Ok(resp)
}

fn obs_kind_tag(kind: ObservationKind) -> u8 {
    match kind {
        ObservationKind::Text => OBS_TEXT,
        ObservationKind::IntVector => OBS_INT_VECTOR,
        ObservationKind::FloatVector => OBS_FLOAT_VECTOR,
        ObservationKind::Scalar => OBS_SCALAR,
        ObservationKind::Graph => OBS_GRAPH,
        ObservationKind::Bytes => OBS_BYTES,
    }
}

fn obs_kind_from_tag(tag: u8) -> Result<ObservationKind, WireError> {
    Ok(match tag {
        OBS_TEXT => ObservationKind::Text,
        OBS_INT_VECTOR => ObservationKind::IntVector,
        OBS_FLOAT_VECTOR => ObservationKind::FloatVector,
        OBS_SCALAR => ObservationKind::Scalar,
        OBS_GRAPH => ObservationKind::Graph,
        OBS_BYTES => ObservationKind::Bytes,
        t => return err(format!("unknown observation kind {t}")),
    })
}

fn put_observation(buf: &mut Vec<u8>, obs: &Observation) {
    match obs {
        Observation::Text(t) => {
            buf.push(OBS_TEXT);
            put_str(buf, t);
        }
        Observation::IntVector(v) => {
            buf.push(OBS_INT_VECTOR);
            put_i64_run(buf, v);
        }
        Observation::FloatVector(v) => {
            buf.push(OBS_FLOAT_VECTOR);
            put_f32_run(buf, v);
        }
        Observation::Scalar(x) => {
            buf.push(OBS_SCALAR);
            put_f64(buf, *x);
        }
        Observation::Graph(g) => {
            buf.push(OBS_GRAPH);
            put_graph(buf, g);
        }
        Observation::Bytes(b) => {
            buf.push(OBS_BYTES);
            put_bytes(buf, b);
        }
    }
}

fn read_observation(r: &mut WireReader<'_>) -> Result<Observation, WireError> {
    Ok(match r.u8()? {
        OBS_TEXT => Observation::Text(r.str()?.to_owned()),
        OBS_INT_VECTOR => Observation::IntVector(r.i64_run()?),
        OBS_FLOAT_VECTOR => Observation::FloatVector(r.f32_run()?),
        OBS_SCALAR => Observation::Scalar(r.f64()?),
        OBS_GRAPH => Observation::Graph(read_graph(r)?),
        OBS_BYTES => Observation::Bytes(r.bytes()?.to_owned()),
        t => return err(format!("unknown observation tag {t}")),
    })
}

/// ProGraML graphs are encoded natively (5 bytes per edge on graphs under
/// 64k nodes, a tag byte plus label per node) rather than as embedded JSON:
/// graphs are the bulkiest routinely-shipped observation, and the JSON form
/// spends ~5× the bytes on key names and quoted edge kinds. Edge endpoints
/// are width-tagged — 2-byte indices when the node count fits `u16`, 4-byte
/// otherwise — since per-function graphs rarely clear a few thousand nodes.
fn put_graph(buf: &mut Vec<u8>, g: &ProgramGraph) {
    put_u32(buf, g.nodes.len() as u32);
    for n in &g.nodes {
        buf.push(match n.kind {
            NodeKind::Instruction => 0,
            NodeKind::Variable => 1,
            NodeKind::Constant => 2,
            NodeKind::Function => 3,
        });
        put_str(buf, &n.label);
        put_u32(buf, n.opcode);
    }
    put_u32(buf, g.edges.len() as u32);
    let wide = g.nodes.len() > usize::from(u16::MAX);
    let width: u8 = if wide { 4 } else { 2 };
    buf.push(width);
    buf.reserve(g.edges.len() * (2 * width as usize + 1));
    for (src, dst, kind) in &g.edges {
        if wide {
            put_u32(buf, *src);
            put_u32(buf, *dst);
        } else {
            buf.extend_from_slice(&(*src as u16).to_le_bytes());
            buf.extend_from_slice(&(*dst as u16).to_le_bytes());
        }
        buf.push(match kind {
            EdgeKind::Control => 0,
            EdgeKind::Data => 1,
            EdgeKind::Call => 2,
        });
    }
}

fn read_graph(r: &mut WireReader<'_>) -> Result<ProgramGraph, WireError> {
    let n = r.u32()? as usize;
    let mut nodes = Vec::with_capacity(n.min(r.remaining() / 6 + 1));
    for _ in 0..n {
        let kind = match r.u8()? {
            0 => NodeKind::Instruction,
            1 => NodeKind::Variable,
            2 => NodeKind::Constant,
            3 => NodeKind::Function,
            t => return err(format!("unknown node kind {t}")),
        };
        nodes.push(GraphNode {
            kind,
            label: r.str()?.to_owned(),
            opcode: r.u32()?,
        });
    }
    let n = r.u32()? as usize;
    let width = r.u8()?;
    if !matches!(width, 2 | 4) {
        return err(format!("bad edge index width {width}"));
    }
    let mut edges = Vec::with_capacity(n.min(r.remaining() / 5 + 1));
    for _ in 0..n {
        let (src, dst) = if width == 4 {
            (r.u32()?, r.u32()?)
        } else {
            (r.u16()?.into(), r.u16()?.into())
        };
        let kind = match r.u8()? {
            0 => EdgeKind::Control,
            1 => EdgeKind::Data,
            2 => EdgeKind::Call,
            t => return err(format!("unknown edge kind {t}")),
        };
        edges.push((src, dst, kind));
    }
    Ok(ProgramGraph { nodes, edges })
}

fn put_budget(buf: &mut Vec<u8>, b: &ResourceBudget) {
    put_opt_u64(buf, b.step_wall_us);
    put_opt_u64(buf, b.max_state_size);
    match b.max_growth {
        None => buf.push(0),
        Some(x) => {
            buf.push(1);
            put_f64(buf, x);
        }
    }
    put_opt_u64(buf, b.interp_fuel);
}

fn read_budget(r: &mut WireReader<'_>) -> Result<ResourceBudget, WireError> {
    Ok(ResourceBudget {
        step_wall_us: r.opt_u64()?,
        max_state_size: r.opt_u64()?,
        max_growth: match r.u8()? {
            0 => None,
            1 => Some(r.f64()?),
            t => return err(format!("bad option tag {t}")),
        },
        interp_fuel: r.opt_u64()?,
    })
}

// ---------------------------------------------------------------------------
// JSON bridge (the fallback codec) — shared helpers for cross-agreement
// ---------------------------------------------------------------------------

/// Encodes a response as a legacy JSON frame, mapping an (in practice
/// unreachable, but structurally possible) encoder failure or panic to a
/// guaranteed-encodable typed error frame instead of killing the
/// connection.
pub fn encode_response_json(resp: &Response) -> Vec<u8> {
    let encoded =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| serde_json::to_vec(resp)));
    match encoded {
        Ok(Ok(bytes)) => bytes,
        Ok(Err(e)) => json_error_frame(&format!("response encoding failed: {e}")),
        Err(_) => json_error_frame("response encoding panicked"),
    }
}

/// Hand-assembles an `{"Error": "..."}` frame without going back through
/// the serializer that just failed. The message rides through the JSON
/// string escaper only, which is total.
fn json_error_frame(msg: &str) -> Vec<u8> {
    let escaped = serde_json::to_string(&Value::Str(msg.to_string()))
        .unwrap_or_else(|_| "\"response encoding failed\"".to_string());
    format!("{{\"Error\":{escaped}}}").into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use proptest::TestRng;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Ping,
            Request::GetSpaces,
            Request::StartSession {
                benchmark: "benchmark://cbench-v1/crc32".into(),
                action_space: 1,
            },
            Request::Step {
                session_id: 42,
                actions: vec![0, 7, usize::MAX],
                observation_spaces: vec!["Autophase".into(), "Ir".into()],
            },
            Request::Fork { session_id: 3 },
            Request::EndSession { session_id: 9 },
            Request::RestoreSession {
                benchmark: "b".into(),
                action_space: 0,
                actions: vec![1, 2, 3],
                state: vec![0, 1, 255, 128],
            },
            Request::ExportState { session_id: 11 },
            Request::Configure {
                budget: ResourceBudget {
                    step_wall_us: Some(1000),
                    max_state_size: None,
                    max_growth: Some(1.5),
                    interp_fuel: Some(u64::MAX),
                },
            },
            Request::Shutdown,
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Pong,
            Response::Spaces {
                action_spaces: vec![ActionSpaceInfo {
                    name: "PassPipeline".into(),
                    actions: vec!["mem2reg".into(), "gvn".into()],
                }],
                observation_spaces: vec![ObservationSpaceInfo {
                    name: "Autophase".into(),
                    kind: ObservationKind::IntVector,
                    deterministic: true,
                    platform_dependent: false,
                }],
                reward_spaces: vec![RewardSpaceInfo {
                    name: "IrInstructionCountOz".into(),
                    metric: "IrInstructionCount".into(),
                    sign: 1.0,
                    baseline: Some("IrInstructionCountOz".into()),
                    deterministic: true,
                }],
            },
            Response::SessionStarted { session_id: 17 },
            Response::Stepped {
                end_of_episode: true,
                changed: false,
                observations: vec![
                    Observation::Text("define i32 @f()\n  ret, \"quoted\"".into()),
                    Observation::IntVector(vec![i64::MIN, -1, 0, 1, i64::MAX]),
                    Observation::FloatVector(vec![0.103_174_6, -7.25, f32::MAX]),
                    Observation::Scalar(487.0),
                    Observation::Graph(ProgramGraph {
                        nodes: vec![
                            GraphNode {
                                kind: NodeKind::Instruction,
                                label: "add".into(),
                                opcode: 13,
                            },
                            GraphNode {
                                kind: NodeKind::Variable,
                                label: "%x".into(),
                                opcode: 0,
                            },
                        ],
                        edges: vec![(0, 1, EdgeKind::Data), (1, 0, EdgeKind::Control)],
                    }),
                    Observation::Bytes(vec![0, 255, 128, 7]),
                ],
            },
            Response::Forked { session_id: 5 },
            Response::Ok,
            Response::State { state: None },
            Response::State {
                state: Some(vec![9, 8, 7]),
            },
            Response::Budget(BudgetViolation {
                kind: BudgetKind::Growth,
                limit: 25,
                observed: 30,
                detail: "state grew".into(),
            }),
            Response::Overloaded {
                retry_after_ms: 100,
                reason: "connection cap 1 reached".into(),
            },
            Response::Error("no session 3".into()),
            Response::Fatal("session 3 panicked".into()),
        ]
    }

    fn req_roundtrip(req: &Request, ctx: Option<TraceContext>, tenant: Option<&str>) {
        let mut buf = Vec::new();
        encode_request_frame(&mut buf, 77, req, ctx, tenant);
        assert!(is_binary_frame(&buf));
        let Frame::Request { corr, body } = decode_frame(&buf).unwrap() else {
            panic!("not a request frame");
        };
        assert_eq!(corr, 77);
        let decoded = decode_request_body(corr, body).unwrap();
        assert_eq!(decoded.ctx, ctx);
        assert_eq!(decoded.tenant.as_deref(), tenant);
        // Request has no PartialEq: compare via the JSON value encoding,
        // which doubles as the binary↔json cross-agreement check.
        assert_eq!(
            serde_json::to_string(&decoded.req.to_value()).unwrap(),
            serde_json::to_string(&req.to_value()).unwrap(),
        );
    }

    #[test]
    fn request_roundtrip_all_variants() {
        for req in &sample_requests() {
            req_roundtrip(req, None, None);
            req_roundtrip(
                req,
                Some(TraceContext {
                    trace_id: u64::MAX,
                    span_id: 12345,
                }),
                Some("tenant-a"),
            );
        }
    }

    #[test]
    fn response_roundtrip_all_variants() {
        let mut buf = Vec::new();
        for resp in &sample_responses() {
            encode_response_frame(&mut buf, u64::MAX, resp);
            let Frame::Response { corr, body } = decode_frame(&buf).unwrap() else {
                panic!("not a response frame");
            };
            assert_eq!(corr, u64::MAX);
            let decoded = decode_response_body(body).unwrap();
            assert_eq!(
                serde_json::to_string(&decoded.to_value()).unwrap(),
                serde_json::to_string(&resp.to_value()).unwrap(),
            );
        }
    }

    /// Binary↔JSON cross-agreement: a value that went through the binary
    /// codec deserializes from its JSON form to the same JSON form again —
    /// both codecs describe the same value space.
    #[test]
    fn cross_codec_agreement() {
        let mut buf = Vec::new();
        for resp in &sample_responses() {
            encode_response_frame(&mut buf, 0, resp);
            let Frame::Response { body, .. } = decode_frame(&buf).unwrap() else {
                panic!("not a response frame");
            };
            let from_binary = decode_response_body(body).unwrap();
            let json = serde_json::to_vec(resp).unwrap();
            let from_json: Response = serde_json::from_slice(&json).unwrap();
            assert_eq!(
                serde_json::to_string(&from_binary.to_value()).unwrap(),
                serde_json::to_string(&from_json.to_value()).unwrap(),
            );
        }
    }

    #[test]
    fn hello_frames_roundtrip() {
        let mut buf = Vec::new();
        encode_hello(&mut buf);
        assert!(matches!(
            decode_frame(&buf).unwrap(),
            Frame::Hello {
                version: WIRE_VERSION
            }
        ));
        encode_hello_ack(&mut buf);
        assert!(matches!(
            decode_frame(&buf).unwrap(),
            Frame::HelloAck {
                version: WIRE_VERSION
            }
        ));
    }

    #[test]
    fn magic_is_invalid_utf8() {
        // The negotiation fallback depends on this: a legacy server must
        // fail `str::from_utf8` on any binary frame, not misparse it.
        let mut buf = Vec::new();
        encode_hello(&mut buf);
        assert!(std::str::from_utf8(&buf).is_err());
        assert!(!is_binary_frame(b"{\"ping\"}"));
        assert!(!is_binary_frame(b""));
    }

    #[test]
    fn truncated_and_corrupt_frames_are_typed_errors() {
        let mut buf = Vec::new();
        encode_request_frame(&mut buf, 1, &sample_requests()[3], None, None);
        for cut in [0, 3, 5, HEADER_LEN, buf.len() - 1] {
            let sliced = &buf[..cut];
            if is_binary_frame(sliced) {
                let ok = match decode_frame(sliced) {
                    Ok(Frame::Request { corr, body }) => decode_request_body(corr, body).is_ok(),
                    Ok(_) => true,
                    Err(_) => false,
                };
                assert!(!ok, "cut at {cut} must not decode");
            }
        }
        // Unknown tags are errors, not panics.
        let mut bad = buf.clone();
        let at = bad.len() - 1;
        bad[HEADER_LEN] = 0; // no metadata flags
        bad[at] = 250;
        assert!(decode_frame(&bad).is_ok());
        let mut evil = Vec::new();
        header(&mut evil, KIND_RESPONSE, 0);
        evil.push(250);
        let Frame::Response { body, .. } = decode_frame(&evil).unwrap() else {
            panic!();
        };
        assert!(decode_response_body(body).is_err());
    }

    #[test]
    fn encode_reuses_scratch_without_growth() {
        let mut buf = Vec::new();
        encode_response_frame(&mut buf, 1, &sample_responses()[3]);
        let cap = buf.capacity();
        for corr in 0..100u64 {
            encode_response_frame(&mut buf, corr, &sample_responses()[3]);
        }
        assert_eq!(buf.capacity(), cap, "scratch must be reused, not regrown");
    }

    #[test]
    fn json_error_frame_is_parseable_and_escaped() {
        let frame = json_error_frame("bad \"quote\"\nnewline");
        let resp: Response = serde_json::from_slice(&frame).unwrap();
        match resp {
            Response::Error(e) => assert!(e.contains("bad \"quote\"")),
            other => panic!("{other:?}"),
        }
    }

    // ------------------------------------------------------------------
    // Property tests: encode→decode identity over arbitrary values, and
    // cross-codec agreement against the JSON codec.
    // ------------------------------------------------------------------

    fn arb_string(rng: &mut TestRng) -> String {
        let len = rng.below(20) as usize;
        (0..len)
            .map(|_| {
                // Mix ASCII with multi-byte chars and JSON-hostile escapes.
                match rng.below(6) {
                    0 => '\n',
                    1 => '"',
                    2 => '\\',
                    3 => 'λ',
                    _ => (b'a' + rng.below(26) as u8) as char,
                }
            })
            .collect()
    }

    fn arb_observation(rng: &mut TestRng) -> Observation {
        match rng.below(6) {
            0 => Observation::Text(arb_string(rng)),
            1 => {
                Observation::IntVector((0..rng.below(80)).map(|_| rng.next_u64() as i64).collect())
            }
            2 => Observation::FloatVector(
                (0..rng.below(80))
                    .map(|_| f32::from_bits(rng.next_u64() as u32))
                    .filter(|f| f.is_finite())
                    .collect(),
            ),
            3 => Observation::Scalar((rng.next_u64() as i64 as f64) / 7.0),
            4 => {
                let nodes: Vec<GraphNode> = (0..rng.below(12))
                    .map(|_| GraphNode {
                        kind: match rng.below(4) {
                            0 => NodeKind::Instruction,
                            1 => NodeKind::Variable,
                            2 => NodeKind::Constant,
                            _ => NodeKind::Function,
                        },
                        label: arb_string(rng),
                        opcode: rng.below(70) as u32,
                    })
                    .collect();
                let n = nodes.len().max(1) as u64;
                let edges = (0..rng.below(20))
                    .map(|_| {
                        (
                            rng.below(n) as u32,
                            rng.below(n) as u32,
                            match rng.below(3) {
                                0 => EdgeKind::Control,
                                1 => EdgeKind::Data,
                                _ => EdgeKind::Call,
                            },
                        )
                    })
                    .collect();
                Observation::Graph(ProgramGraph { nodes, edges })
            }
            _ => Observation::Bytes((0..rng.below(64)).map(|_| rng.next_u64() as u8).collect()),
        }
    }

    fn arb_request(rng: &mut TestRng) -> Request {
        match rng.below(10) {
            0 => Request::Ping,
            1 => Request::GetSpaces,
            2 => Request::StartSession {
                benchmark: arb_string(rng),
                action_space: rng.below(4) as usize,
            },
            3 => Request::Step {
                session_id: rng.next_u64(),
                actions: (0..rng.below(16))
                    .map(|_| rng.below(1 << 20) as usize)
                    .collect(),
                observation_spaces: (0..rng.below(4)).map(|_| arb_string(rng)).collect(),
            },
            4 => Request::Fork {
                session_id: rng.next_u64(),
            },
            5 => Request::EndSession {
                session_id: rng.next_u64(),
            },
            6 => Request::RestoreSession {
                benchmark: arb_string(rng),
                action_space: rng.below(4) as usize,
                actions: (0..rng.below(16))
                    .map(|_| rng.below(1 << 20) as usize)
                    .collect(),
                state: (0..rng.below(128)).map(|_| rng.next_u64() as u8).collect(),
            },
            7 => Request::ExportState {
                session_id: rng.next_u64(),
            },
            8 => Request::Configure {
                budget: ResourceBudget {
                    step_wall_us: (rng.below(2) == 1).then(|| rng.next_u64()),
                    max_state_size: (rng.below(2) == 1).then(|| rng.next_u64()),
                    max_growth: (rng.below(2) == 1).then(|| rng.below(1000) as f64 / 8.0),
                    interp_fuel: (rng.below(2) == 1).then(|| rng.next_u64()),
                },
            },
            _ => Request::Shutdown,
        }
    }

    fn arb_response(rng: &mut TestRng) -> Response {
        match rng.below(11) {
            0 => Response::Pong,
            1 => Response::SessionStarted {
                session_id: rng.next_u64(),
            },
            2 => Response::Stepped {
                end_of_episode: rng.below(2) == 1,
                changed: rng.below(2) == 1,
                observations: (0..rng.below(4)).map(|_| arb_observation(rng)).collect(),
            },
            3 => Response::Forked {
                session_id: rng.next_u64(),
            },
            4 => Response::Ok,
            5 => Response::State {
                state: (rng.below(2) == 1)
                    .then(|| (0..rng.below(64)).map(|_| rng.next_u64() as u8).collect()),
            },
            6 => Response::Budget(BudgetViolation {
                kind: if rng.below(2) == 1 {
                    BudgetKind::Wall
                } else {
                    BudgetKind::Growth
                },
                limit: rng.next_u64(),
                observed: rng.next_u64(),
                detail: arb_string(rng),
            }),
            7 => Response::Overloaded {
                retry_after_ms: rng.next_u64(),
                reason: arb_string(rng),
            },
            8 => Response::Error(arb_string(rng)),
            9 => Response::Fatal(arb_string(rng)),
            _ => Response::Spaces {
                action_spaces: (0..rng.below(3))
                    .map(|_| ActionSpaceInfo {
                        name: arb_string(rng),
                        actions: (0..rng.below(6)).map(|_| arb_string(rng)).collect(),
                    })
                    .collect(),
                observation_spaces: (0..rng.below(3))
                    .map(|_| ObservationSpaceInfo {
                        name: arb_string(rng),
                        kind: obs_kind_from_tag(rng.below(6) as u8).unwrap(),
                        deterministic: rng.below(2) == 1,
                        platform_dependent: rng.below(2) == 1,
                    })
                    .collect(),
                reward_spaces: (0..rng.below(3))
                    .map(|_| RewardSpaceInfo {
                        name: arb_string(rng),
                        metric: arb_string(rng),
                        sign: if rng.below(2) == 1 { 1.0 } else { -1.0 },
                        baseline: (rng.below(2) == 1).then(|| arb_string(rng)),
                        deterministic: rng.below(2) == 1,
                    })
                    .collect(),
            },
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

        #[test]
        fn prop_request_binary_roundtrip_and_json_agreement(seed in 0u64..u64::MAX) {
            let mut rng = TestRng::new(seed);
            let req = arb_request(&mut rng);
            let ctx = (rng.below(2) == 1).then(|| TraceContext {
                trace_id: rng.next_u64(),
                span_id: rng.next_u64(),
            });
            let tenant = (rng.below(2) == 1).then(|| arb_string(&mut rng));
            let mut buf = Vec::new();
            encode_request_frame(&mut buf, seed, &req, ctx, tenant.as_deref());
            let Frame::Request { corr, body } = decode_frame(&buf).unwrap() else {
                panic!("not a request frame");
            };
            prop_assert_eq!(corr, seed);
            let decoded = decode_request_body(corr, body).unwrap();
            prop_assert_eq!(decoded.ctx, ctx);
            prop_assert_eq!(decoded.tenant, tenant);
            // Binary↔JSON cross-agreement on the request value.
            let via_binary = serde_json::to_string(&decoded.req.to_value()).unwrap();
            let direct = serde_json::to_string(&req.to_value()).unwrap();
            prop_assert_eq!(via_binary, direct);
            let via_json: Request =
                serde_json::from_slice(&serde_json::to_vec(&req).unwrap()).unwrap();
            prop_assert_eq!(
                serde_json::to_string(&via_json.to_value()).unwrap(),
                serde_json::to_string(&req.to_value()).unwrap()
            );
        }

        #[test]
        fn prop_response_binary_roundtrip_and_json_agreement(seed in 0u64..u64::MAX) {
            let mut rng = TestRng::new(seed);
            let resp = arb_response(&mut rng);
            let mut buf = Vec::new();
            encode_response_frame(&mut buf, seed ^ 0xABCD, &resp);
            let Frame::Response { corr, body } = decode_frame(&buf).unwrap() else {
                panic!("not a response frame");
            };
            prop_assert_eq!(corr, seed ^ 0xABCD);
            let decoded = decode_response_body(body).unwrap();
            let via_binary = serde_json::to_string(&decoded.to_value()).unwrap();
            let direct = serde_json::to_string(&resp.to_value()).unwrap();
            prop_assert_eq!(via_binary, direct);
            let via_json: Response =
                serde_json::from_slice(&serde_json::to_vec(&resp).unwrap()).unwrap();
            prop_assert_eq!(
                serde_json::to_string(&via_json.to_value()).unwrap(),
                serde_json::to_string(&resp.to_value()).unwrap()
            );
        }

        #[test]
        fn prop_decoder_never_panics_on_corrupt_bytes(seed in 0u64..u64::MAX) {
            let mut rng = TestRng::new(seed);
            let resp = arb_response(&mut rng);
            let mut buf = Vec::new();
            encode_response_frame(&mut buf, 1, &resp);
            // Flip a few bytes and truncate: the decoder must return a typed
            // error or a (different) value — never panic or overrun.
            for _ in 0..4 {
                let at = rng.below(buf.len() as u64) as usize;
                buf[at] ^= rng.next_u64() as u8;
            }
            let cut = rng.below(buf.len() as u64 + 1) as usize;
            let sliced = &buf[..cut];
            if let Ok(Frame::Response { body, .. }) = decode_frame(sliced) {
                let _ = decode_response_body(body);
            }
            if let Ok(Frame::Request { corr, body }) = decode_frame(sliced) {
                let _ = decode_request_body(corr, body);
            }
        }
    }
}
