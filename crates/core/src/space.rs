//! Space descriptions and observation values.

use serde::{Deserialize, Serialize};

pub use cg_llvm::observation::ProgramGraph;

/// Describes a discrete action space exposed by a session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActionSpaceInfo {
    /// Space name (`"PassPipeline"`, `"FlagDeltas"`, `"Cursor"`, …).
    pub name: String,
    /// Action names, indexed by action number.
    pub actions: Vec<String>,
}

impl ActionSpaceInfo {
    /// Number of actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True when there are no actions (never, for shipped environments).
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Index of a named action.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.actions.iter().position(|a| a == name)
    }

    /// Samples a uniformly random action index.
    pub fn sample(&self, rng: &mut impl rand::Rng) -> usize {
        rng.gen_range(0..self.actions.len())
    }
}

/// The value kinds an observation space can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObservationKind {
    /// UTF-8 text (IR, RTL, assembly, loop-tree dumps).
    Text,
    /// Fixed-length integer vector.
    IntVector,
    /// Fixed-length float vector.
    FloatVector,
    /// A single scalar (metrics also usable as rewards).
    Scalar,
    /// A ProGraML-style program graph.
    Graph,
    /// Raw bytes (object code).
    Bytes,
}

/// Describes one observation space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObservationSpaceInfo {
    /// Space name (`"Autophase"`, `"Ir"`, `"InstCount"`, …).
    pub name: String,
    /// The value kind.
    pub kind: ObservationKind,
    /// Whether the value is deterministic given the state.
    pub deterministic: bool,
    /// Whether the value depends on the (simulated) platform.
    pub platform_dependent: bool,
}

/// An observation value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Observation {
    /// Text observation.
    Text(String),
    /// Integer feature vector.
    IntVector(Vec<i64>),
    /// Float feature vector.
    FloatVector(Vec<f32>),
    /// Scalar metric.
    Scalar(f64),
    /// Program graph.
    Graph(ProgramGraph),
    /// Raw bytes.
    Bytes(Vec<u8>),
}

impl Observation {
    /// The scalar content, if this is a scalar.
    pub fn as_scalar(&self) -> Option<f64> {
        match self {
            Observation::Scalar(x) => Some(*x),
            _ => None,
        }
    }

    /// The integer vector content, if present.
    pub fn as_int_vector(&self) -> Option<&[i64]> {
        match self {
            Observation::IntVector(v) => Some(v),
            _ => None,
        }
    }

    /// The float vector content, if present.
    pub fn as_float_vector(&self) -> Option<&[f32]> {
        match self {
            Observation::FloatVector(v) => Some(v),
            _ => None,
        }
    }

    /// The text content, if present.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Observation::Text(t) => Some(t),
            _ => None,
        }
    }
}

/// Describes a reward signal: the change in a scalar metric between steps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RewardSpaceInfo {
    /// Reward name (`"IrInstructionCount"`, `"IrInstructionCountOz"`, …).
    pub name: String,
    /// The scalar observation space the reward derives from.
    pub metric: String,
    /// +1 when decreasing the metric is good (sizes, runtime), -1 when
    /// increasing it is good (FLOPs).
    pub sign: f64,
    /// Optional baseline metric observation for scaling: reward is divided
    /// by `initial - baseline` (the gain achieved by the default pipeline).
    pub baseline: Option<String>,
    /// Whether the signal is deterministic.
    pub deterministic: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_space_lookup_and_sample() {
        let s = ActionSpaceInfo {
            name: "t".into(),
            actions: vec!["a".into(), "b".into()],
        };
        assert_eq!(s.len(), 2);
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("c"), None);
        let mut rng = rand::rngs::mock::StepRng::new(0, 1 << 40);
        for _ in 0..10 {
            assert!(s.sample(&mut rng) < 2);
        }
    }

    #[test]
    fn observation_accessors() {
        assert_eq!(Observation::Scalar(4.0).as_scalar(), Some(4.0));
        assert_eq!(Observation::Text("x".into()).as_text(), Some("x"));
        assert!(Observation::IntVector(vec![1]).as_int_vector().is_some());
        assert!(Observation::Scalar(1.0).as_text().is_none());
    }

    #[test]
    fn observation_serializes_to_json() {
        let o = Observation::IntVector(vec![1, 2, 3]);
        let j = serde_json::to_string(&o).unwrap();
        let back: Observation = serde_json::from_str(&j).unwrap();
        assert_eq!(o, back);
    }
}
