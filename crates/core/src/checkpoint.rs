//! Session checkpointing: O(K) recovery instead of O(episode) replay.
//!
//! The service worker serializes each session's state every K applied
//! actions (configurable, default 10) into a [`CheckpointStore`] owned by
//! the *client* side of the RPC boundary — the store must outlive the
//! service worker, because its whole purpose is surviving worker death.
//! On recovery, `CompilerEnv::replay_episode` asks the store for the
//! latest checkpoint whose action prefix matches the episode's action
//! history, restores it into a fresh session with
//! `CompilationSession::load_state`, and replays only the ≤K-action
//! suffix.
//!
//! # Soundness
//!
//! A checkpoint records the full action prefix that produced it, and the
//! store only ever serves a checkpoint whose `(benchmark, action_space,
//! actions)` is a *prefix* of the episode being recovered. For a
//! deterministic session, state is a pure function of that triple, so a
//! matching checkpoint is valid no matter which episode or worker
//! generation wrote it — stale ring entries are harmless and the ring is
//! never cleared on reset.
//!
//! The in-memory ring is bounded; an optional [`CheckpointSink`] callback
//! mirrors every checkpoint to external storage (cg-stdb provides a
//! crash-safe temp-file+rename disk sink).

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Default checkpoint interval: serialize every K = 10 applied actions.
pub const DEFAULT_CHECKPOINT_INTERVAL: u64 = 10;

/// Default in-memory ring capacity.
pub const DEFAULT_RING_CAPACITY: usize = 16;

/// One serialized session snapshot, self-describing: the `(benchmark,
/// action_space, actions)` triple fully determines the state for a
/// deterministic session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// The benchmark URI the episode runs on.
    pub benchmark: String,
    /// The action space index selected at `init`.
    pub action_space: usize,
    /// The full action prefix applied before this snapshot was taken.
    pub actions: Vec<usize>,
    /// The serialized session state (`CompilationSession::save_state`).
    pub state: Vec<u8>,
}

impl Checkpoint {
    /// Number of actions captured by this checkpoint.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.actions.len()
    }
}

/// Destination for mirroring checkpoints outside the in-memory ring
/// (e.g. cg-stdb's crash-safe disk sink). Failures are the sink's problem:
/// checkpointing must never fail the step that triggered it.
pub type CheckpointSink = Arc<dyn Fn(&Checkpoint) + Send + Sync>;

#[derive(Default)]
struct StoreInner {
    ring: VecDeque<Checkpoint>,
    taken: u64,
    restores: u64,
}

/// A bounded ring of recent checkpoints, shared between the service worker
/// (writer) and the environment's recovery path (reader). Cheaply
/// cloneable; clones share the same ring.
#[derive(Clone)]
pub struct CheckpointStore {
    inner: Arc<Mutex<StoreInner>>,
    capacity: usize,
    interval: u64,
    sink: Option<CheckpointSink>,
}

impl std::fmt::Debug for CheckpointStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("CheckpointStore")
            .field("capacity", &self.capacity)
            .field("interval", &self.interval)
            .field("len", &inner.ring.len())
            .field("taken", &inner.taken)
            .field("restores", &inner.restores)
            .field("has_sink", &self.sink.is_some())
            .finish()
    }
}

impl Default for CheckpointStore {
    fn default() -> CheckpointStore {
        CheckpointStore::new(DEFAULT_RING_CAPACITY, DEFAULT_CHECKPOINT_INTERVAL)
    }
}

impl CheckpointStore {
    /// Creates a store holding up to `capacity` checkpoints, taken every
    /// `interval` applied actions (`interval == 0` disables checkpointing).
    #[must_use]
    pub fn new(capacity: usize, interval: u64) -> CheckpointStore {
        CheckpointStore {
            inner: Arc::new(Mutex::new(StoreInner::default())),
            capacity: capacity.max(1),
            interval,
            sink: None,
        }
    }

    /// Returns a copy of this store that mirrors every checkpoint to
    /// `sink` in addition to the shared in-memory ring.
    #[must_use]
    pub fn with_sink(mut self, sink: CheckpointSink) -> CheckpointStore {
        self.sink = Some(sink);
        self
    }

    /// The checkpoint interval K (0 = disabled).
    #[must_use]
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Returns a copy of this store with a different interval. The ring is
    /// shared with the original.
    #[must_use]
    pub fn with_interval(mut self, interval: u64) -> CheckpointStore {
        self.interval = interval;
        self
    }

    /// Whether a session at `depth` applied actions is due for a
    /// checkpoint.
    #[must_use]
    pub fn due(&self, depth: u64) -> bool {
        self.interval != 0 && depth > 0 && depth.is_multiple_of(self.interval)
    }

    /// Records a checkpoint, evicting the oldest entry when full, and
    /// mirrors it to the sink if one is attached.
    pub fn put(&self, checkpoint: Checkpoint) {
        if let Some(sink) = &self.sink {
            sink(&checkpoint);
        }
        let mut inner = self.inner.lock();
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
        }
        inner.taken += 1;
        inner.ring.push_back(checkpoint);
        cg_telemetry::global().checkpoints_taken.inc();
    }

    /// Returns the deepest checkpoint whose `(benchmark, action_space,
    /// actions)` is a prefix of the given episode — the restore point that
    /// minimizes the replay suffix. Records a restore in the store's
    /// counters; only call when actually restoring.
    #[must_use]
    pub fn latest_matching(
        &self,
        benchmark: &str,
        action_space: usize,
        actions: &[usize],
    ) -> Option<Checkpoint> {
        let mut inner = self.inner.lock();
        let best = inner
            .ring
            .iter()
            .filter(|c| {
                c.benchmark == benchmark
                    && c.action_space == action_space
                    && !c.actions.is_empty()
                    && c.actions.len() <= actions.len()
                    && actions[..c.actions.len()] == c.actions[..]
            })
            .max_by_key(|c| c.depth())
            .cloned();
        if best.is_some() {
            inner.restores += 1;
        }
        best
    }

    /// Total checkpoints recorded through this ring.
    #[must_use]
    pub fn checkpoints_taken(&self) -> u64 {
        self.inner.lock().taken
    }

    /// Total successful `latest_matching` lookups (checkpoint restores).
    #[must_use]
    pub fn restores(&self) -> u64 {
        self.inner.lock().restores
    }

    /// Number of checkpoints currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().ring.len()
    }

    /// Whether the ring is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.lock().ring.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ck(benchmark: &str, actions: &[usize]) -> Checkpoint {
        Checkpoint {
            benchmark: benchmark.into(),
            action_space: 0,
            actions: actions.to_vec(),
            state: actions.iter().map(|a| *a as u8).collect(),
        }
    }

    #[test]
    fn due_respects_interval() {
        let store = CheckpointStore::new(4, 10);
        assert!(!store.due(0));
        assert!(!store.due(9));
        assert!(store.due(10));
        assert!(store.due(20));
        let off = CheckpointStore::new(4, 0);
        assert!(!off.due(10));
    }

    #[test]
    fn ring_evicts_oldest() {
        let store = CheckpointStore::new(2, 1);
        store.put(ck("b", &[1]));
        store.put(ck("b", &[1, 2]));
        store.put(ck("b", &[1, 2, 3]));
        assert_eq!(store.len(), 2);
        // The depth-1 checkpoint was evicted.
        assert!(store.latest_matching("b", 0, &[1]).is_none());
        assert_eq!(store.latest_matching("b", 0, &[1, 2]).unwrap().depth(), 2);
    }

    #[test]
    fn latest_matching_picks_deepest_prefix() {
        let store = CheckpointStore::new(8, 1);
        store.put(ck("b", &[1, 2]));
        store.put(ck("b", &[1, 2, 3, 4]));
        store.put(ck("b", &[9, 9, 9])); // different episode: not a prefix
        store.put(ck("other", &[1, 2, 3, 4, 5])); // different benchmark
        let hit = store.latest_matching("b", 0, &[1, 2, 3, 4, 5, 6]).unwrap();
        assert_eq!(hit.actions, vec![1, 2, 3, 4]);
        assert_eq!(store.restores(), 1);
        // An episode that diverged after step 2 can still use the depth-2
        // checkpoint but not the depth-4 one.
        let hit = store.latest_matching("b", 0, &[1, 2, 7]).unwrap();
        assert_eq!(hit.actions, vec![1, 2]);
    }

    #[test]
    fn action_space_must_match() {
        let store = CheckpointStore::new(8, 1);
        store.put(ck("b", &[1, 2]));
        assert!(store.latest_matching("b", 1, &[1, 2, 3]).is_none());
    }

    #[test]
    fn sink_sees_every_checkpoint() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let store = CheckpointStore::new(4, 1)
            .with_sink(Arc::new(move |c: &Checkpoint| seen2.lock().push(c.depth())));
        store.put(ck("b", &[1]));
        store.put(ck("b", &[1, 2]));
        assert_eq!(*seen.lock(), vec![1, 2]);
    }

    #[test]
    fn checkpoint_serde_round_trip() {
        let c = ck("benchmark://cbench-v1/qsort", &[3, 1, 4, 1, 5]);
        let json = serde_json::to_string(&c).unwrap();
        let back: Checkpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
