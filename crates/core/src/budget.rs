//! In-service resource budgets: the first rung of the recovery ladder.
//!
//! PR 2's recovery path treats a runaway pass as a *client-side* problem:
//! the call hangs until the client deadline fires, the service is
//! restarted, and the episode is replayed. A budget moves containment into
//! the service worker itself: pass application runs under a per-request
//! wall-clock deadline and a state-size cap, so a pathological pass is
//! killed *inside* the service and answered with a typed
//! [`BudgetViolation`] — an ordinary in-band reply, orders of magnitude
//! cheaper than a timeout-restart-replay cycle. The interpreter-fuel cap
//! bounds runtime observations the same way.
//!
//! Budgets are carried by [`ResourceBudget`], configured per service via
//! `ServiceClient::set_resource_budget` / `Request::Configure`, and survive
//! service restarts (the client re-applies its copy to every worker it
//! spawns).

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Resource limits enforced inside the service worker while it executes a
/// `Step` request. Every limit is optional; the default budget enforces
/// nothing (zero overhead on the happy path — the worker only spawns a
/// supervised runner thread when a wall-clock limit is set).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourceBudget {
    /// Wall-clock deadline for one `Step` request (actions + observations)
    /// in microseconds (the vendored serde has no `Duration` impls; use
    /// [`ResourceBudget::step_wall`] / [`ResourceBudget::with_step_wall`]
    /// for `Duration`-typed access). When exceeded, the worker abandons the
    /// in-flight session and answers a typed [`BudgetKind::Wall`] violation
    /// instead of letting the client deadline fire.
    pub step_wall_us: Option<u64>,
    /// Absolute cap on the session's state size (for LLVM sessions, the IR
    /// instruction count), checked after every applied action.
    pub max_state_size: Option<u64>,
    /// Relative growth cap: the state may not exceed `initial × factor`,
    /// where `initial` is the size recorded when the session started.
    pub max_growth: Option<f64>,
    /// Fuel cap (dynamic instructions) for interpreter-backed runtime
    /// observations, forwarded to the session via
    /// `CompilationSession::apply_budget`.
    pub interp_fuel: Option<u64>,
}

impl ResourceBudget {
    /// A budget that enforces nothing.
    #[must_use]
    pub fn unlimited() -> ResourceBudget {
        ResourceBudget::default()
    }

    /// Whether any limit is configured.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.step_wall_us.is_none()
            && self.max_state_size.is_none()
            && self.max_growth.is_none()
            && self.interp_fuel.is_none()
    }

    /// Sets the per-`Step` wall-clock deadline.
    #[must_use]
    pub fn with_step_wall(mut self, wall: Duration) -> ResourceBudget {
        self.step_wall_us = Some(wall.as_micros().min(u128::from(u64::MAX)) as u64);
        self
    }

    /// The per-`Step` wall-clock deadline, if set.
    #[must_use]
    pub fn step_wall(&self) -> Option<Duration> {
        self.step_wall_us.map(Duration::from_micros)
    }

    /// Sets the absolute state-size cap.
    #[must_use]
    pub fn with_max_state_size(mut self, cap: u64) -> ResourceBudget {
        self.max_state_size = Some(cap);
        self
    }

    /// Sets the relative growth cap (`state ≤ initial × factor`).
    #[must_use]
    pub fn with_max_growth(mut self, factor: f64) -> ResourceBudget {
        self.max_growth = Some(factor.max(1.0));
        self
    }

    /// Sets the interpreter-fuel cap for runtime observations.
    #[must_use]
    pub fn with_interp_fuel(mut self, fuel: u64) -> ResourceBudget {
        self.interp_fuel = Some(fuel);
        self
    }

    /// The effective absolute size limit for a session that started at
    /// `initial` size: the tighter of the absolute cap and the growth cap.
    #[must_use]
    pub fn size_limit(&self, initial: Option<u64>) -> Option<u64> {
        let growth = match (self.max_growth, initial) {
            (Some(f), Some(init)) => Some((init as f64 * f).ceil() as u64),
            _ => None,
        };
        match (self.max_state_size, growth) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

/// Which budget a request exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BudgetKind {
    /// The `Step` wall-clock deadline.
    Wall,
    /// The state-size cap (absolute or growth-derived).
    Growth,
}

impl std::fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetKind::Wall => write!(f, "wall-clock"),
            BudgetKind::Growth => write!(f, "state-growth"),
        }
    }
}

/// A typed in-band budget violation: the session that exceeded its budget
/// was destroyed by the service worker (a "budget kill"), the service
/// itself kept serving, and this reply came back instead of a hang.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetViolation {
    /// Which limit was exceeded.
    pub kind: BudgetKind,
    /// The configured limit (microseconds for [`BudgetKind::Wall`],
    /// state-size units for [`BudgetKind::Growth`]).
    pub limit: u64,
    /// The observed value at the kill point (for wall-clock kills this is
    /// the limit itself — the runner was abandoned at the deadline).
    pub observed: u64,
    /// Human-readable context (which action, which benchmark).
    pub detail: String,
}

impl std::fmt::Display for BudgetViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} budget exceeded: limit {}, observed {} ({})",
            self.kind, self.limit, self.observed, self.detail
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unlimited() {
        assert!(ResourceBudget::default().is_unlimited());
        assert!(!ResourceBudget::default()
            .with_max_growth(2.0)
            .is_unlimited());
        let b = ResourceBudget::default().with_step_wall(Duration::from_millis(250));
        assert_eq!(b.step_wall(), Some(Duration::from_millis(250)));
    }

    #[test]
    fn size_limit_takes_the_tighter_cap() {
        let b = ResourceBudget::default()
            .with_max_state_size(500)
            .with_max_growth(2.0);
        assert_eq!(b.size_limit(Some(100)), Some(200), "growth cap is tighter");
        assert_eq!(
            b.size_limit(Some(400)),
            Some(500),
            "absolute cap is tighter"
        );
        assert_eq!(
            b.size_limit(None),
            Some(500),
            "no initial size: absolute only"
        );
        let g = ResourceBudget::default().with_max_growth(3.0);
        assert_eq!(g.size_limit(None), None, "growth cap needs an initial size");
    }

    #[test]
    fn violation_round_trips_through_json() {
        let v = BudgetViolation {
            kind: BudgetKind::Growth,
            limit: 100,
            observed: 250,
            detail: "action 7".into(),
        };
        let json = serde_json::to_string(&v).unwrap();
        let back: BudgetViolation = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }
}
