//! Per-(benchmark, action) circuit breaker: quarantine pairs that
//! repeatedly kill compiler services.
//!
//! Recovery (restart + replay) makes individual faults survivable, but a
//! *deterministically* pathological `(benchmark, action)` pair kills the
//! service on every attempt — each episode that touches it burns a full
//! retry budget rediscovering the same crash. The breaker is the standard
//! three-state machine, keyed per pair:
//!
//! - **Closed** (normal): calls pass through; service-kill faults are
//!   counted. After `threshold` consecutive faults the circuit **opens**.
//! - **Open**: calls fail fast with [`crate::CgError::CircuitOpen`]
//!   without touching the service. After `cooldown` the next call is
//!   allowed through as a **half-open** probe.
//! - **Half-open**: exactly one probe is in flight. Success closes the
//!   circuit; another fault re-opens it and restarts the cooldown.
//!
//! The breaker observes *service kills* (panics, hangs, watchdog
//! restarts), not legitimate `Err` results from the compiler — a compile
//! failure is an answer, not a fault.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Default number of consecutive faults that opens a circuit.
pub const DEFAULT_BREAKER_THRESHOLD: u32 = 3;

/// Default cooldown before an open circuit allows a half-open probe.
pub const DEFAULT_BREAKER_COOLDOWN: Duration = Duration::from_secs(30);

/// Observable state of one circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls pass through; faults are being counted.
    Closed,
    /// Calls fail fast until the cooldown elapses.
    Open,
    /// One probe call is allowed through.
    HalfOpen,
}

#[derive(Debug)]
enum Circuit {
    Closed { faults: u32 },
    Open { since: Instant },
    HalfOpen,
}

/// Decision returned by [`CircuitBreaker::admit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Proceed normally.
    Allow,
    /// Proceed, but this call is the half-open probe: report its outcome.
    Probe,
    /// Fail fast; retry after roughly the contained duration.
    Reject { retry_in: Duration },
}

#[derive(Default)]
struct BreakerInner {
    circuits: HashMap<(String, usize), Circuit>,
    trips: u64,
    fast_fails: u64,
    half_opens: u64,
}

/// A set of per-(benchmark, action) circuits sharing one configuration.
/// Cheaply cloneable; clones share state.
#[derive(Clone)]
pub struct CircuitBreaker {
    inner: Arc<Mutex<BreakerInner>>,
    threshold: u32,
    cooldown: Duration,
}

impl std::fmt::Debug for CircuitBreaker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("CircuitBreaker")
            .field("threshold", &self.threshold)
            .field("cooldown", &self.cooldown)
            .field("circuits", &inner.circuits.len())
            .field("trips", &inner.trips)
            .finish()
    }
}

impl Default for CircuitBreaker {
    fn default() -> CircuitBreaker {
        CircuitBreaker::new(DEFAULT_BREAKER_THRESHOLD, DEFAULT_BREAKER_COOLDOWN)
    }
}

impl CircuitBreaker {
    /// Creates a breaker that opens after `threshold` consecutive faults
    /// and allows a half-open probe after `cooldown`.
    #[must_use]
    pub fn new(threshold: u32, cooldown: Duration) -> CircuitBreaker {
        CircuitBreaker {
            inner: Arc::new(Mutex::new(BreakerInner::default())),
            threshold: threshold.max(1),
            cooldown,
        }
    }

    /// Asks whether a call for `(benchmark, action)` may proceed,
    /// transitioning Open→HalfOpen when the cooldown has elapsed.
    pub fn admit(&self, benchmark: &str, action: usize) -> Admission {
        let mut inner = self.inner.lock();
        let key = (benchmark.to_string(), action);
        match inner.circuits.get(&key) {
            None | Some(Circuit::Closed { .. }) => Admission::Allow,
            Some(Circuit::Open { since }) => {
                let elapsed = since.elapsed();
                if elapsed >= self.cooldown {
                    inner.circuits.insert(key, Circuit::HalfOpen);
                    inner.half_opens += 1;
                    cg_telemetry::global().breaker_half_opens.inc();
                    Admission::Probe
                } else {
                    inner.fast_fails += 1;
                    cg_telemetry::global().breaker_fast_fails.inc();
                    Admission::Reject {
                        retry_in: self.cooldown - elapsed,
                    }
                }
            }
            // Another probe is already in flight; don't pile on.
            Some(Circuit::HalfOpen) => {
                inner.fast_fails += 1;
                cg_telemetry::global().breaker_fast_fails.inc();
                Admission::Reject {
                    retry_in: self.cooldown,
                }
            }
        }
    }

    /// Records a service-kill fault attributed to `(benchmark, action)`.
    /// Returns the resulting state.
    pub fn record_fault(&self, benchmark: &str, action: usize) -> BreakerState {
        let mut inner = self.inner.lock();
        let key = (benchmark.to_string(), action);
        let circuit = inner
            .circuits
            .entry(key)
            .or_insert(Circuit::Closed { faults: 0 });
        let opened = match circuit {
            Circuit::Closed { faults } => {
                *faults += 1;
                *faults >= self.threshold
            }
            // A faulting probe re-opens immediately.
            Circuit::HalfOpen => true,
            Circuit::Open { .. } => false,
        };
        if opened {
            *circuit = Circuit::Open {
                since: Instant::now(),
            };
            inner.trips += 1;
            cg_telemetry::global().breaker_trips.inc();
            cg_telemetry::global().trace.emit_status(
                "breaker:open",
                format!("{benchmark} action {action}"),
                std::time::Duration::ZERO,
                cg_telemetry::SpanStatus::CircuitOpen,
            );
        }
        match inner.circuits[&(benchmark.to_string(), action)] {
            Circuit::Closed { .. } => BreakerState::Closed,
            Circuit::Open { .. } => BreakerState::Open,
            Circuit::HalfOpen => BreakerState::HalfOpen,
        }
    }

    /// Records a successful call for `(benchmark, action)`. A half-open
    /// probe succeeding closes the circuit; in the closed state the
    /// consecutive-fault counter resets.
    pub fn record_success(&self, benchmark: &str, action: usize) {
        let mut inner = self.inner.lock();
        let key = (benchmark.to_string(), action);
        match inner.circuits.get_mut(&key) {
            Some(c @ Circuit::HalfOpen) => {
                *c = Circuit::Closed { faults: 0 };
                cg_telemetry::global().trace.emit(
                    "breaker:close",
                    format!("{benchmark} action {action}"),
                    std::time::Duration::ZERO,
                );
            }
            Some(Circuit::Closed { faults }) => *faults = 0,
            // Success while Open can only be a stale in-flight call; the
            // cooldown still applies.
            Some(Circuit::Open { .. }) | None => {}
        }
    }

    /// The current state of one circuit (Closed when never seen). Does not
    /// perform the Open→HalfOpen transition; use [`admit`] for that.
    ///
    /// [`admit`]: CircuitBreaker::admit
    #[must_use]
    pub fn state(&self, benchmark: &str, action: usize) -> BreakerState {
        let inner = self.inner.lock();
        match inner.circuits.get(&(benchmark.to_string(), action)) {
            None | Some(Circuit::Closed { .. }) => BreakerState::Closed,
            Some(Circuit::Open { .. }) => BreakerState::Open,
            Some(Circuit::HalfOpen) => BreakerState::HalfOpen,
        }
    }

    /// The (benchmark, action) pairs whose circuits are currently open —
    /// the quarantine list (used by harnesses to drive half-open probes
    /// and by operators to see what is being fast-failed).
    #[must_use]
    pub fn open_circuits(&self) -> Vec<(String, usize)> {
        let inner = self.inner.lock();
        inner
            .circuits
            .iter()
            .filter(|(_, c)| matches!(c, Circuit::Open { .. }))
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Total circuit-open transitions.
    #[must_use]
    pub fn trips(&self) -> u64 {
        self.inner.lock().trips
    }

    /// Total fast-failed (rejected) calls.
    #[must_use]
    pub fn fast_fails(&self) -> u64 {
        self.inner.lock().fast_fails
    }

    /// Total Open→HalfOpen transitions.
    #[must_use]
    pub fn half_opens(&self) -> u64 {
        self.inner.lock().half_opens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: &str = "benchmark://cbench-v1/qsort";

    #[test]
    fn closed_until_threshold_consecutive_faults() {
        let br = CircuitBreaker::new(3, Duration::from_secs(60));
        assert_eq!(br.record_fault(B, 5), BreakerState::Closed);
        assert_eq!(br.record_fault(B, 5), BreakerState::Closed);
        assert_eq!(br.admit(B, 5), Admission::Allow);
        assert_eq!(br.record_fault(B, 5), BreakerState::Open);
        assert_eq!(br.trips(), 1);
        assert_eq!(br.open_circuits(), vec![(B.to_string(), 5)]);
        assert!(matches!(br.admit(B, 5), Admission::Reject { .. }));
        assert_eq!(br.fast_fails(), 1);
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let br = CircuitBreaker::new(2, Duration::from_secs(60));
        br.record_fault(B, 1);
        br.record_success(B, 1);
        assert_eq!(
            br.record_fault(B, 1),
            BreakerState::Closed,
            "count was reset"
        );
        assert_eq!(br.record_fault(B, 1), BreakerState::Open);
    }

    #[test]
    fn circuits_are_independent_per_pair() {
        let br = CircuitBreaker::new(1, Duration::from_secs(60));
        br.record_fault(B, 1);
        assert_eq!(br.state(B, 1), BreakerState::Open);
        assert_eq!(br.admit(B, 2), Admission::Allow);
        assert_eq!(br.admit("benchmark://other", 1), Admission::Allow);
    }

    #[test]
    fn open_to_half_open_to_closed() {
        let br = CircuitBreaker::new(1, Duration::from_millis(20));
        br.record_fault(B, 7);
        assert!(matches!(br.admit(B, 7), Admission::Reject { .. }));
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(br.admit(B, 7), Admission::Probe, "cooldown elapsed: probe");
        assert_eq!(br.state(B, 7), BreakerState::HalfOpen);
        assert_eq!(br.half_opens(), 1);
        // A second caller during the probe is rejected.
        assert!(matches!(br.admit(B, 7), Admission::Reject { .. }));
        br.record_success(B, 7);
        assert_eq!(br.state(B, 7), BreakerState::Closed);
        assert_eq!(br.admit(B, 7), Admission::Allow);
    }

    #[test]
    fn failed_probe_reopens() {
        let br = CircuitBreaker::new(1, Duration::from_millis(10));
        br.record_fault(B, 3);
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(br.admit(B, 3), Admission::Probe);
        assert_eq!(
            br.record_fault(B, 3),
            BreakerState::Open,
            "probe faulted: reopen"
        );
        assert_eq!(br.trips(), 2);
        assert!(matches!(br.admit(B, 3), Admission::Reject { .. }));
    }

    #[test]
    fn reject_reports_remaining_cooldown() {
        let br = CircuitBreaker::new(1, Duration::from_secs(60));
        br.record_fault(B, 0);
        match br.admit(B, 0) {
            Admission::Reject { retry_in } => {
                assert!(retry_in <= Duration::from_secs(60));
                assert!(retry_in > Duration::from_secs(50));
            }
            other => panic!("expected Reject, got {other:?}"),
        }
    }
}
