//! Parallel evaluation over a pool of in-process environments.
//!
//! Search throughput in this codebase is bounded by sequence evaluation:
//! every candidate costs a `reset` plus one pass pipeline. [`EnvPool`] runs
//! N worker threads, each owning its own [`CompilerEnv`] (service, session
//! table and all — workers share *nothing* mutable except the evaluation
//! cache and the work queue), fed from one queue:
//!
//! * [`EnvPool::evaluate_batch`] — fire-and-collect sequence evaluation
//!   with per-job fault isolation: a job that errors, blows a budget, or
//!   panics produces an errored [`Outcome`] while its siblings complete
//!   (the worker rebuilds its environment and keeps draining the queue);
//! * [`EnvPool::reset_all`] / [`EnvPool::step_all`] — vectorized RL-style
//!   stepping, one concurrent episode per worker;
//! * a shared [`EvalCache`]: exact repeats cost a map lookup, and novel
//!   sequences restore the deepest cached prefix snapshot, paying only for
//!   their novel suffix.
//!
//! Utilization and cache traffic surface in `cg stats` via
//! `cg_telemetry::PoolStats`.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::env::{CompilerEnv, StepResult};
use crate::error::CgError;
use crate::evalcache::EvalCache;
use crate::space::Observation;

/// Builds a worker's environment. Called lazily on the worker thread (index
/// as argument) the first time it needs an environment, and again after a
/// panic poisons the previous one.
pub type EnvFactory = Arc<dyn Fn(usize) -> Result<CompilerEnv, CgError> + Send + Sync>;

/// One evaluation request: apply `actions` to `benchmark` from a fresh
/// episode and report the episode reward.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActionSeq {
    /// Benchmark URI to evaluate on.
    pub benchmark: String,
    /// The full action sequence, in the worker environment's action space.
    pub actions: Vec<usize>,
}

/// The result of evaluating one [`ActionSeq`].
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Episode reward of the sequence (`NEG_INFINITY` on error).
    pub score: f64,
    /// Reward metric after the last action (`NAN` on error).
    pub metric: f64,
    /// Whether the result came from the exact cache.
    pub cached: bool,
    /// The failure, if the job did not complete.
    pub error: Option<String>,
}

impl Outcome {
    fn failed(error: String) -> Outcome {
        Outcome {
            score: f64::NEG_INFINITY,
            metric: f64::NAN,
            cached: false,
            error: Some(error),
        }
    }
}

struct Job {
    index: usize,
    seq: ActionSeq,
    reply: Sender<(usize, Outcome)>,
}

/// Per-worker control messages. `Wake` nudges a worker to re-scan the
/// shared job queue (the queue itself carries no wakeup signal).
enum Cmd {
    Reset {
        reply: Sender<Result<Observation, CgError>>,
    },
    Step {
        action: usize,
        reply: Sender<Result<StepResult, CgError>>,
    },
    Wake,
}

/// A fixed-size pool of worker threads, each owning an in-process
/// [`CompilerEnv`]. See the module docs for the full contract.
pub struct EnvPool {
    cache: Arc<EvalCache>,
    queue: Arc<Mutex<VecDeque<Job>>>,
    cmd_txs: Vec<Sender<Cmd>>,
    handles: Vec<JoinHandle<()>>,
}

impl EnvPool {
    /// Spawns `workers` threads with a fresh default-capacity cache.
    pub fn new(workers: usize, factory: EnvFactory) -> EnvPool {
        EnvPool::with_cache(workers, factory, Arc::new(EvalCache::default()))
    }

    /// Spawns `workers` threads sharing `cache` (several pools — or a pool
    /// and a serial searcher — may share one cache).
    pub fn with_cache(workers: usize, factory: EnvFactory, cache: Arc<EvalCache>) -> EnvPool {
        let workers = workers.max(1);
        let queue: Arc<Mutex<VecDeque<Job>>> = Arc::new(Mutex::new(VecDeque::new()));
        let mut cmd_txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for widx in 0..workers {
            let (cmd_tx, cmd_rx) = crossbeam::channel::unbounded::<Cmd>();
            cmd_txs.push(cmd_tx);
            let f = Arc::clone(&factory);
            let c = Arc::clone(&cache);
            let q = Arc::clone(&queue);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("cg-pool-{widx}"))
                    .spawn(move || worker_main(widx, &f, &c, &q, &cmd_rx))
                    .expect("spawn pool worker"),
            );
        }
        cg_telemetry::global().pool.workers.set(workers as i64);
        EnvPool {
            cache,
            queue,
            cmd_txs,
            handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// The shared evaluation cache.
    pub fn cache(&self) -> &Arc<EvalCache> {
        &self.cache
    }

    /// Evaluates a batch of sequences across the pool, returning outcomes
    /// in request order. Jobs are independent: any job's failure (error or
    /// panic in the backing compiler) is reported in its own [`Outcome`]
    /// without stalling or poisoning the rest of the batch.
    pub fn evaluate_batch(&self, jobs: Vec<ActionSeq>) -> Vec<Outcome> {
        let tel = cg_telemetry::global();
        let timer = cg_telemetry::Timer::start();
        let n = jobs.len();
        let (reply_tx, reply_rx) = bounded::<(usize, Outcome)>(n.max(1));
        {
            let mut q = self.queue.lock();
            for (index, seq) in jobs.into_iter().enumerate() {
                tel.pool.queue_depth.inc();
                q.push_back(Job {
                    index,
                    seq,
                    reply: reply_tx.clone(),
                });
            }
        }
        drop(reply_tx);
        for tx in &self.cmd_txs {
            let _ = tx.send(Cmd::Wake);
        }
        let mut out: Vec<Option<Outcome>> = (0..n).map(|_| None).collect();
        while let Ok((i, o)) = reply_rx.recv() {
            out[i] = Some(o);
        }
        timer.observe(&tel.pool.batch_wall);
        out.into_iter()
            .map(|o| o.unwrap_or_else(|| Outcome::failed("pool worker lost".into())))
            .collect()
    }

    /// Starts one episode on every worker concurrently, returning each
    /// worker's initial observation (vectorized `reset`).
    pub fn reset_all(&self) -> Vec<Result<Observation, CgError>> {
        let channels: Vec<_> = self
            .cmd_txs
            .iter()
            .map(|tx| {
                let (reply, rx) = bounded(1);
                let sent = tx.send(Cmd::Reset { reply }).is_ok();
                (rx, sent)
            })
            .collect();
        channels
            .into_iter()
            .map(|(rx, sent)| recv_worker(rx, sent))
            .collect()
    }

    /// Applies `actions[i]` on worker `i`'s episode concurrently
    /// (vectorized `step`).
    ///
    /// # Panics
    /// Panics if `actions.len()` differs from the worker count.
    pub fn step_all(&self, actions: &[usize]) -> Vec<Result<StepResult, CgError>> {
        assert_eq!(actions.len(), self.cmd_txs.len(), "one action per worker");
        let channels: Vec<_> = self
            .cmd_txs
            .iter()
            .zip(actions)
            .map(|(tx, &action)| {
                let (reply, rx) = bounded(1);
                let sent = tx.send(Cmd::Step { action, reply }).is_ok();
                (rx, sent)
            })
            .collect();
        channels
            .into_iter()
            .map(|(rx, sent)| recv_worker(rx, sent))
            .collect()
    }
}

fn recv_worker<T>(rx: Receiver<Result<T, CgError>>, sent: bool) -> Result<T, CgError> {
    if !sent {
        return Err(CgError::ServiceFailure("pool worker lost".into()));
    }
    rx.recv()
        .unwrap_or_else(|_| Err(CgError::ServiceFailure("pool worker lost".into())))
}

impl Drop for EnvPool {
    fn drop(&mut self) {
        // Disconnect the command channels; each worker finishes what it
        // holds, sees the disconnect, and exits. Joining keeps telemetry
        // counters quiescent for callers that snapshot right after
        // dropping the pool.
        self.cmd_txs.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        cg_telemetry::global().pool.workers.set(0);
    }
}

fn worker_main(
    widx: usize,
    factory: &EnvFactory,
    cache: &Arc<EvalCache>,
    queue: &Mutex<VecDeque<Job>>,
    cmd_rx: &Receiver<Cmd>,
) {
    let mut env: Option<CompilerEnv> = None;
    loop {
        // Drain the shared job queue before blocking on commands. The lock
        // guards only the dequeue (in edition 2021 a `while let` on
        // `queue.lock().pop_front()` would hold the guard across the job,
        // serializing the pool).
        loop {
            let job = queue.lock().pop_front();
            match job {
                Some(job) => run_job(widx, &mut env, factory, cache, job),
                None => break,
            }
        }
        match cmd_rx.recv() {
            Err(_) => break,
            Ok(Cmd::Wake) => {}
            Ok(Cmd::Reset { reply }) => {
                let r = guarded(&mut env, factory, widx, |e| e.reset());
                let _ = reply.send(r);
            }
            Ok(Cmd::Step { action, reply }) => {
                let r = guarded(&mut env, factory, widx, |e| e.step(action));
                let _ = reply.send(r);
            }
        }
    }
}

/// Runs `f` over the worker's environment (building it on demand) under
/// panic isolation; a panic poisons the environment, which is rebuilt on
/// the next call.
fn guarded<T>(
    env: &mut Option<CompilerEnv>,
    factory: &EnvFactory,
    widx: usize,
    f: impl FnOnce(&mut CompilerEnv) -> Result<T, CgError>,
) -> Result<T, CgError> {
    let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
        if env.is_none() {
            *env = Some(factory(widx)?);
        }
        f(env.as_mut().expect("just built"))
    }));
    match run {
        Ok(r) => r,
        Err(_) => {
            cg_telemetry::global().pool.job_panics.inc();
            *env = None;
            Err(CgError::ServiceFailure(format!(
                "pool worker {widx} panicked"
            )))
        }
    }
}

fn run_job(
    widx: usize,
    env: &mut Option<CompilerEnv>,
    factory: &EnvFactory,
    cache: &Arc<EvalCache>,
    job: Job,
) {
    let tel = cg_telemetry::global();
    tel.pool.queue_depth.dec();
    let timer = cg_telemetry::Timer::start();
    // Each job is its own trace: pool workers interleave many benchmarks,
    // so a per-job root keeps every env/rpc span it causes attributable.
    let mut span = tel.trace.root_span("pool:job");
    span.attr("worker", widx.to_string());
    span.attr("benchmark", job.seq.benchmark.clone());
    let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
        evaluate_seq(env, factory, widx, cache, &job.seq)
    }));
    let outcome = match run {
        Ok(Ok(o)) => o,
        Ok(Err(e)) => {
            tel.pool.job_errors.inc();
            span.set_status(cg_telemetry::SpanStatus::Error);
            span.set_detail(e.to_string());
            Outcome::failed(e.to_string())
        }
        Err(_) => {
            // The environment (and its service client) may be mid-request:
            // drop it and rebuild lazily. The cache is only written *after*
            // a successful evaluation, so a panicking job cannot poison it.
            tel.pool.job_panics.inc();
            *env = None;
            span.set_status(cg_telemetry::SpanStatus::Error);
            span.set_detail("evaluation panicked");
            Outcome::failed(format!("evaluation panicked on pool worker {widx}"))
        }
    };
    tel.pool.jobs.inc();
    timer.observe(&tel.pool.job_wall);
    let _ = job.reply.send((job.index, outcome));
}

fn evaluate_seq(
    env_slot: &mut Option<CompilerEnv>,
    factory: &EnvFactory,
    widx: usize,
    cache: &EvalCache,
    seq: &ActionSeq,
) -> Result<Outcome, CgError> {
    if let Some(hit) = cache.lookup(&seq.benchmark, &seq.actions) {
        cg_telemetry::global()
            .pool
            .actions_saved
            .add(seq.actions.len() as u64);
        return Ok(Outcome {
            score: hit.score,
            metric: hit.metric,
            cached: true,
            error: None,
        });
    }
    if env_slot.is_none() {
        *env_slot = Some(factory(widx)?);
    }
    let env = env_slot.as_mut().expect("just built");
    env.set_benchmark(&seq.benchmark);
    let tel = cg_telemetry::global();
    let interval = cache.snapshot_interval();
    let mut depth = 0usize;
    let mut restored = false;
    if let Some((d, snap)) = cache.longest_prefix(&seq.benchmark, &seq.actions) {
        if env.restore_snapshot(&snap).is_ok() {
            depth = d;
            restored = true;
            tel.pool.prefix_hits.inc();
            tel.pool.actions_saved.add(d as u64);
        }
    }
    if !restored {
        env.reset()?;
    }
    while depth < seq.actions.len() {
        // Step to the next snapshot boundary in one batched round trip.
        let end = ((depth / interval + 1) * interval).min(seq.actions.len());
        env.step_batched(&seq.actions[depth..end])?;
        tel.pool.actions_executed.add((end - depth) as u64);
        depth = end;
        if depth.is_multiple_of(interval) {
            // Deposit the prefix for future searches; best effort (a
            // backend without state export just skips the trie).
            if let Ok(snap) = env.episode_snapshot() {
                cache.store_snapshot(snap);
            }
        }
    }
    let score = env.episode_reward();
    let metric = env.last_metric();
    cache.insert(&seq.benchmark, &seq.actions, score, metric);
    Ok(Outcome {
        score,
        metric,
        cached: false,
        error: None,
    })
}
