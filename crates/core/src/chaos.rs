//! Fault injection for the service runtime (the paper's robustness story,
//! §IV-B, made testable): wrap *any* [`SessionFactory`] in a seeded
//! [`FaultPlan`] that makes the underlying compiler panic, hang, error, or
//! corrupt its replies on schedule or with configured probabilities.
//!
//! The wrapped factory is indistinguishable from a real backend to the rest
//! of the stack, so the full recovery path — panic isolation, client
//! deadlines, service restarts, and mid-episode action-replay restoration —
//! is exercised exactly as it would be by a genuinely crashing compiler.
//! `cg chaos` drives whole episodes under an injected fault load and reports
//! recovery statistics from the telemetry snapshot; the integration and
//! property tests use scheduled faults for deterministic crash points.
//!
//! Fault decisions are pure functions of `(seed, event index)`, so a chaos
//! run is reproducible: the same seed injects the same faults at the same
//! points.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::retry::{splitmix64, unit_f64};
use crate::service::SessionFactory;
use crate::session::{ActionOutcome, CompilationSession};
use crate::space::{ActionSpaceInfo, Observation, ObservationSpaceInfo, RewardSpaceInfo};

/// The kinds of fault the injector can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside `apply_action` (a compiler crash; the service destroys
    /// the session and answers `Fatal`).
    Panic,
    /// Sleep for the plan's hang duration inside `apply_action` (a wedged
    /// compiler; the client deadline expires and the service is restarted).
    Hang,
    /// Return an error from `apply_action` (a compile failure; surfaced to
    /// the caller as a session error, by design not recovered).
    Error,
    /// Corrupt the next observation's value (a wrong-but-well-formed reply;
    /// detectable only by the replay consistency check).
    CorruptReply,
    /// Inflate the session's reported state size by the plan's growth
    /// increment on this and every later apply (a pass that blows up the
    /// module; caught by the resource budget's size cap, which kills the
    /// session in-band — the fresh session after recovery starts
    /// uninflated).
    SlowGrowth,
    /// Stop answering forever: this and every later `apply_action` and
    /// `observe` on the session blocks indefinitely without panicking or
    /// erroring. Caught only by the step wall budget or the watchdog
    /// heartbeat.
    Wedge,
    /// A connection stampede: a burst of simultaneous TCP connects against
    /// the service's front door mid-soak (a fleet of clients restarting at
    /// once). Unlike every other kind, this is not an in-session fault —
    /// the chaos *driver* (`cg chaos --faults stampede`) opens the burst
    /// against a broker-mode server and asserts established sessions keep
    /// progressing while excess connects are shed with typed refusals.
    /// Never sampled by the per-apply injector.
    Stampede,
    /// A disk-fault family (torn write, short read, ENOSPC, bit-flip on
    /// read) injected into the transition store's file layer rather than
    /// into a compiler session. Like [`FaultKind::Stampede`] this is a
    /// driver-level fault: `cg chaos --faults io` builds an
    /// [`IoFaultInjector`] and threads it through the store's WAL, which
    /// must recover every fault with typed, counted outcomes. Never
    /// sampled by the per-apply injector.
    IoFault,
}

/// The kinds of disk fault an [`IoFaultInjector`] can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFaultKind {
    /// A write persists only a prefix of the record (power loss mid-write).
    TornWrite,
    /// A read returns fewer bytes than the file holds at that offset.
    ShortRead,
    /// A write fails up front with `ENOSPC`; nothing is persisted.
    Enospc,
    /// A read returns the right length with one bit flipped (bit rot).
    BitFlip,
}

/// A seeded description of which disk faults to inject and how often.
/// Probabilities are per file operation (write ops sample
/// torn-write/ENOSPC, read ops sample short-read/bit-flip); decisions are
/// pure functions of `(seed, op index)`, so runs are reproducible.
#[derive(Debug, Clone)]
pub struct IoFaultPlan {
    /// Seed for the deterministic fault sampler.
    pub seed: u64,
    /// Per-write probability of a torn write.
    pub torn_write_prob: f64,
    /// Per-write probability of an `ENOSPC` failure.
    pub enospc_prob: f64,
    /// Per-read probability of a short read.
    pub short_read_prob: f64,
    /// Per-read probability of a flipped bit.
    pub bit_flip_prob: f64,
    /// Total injection budget; `None` is unlimited.
    pub max_faults: Option<u64>,
}

impl Default for IoFaultPlan {
    fn default() -> IoFaultPlan {
        IoFaultPlan {
            seed: 0,
            torn_write_prob: 0.0,
            enospc_prob: 0.0,
            short_read_prob: 0.0,
            bit_flip_prob: 0.0,
            max_faults: None,
        }
    }
}

impl IoFaultPlan {
    /// A fault-free plan with the given sampler seed.
    #[must_use]
    pub fn seeded(seed: u64) -> IoFaultPlan {
        IoFaultPlan {
            seed,
            ..IoFaultPlan::default()
        }
    }

    /// Sets the per-write torn-write probability.
    #[must_use]
    pub fn with_torn_write_prob(mut self, p: f64) -> IoFaultPlan {
        self.torn_write_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-write `ENOSPC` probability.
    #[must_use]
    pub fn with_enospc_prob(mut self, p: f64) -> IoFaultPlan {
        self.enospc_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-read short-read probability.
    #[must_use]
    pub fn with_short_read_prob(mut self, p: f64) -> IoFaultPlan {
        self.short_read_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-read bit-flip probability.
    #[must_use]
    pub fn with_bit_flip_prob(mut self, p: f64) -> IoFaultPlan {
        self.bit_flip_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Caps the total number of injected disk faults.
    #[must_use]
    pub fn with_max_faults(mut self, max: u64) -> IoFaultPlan {
        self.max_faults = Some(max);
        self
    }

    /// Builds the injector for this plan.
    #[must_use]
    pub fn injector(self) -> IoFaultInjector {
        IoFaultInjector {
            plan: self,
            stats: Arc::new(IoFaultStats::default()),
        }
    }
}

/// Counters for what an [`IoFaultInjector`] actually did.
#[derive(Debug, Default)]
pub struct IoFaultStats {
    writes: AtomicU64,
    reads: AtomicU64,
    torn_writes: AtomicU64,
    short_reads: AtomicU64,
    enospcs: AtomicU64,
    bit_flips: AtomicU64,
}

impl IoFaultStats {
    /// Write operations seen.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Read operations seen.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Injected torn writes.
    pub fn torn_writes(&self) -> u64 {
        self.torn_writes.load(Ordering::Relaxed)
    }

    /// Injected short reads.
    pub fn short_reads(&self) -> u64 {
        self.short_reads.load(Ordering::Relaxed)
    }

    /// Injected `ENOSPC` failures.
    pub fn enospcs(&self) -> u64 {
        self.enospcs.load(Ordering::Relaxed)
    }

    /// Injected bit flips.
    pub fn bit_flips(&self) -> u64 {
        self.bit_flips.load(Ordering::Relaxed)
    }

    /// Total disk faults injected, all kinds.
    pub fn injected(&self) -> u64 {
        self.torn_writes() + self.short_reads() + self.enospcs() + self.bit_flips()
    }
}

/// A seeded, deterministic disk-fault sampler consumed by the transition
/// store's WAL file layer. Cloning shares the op counters and stats, so one
/// injector can cover several files.
#[derive(Debug, Clone)]
pub struct IoFaultInjector {
    plan: IoFaultPlan,
    stats: Arc<IoFaultStats>,
}

impl IoFaultInjector {
    /// The shared fault counters.
    #[must_use]
    pub fn stats(&self) -> Arc<IoFaultStats> {
        Arc::clone(&self.stats)
    }

    fn budget_left(&self) -> bool {
        self.plan
            .max_faults
            .is_none_or(|max| self.stats.injected() < max)
    }

    /// Decides the fault (if any) for the next write operation, advancing
    /// the write-op counter and recording what fired.
    pub fn fault_for_write(&self) -> Option<IoFaultKind> {
        let idx = self.stats.writes.fetch_add(1, Ordering::Relaxed);
        if !self.budget_left() {
            return None;
        }
        let r = unit_f64(splitmix64(
            self.plan.seed ^ 0x10_F417 ^ idx.wrapping_mul(0x9E37_79B9),
        ));
        let mut acc = self.plan.torn_write_prob;
        if r < acc {
            self.stats.torn_writes.fetch_add(1, Ordering::Relaxed);
            return Some(IoFaultKind::TornWrite);
        }
        acc += self.plan.enospc_prob;
        if r < acc {
            self.stats.enospcs.fetch_add(1, Ordering::Relaxed);
            return Some(IoFaultKind::Enospc);
        }
        None
    }

    /// Decides the fault (if any) for the next read operation, advancing
    /// the read-op counter and recording what fired.
    pub fn fault_for_read(&self) -> Option<IoFaultKind> {
        let idx = self.stats.reads.fetch_add(1, Ordering::Relaxed);
        if !self.budget_left() {
            return None;
        }
        let r = unit_f64(splitmix64(
            self.plan.seed ^ 0x10_F41D ^ idx.wrapping_mul(0x85EB_CA6B),
        ));
        let mut acc = self.plan.short_read_prob;
        if r < acc {
            self.stats.short_reads.fetch_add(1, Ordering::Relaxed);
            return Some(IoFaultKind::ShortRead);
        }
        acc += self.plan.bit_flip_prob;
        if r < acc {
            self.stats.bit_flips.fetch_add(1, Ordering::Relaxed);
            return Some(IoFaultKind::BitFlip);
        }
        None
    }

    /// A deterministic sub-draw for where in a buffer a fault lands (the
    /// torn-write prefix length or the flipped bit index), derived from the
    /// op counters so it never perturbs the fault schedule itself.
    #[must_use]
    pub fn fault_offset(&self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        let idx = self
            .stats
            .writes
            .load(Ordering::Relaxed)
            .wrapping_add(self.stats.reads.load(Ordering::Relaxed));
        splitmix64(self.plan.seed ^ 0x000F_F5E7 ^ idx) % bound
    }
}

/// A seeded description of which faults to inject and when.
///
/// Faults fire either at scheduled *apply indices* (the running count of
/// `apply_action` calls across every session the wrapped factory produced —
/// replayed actions count too) or at random with the configured per-apply
/// probabilities. `CorruptReply` probability is evaluated per `observe`
/// call instead.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed for the deterministic fault sampler.
    pub seed: u64,
    /// Per-apply probability of an injected panic.
    pub panic_prob: f64,
    /// Per-apply probability of an injected hang.
    pub hang_prob: f64,
    /// Per-apply probability of an injected session error.
    pub error_prob: f64,
    /// Per-observe probability of a corrupted reply.
    pub corrupt_prob: f64,
    /// Per-apply probability of a slow-growth injection.
    pub slow_growth_prob: f64,
    /// Per-apply probability of wedging the session.
    pub wedge_prob: f64,
    /// How long an injected hang sleeps. Must exceed the client deadline to
    /// be observable as a fault.
    pub hang: Duration,
    /// How much each `SlowGrowth` fault inflates the session's reported
    /// state size.
    pub growth_increment: u64,
    /// One-shot faults at exact global apply indices (0-based).
    pub scheduled: Vec<(u64, FaultKind)>,
    /// Total injection budget across the plan's lifetime; `None` is
    /// unlimited. A budget guarantees an adversarial plan eventually lets
    /// recovery succeed.
    pub max_faults: Option<u64>,
    /// How many simultaneous connects a [`FaultKind::Stampede`] opens.
    /// Consumed by the chaos driver, not the in-session injector.
    pub stampede_size: usize,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            seed: 0,
            panic_prob: 0.0,
            hang_prob: 0.0,
            error_prob: 0.0,
            corrupt_prob: 0.0,
            slow_growth_prob: 0.0,
            wedge_prob: 0.0,
            hang: Duration::from_secs(1),
            growth_increment: 1_000,
            scheduled: Vec::new(),
            max_faults: None,
            stampede_size: 32,
        }
    }
}

impl FaultPlan {
    /// A fault-free plan with the given sampler seed.
    #[must_use]
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Sets the per-apply panic probability.
    #[must_use]
    pub fn with_panic_prob(mut self, p: f64) -> FaultPlan {
        self.panic_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-apply hang probability.
    #[must_use]
    pub fn with_hang_prob(mut self, p: f64) -> FaultPlan {
        self.hang_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-apply session-error probability.
    #[must_use]
    pub fn with_error_prob(mut self, p: f64) -> FaultPlan {
        self.error_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-observe corrupt-reply probability.
    #[must_use]
    pub fn with_corrupt_prob(mut self, p: f64) -> FaultPlan {
        self.corrupt_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-apply slow-growth probability.
    #[must_use]
    pub fn with_slow_growth_prob(mut self, p: f64) -> FaultPlan {
        self.slow_growth_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-apply wedge probability.
    #[must_use]
    pub fn with_wedge_prob(mut self, p: f64) -> FaultPlan {
        self.wedge_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the injected hang duration.
    #[must_use]
    pub fn with_hang_duration(mut self, hang: Duration) -> FaultPlan {
        self.hang = hang;
        self
    }

    /// Sets the per-fault state-size inflation of `SlowGrowth`.
    #[must_use]
    pub fn with_growth_increment(mut self, increment: u64) -> FaultPlan {
        self.growth_increment = increment;
        self
    }

    /// Schedules a one-shot fault at a global apply index.
    #[must_use]
    pub fn schedule(mut self, apply_index: u64, kind: FaultKind) -> FaultPlan {
        self.scheduled.push((apply_index, kind));
        self
    }

    /// Caps the total number of injected faults.
    #[must_use]
    pub fn with_max_faults(mut self, max: u64) -> FaultPlan {
        self.max_faults = Some(max);
        self
    }

    /// Sets the size of a connection stampede burst.
    #[must_use]
    pub fn with_stampede_size(mut self, connects: usize) -> FaultPlan {
        self.stampede_size = connects.max(1);
        self
    }

    /// Wraps a session factory so every session it produces injects this
    /// plan's faults. Returns the wrapped factory and a shared [`ChaosStats`]
    /// handle counting what was actually injected.
    #[must_use]
    pub fn wrap(self, inner: SessionFactory) -> (SessionFactory, Arc<ChaosStats>) {
        chaos_factory(inner, self)
    }
}

/// Counters for what the injector actually did, shared across every session
/// (and fork) produced by one wrapped factory.
#[derive(Debug, Default)]
pub struct ChaosStats {
    applies: AtomicU64,
    observes: AtomicU64,
    panics: AtomicU64,
    hangs: AtomicU64,
    errors: AtomicU64,
    corruptions: AtomicU64,
    slow_growths: AtomicU64,
    wedges: AtomicU64,
    stampedes: AtomicU64,
}

impl ChaosStats {
    /// Total `apply_action` calls seen (including replayed actions).
    pub fn applies(&self) -> u64 {
        self.applies.load(Ordering::Relaxed)
    }

    /// Total `observe` calls seen.
    pub fn observes(&self) -> u64 {
        self.observes.load(Ordering::Relaxed)
    }

    /// Injected panics.
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Injected hangs.
    pub fn hangs(&self) -> u64 {
        self.hangs.load(Ordering::Relaxed)
    }

    /// Injected session errors.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Injected corrupted replies.
    pub fn corruptions(&self) -> u64 {
        self.corruptions.load(Ordering::Relaxed)
    }

    /// Injected slow-growth inflations.
    pub fn slow_growths(&self) -> u64 {
        self.slow_growths.load(Ordering::Relaxed)
    }

    /// Injected wedges.
    pub fn wedges(&self) -> u64 {
        self.wedges.load(Ordering::Relaxed)
    }

    /// Connection stampedes driven against the front door.
    pub fn stampedes(&self) -> u64 {
        self.stampedes.load(Ordering::Relaxed)
    }

    /// Records one driver-injected connection stampede.
    pub fn record_stampede(&self) {
        self.stampedes.fetch_add(1, Ordering::Relaxed);
    }

    /// Total faults injected, all kinds.
    pub fn injected(&self) -> u64 {
        self.panics()
            + self.hangs()
            + self.errors()
            + self.corruptions()
            + self.slow_growths()
            + self.wedges()
    }
}

struct ChaosShared {
    plan: FaultPlan,
    stats: Arc<ChaosStats>,
}

impl ChaosShared {
    fn budget_left(&self) -> bool {
        self.plan
            .max_faults
            .is_none_or(|max| self.stats.injected() < max)
    }

    /// Decides the fault (if any) for the next `apply_action`, advancing the
    /// global apply counter.
    fn fault_for_apply(&self) -> Option<FaultKind> {
        let idx = self.stats.applies.fetch_add(1, Ordering::Relaxed);
        if !self.budget_left() {
            return None;
        }
        if let Some(&(_, kind)) = self.plan.scheduled.iter().find(|&&(i, _)| i == idx) {
            return Some(kind);
        }
        let r = unit_f64(splitmix64(self.plan.seed ^ idx.wrapping_mul(0x9E37_79B9)));
        let p = &self.plan;
        let mut acc = p.panic_prob;
        if r < acc {
            return Some(FaultKind::Panic);
        }
        acc += p.hang_prob;
        if r < acc {
            return Some(FaultKind::Hang);
        }
        acc += p.error_prob;
        if r < acc {
            return Some(FaultKind::Error);
        }
        acc += p.slow_growth_prob;
        if r < acc {
            return Some(FaultKind::SlowGrowth);
        }
        acc += p.wedge_prob;
        if r < acc {
            return Some(FaultKind::Wedge);
        }
        None
    }

    /// Decides whether the next `observe` reply is corrupted.
    fn corrupt_next_observe(&self) -> bool {
        let idx = self.stats.observes.fetch_add(1, Ordering::Relaxed);
        if !self.budget_left() || self.plan.corrupt_prob <= 0.0 {
            return false;
        }
        let r = unit_f64(splitmix64(
            self.plan.seed ^ 0x00C0_FFEE ^ idx.wrapping_mul(0x85EB_CA6B),
        ));
        r < self.plan.corrupt_prob
    }
}

/// A [`CompilationSession`] that behaves exactly like its inner session
/// except when the plan says otherwise.
struct ChaosSession {
    inner: Box<dyn CompilationSession>,
    shared: Arc<ChaosShared>,
    /// Extra state size reported on top of the inner session's, accumulated
    /// by `SlowGrowth` faults. Not captured by `save_state`, so a session
    /// restored from a checkpoint (or started fresh) is uninflated — the
    /// recovery path escapes the growth.
    inflation: u64,
    /// Set by a `Wedge` fault: every later call blocks forever.
    wedged: bool,
}

/// Blocks the calling thread forever (a wedged compiler: alive, consuming a
/// worker, answering nothing).
fn wedge_forever() -> ! {
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn corrupt(obs: Observation) -> Observation {
    match obs {
        Observation::Scalar(x) => Observation::Scalar(x + 1.0),
        Observation::IntVector(mut v) => {
            if let Some(first) = v.first_mut() {
                *first = first.wrapping_add(1);
            }
            Observation::IntVector(v)
        }
        Observation::FloatVector(mut v) => {
            if let Some(first) = v.first_mut() {
                *first += 1.0;
            }
            Observation::FloatVector(v)
        }
        Observation::Text(t) => Observation::Text(format!("{t}\n; chaos: corrupted")),
        Observation::Bytes(mut b) => {
            if let Some(first) = b.first_mut() {
                *first = first.wrapping_add(1);
            }
            Observation::Bytes(b)
        }
        other => other,
    }
}

impl CompilationSession for ChaosSession {
    fn action_spaces(&self) -> Vec<ActionSpaceInfo> {
        self.inner.action_spaces()
    }

    fn observation_spaces(&self) -> Vec<ObservationSpaceInfo> {
        self.inner.observation_spaces()
    }

    fn reward_spaces(&self) -> Vec<RewardSpaceInfo> {
        self.inner.reward_spaces()
    }

    fn init(&mut self, benchmark: &str, action_space: usize) -> Result<(), String> {
        // Startup is fault-free by design: recovery re-establishes sessions
        // via `StartSession`, and an injector that always kills startup
        // would make every plan unrecoverable.
        self.inner.init(benchmark, action_space)
    }

    fn apply_action(&mut self, action: usize) -> Result<ActionOutcome, String> {
        if self.wedged {
            wedge_forever();
        }
        match self.shared.fault_for_apply() {
            Some(FaultKind::Panic) => {
                self.shared.stats.panics.fetch_add(1, Ordering::Relaxed);
                panic!("chaos: injected panic");
            }
            Some(FaultKind::Hang) => {
                self.shared.stats.hangs.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(self.shared.plan.hang);
                // The worker has usually been abandoned by now; finish the
                // action anyway so a patient client sees consistent state.
                self.inner.apply_action(action)
            }
            Some(FaultKind::Error) => {
                self.shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                Err("chaos: injected error".into())
            }
            Some(FaultKind::SlowGrowth) => {
                self.shared
                    .stats
                    .slow_growths
                    .fetch_add(1, Ordering::Relaxed);
                self.inflation += self.shared.plan.growth_increment;
                self.inner.apply_action(action)
            }
            Some(FaultKind::Wedge) => {
                self.shared.stats.wedges.fetch_add(1, Ordering::Relaxed);
                self.wedged = true;
                wedge_forever();
            }
            // CorruptReply fires on observe; Stampede and IoFault are
            // driver-level faults injected outside the session entirely.
            Some(FaultKind::CorruptReply | FaultKind::Stampede | FaultKind::IoFault) | None => {
                self.inner.apply_action(action)
            }
        }
    }

    fn observe(&mut self, space: &str) -> Result<Observation, String> {
        if self.wedged {
            wedge_forever();
        }
        let obs = self.inner.observe(space)?;
        if self.shared.corrupt_next_observe() {
            self.shared
                .stats
                .corruptions
                .fetch_add(1, Ordering::Relaxed);
            Ok(corrupt(obs))
        } else {
            Ok(obs)
        }
    }

    fn fork(&self) -> Box<dyn CompilationSession> {
        Box::new(ChaosSession {
            inner: self.inner.fork(),
            shared: Arc::clone(&self.shared),
            inflation: self.inflation,
            wedged: self.wedged,
        })
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        // Inflation is deliberately not captured: restoring a checkpoint
        // (like starting fresh) sheds the injected growth, which is exactly
        // how a real module-inflating pass behaves under recovery.
        self.inner.save_state()
    }

    fn load_state(&mut self, state: &[u8]) -> Result<(), String> {
        self.inner.load_state(state)
    }

    fn state_size(&self) -> Option<u64> {
        self.inner.state_size().map(|s| s + self.inflation)
    }

    fn apply_budget(&mut self, budget: &crate::budget::ResourceBudget) {
        self.inner.apply_budget(budget);
    }
}

/// Wraps `inner` so every session it produces injects `plan`'s faults.
/// All sessions (across service restarts, and their forks) share one fault
/// schedule and one [`ChaosStats`].
#[must_use]
pub fn chaos_factory(inner: SessionFactory, plan: FaultPlan) -> (SessionFactory, Arc<ChaosStats>) {
    let stats = Arc::new(ChaosStats::default());
    let shared = Arc::new(ChaosShared {
        plan,
        stats: Arc::clone(&stats),
    });
    let factory: SessionFactory = Arc::new(move || {
        Box::new(ChaosSession {
            inner: (inner)(),
            shared: Arc::clone(&shared),
            inflation: 0,
            wedged: false,
        })
    });
    (factory, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial deterministic inner session: metric = number of applies.
    struct CountSession {
        steps: usize,
    }

    impl CompilationSession for CountSession {
        fn action_spaces(&self) -> Vec<ActionSpaceInfo> {
            vec![ActionSpaceInfo {
                name: "count".into(),
                actions: vec!["a".into(); 4],
            }]
        }
        fn observation_spaces(&self) -> Vec<ObservationSpaceInfo> {
            vec![]
        }
        fn reward_spaces(&self) -> Vec<RewardSpaceInfo> {
            vec![]
        }
        fn init(&mut self, _b: &str, _s: usize) -> Result<(), String> {
            Ok(())
        }
        fn apply_action(&mut self, _a: usize) -> Result<ActionOutcome, String> {
            self.steps += 1;
            Ok(ActionOutcome {
                end_of_episode: false,
                action_space_changed: false,
                changed: true,
            })
        }
        fn observe(&mut self, _s: &str) -> Result<Observation, String> {
            Ok(Observation::Scalar(self.steps as f64))
        }
        fn fork(&self) -> Box<dyn CompilationSession> {
            Box::new(CountSession { steps: self.steps })
        }
        fn state_size(&self) -> Option<u64> {
            Some(self.steps as u64)
        }
        fn save_state(&self) -> Option<Vec<u8>> {
            Some((self.steps as u64).to_le_bytes().to_vec())
        }
        fn load_state(&mut self, state: &[u8]) -> Result<(), String> {
            let bytes: [u8; 8] = state.try_into().map_err(|_| "bad snapshot".to_string())?;
            self.steps = u64::from_le_bytes(bytes) as usize;
            Ok(())
        }
    }

    fn count_factory() -> SessionFactory {
        Arc::new(|| Box::new(CountSession { steps: 0 }))
    }

    #[test]
    fn scheduled_fault_fires_exactly_once() {
        let (factory, stats) = FaultPlan::seeded(1)
            .schedule(2, FaultKind::Error)
            .wrap(count_factory());
        let mut s = factory();
        s.init("x", 0).unwrap();
        assert!(s.apply_action(0).is_ok()); // apply 0
        assert!(s.apply_action(0).is_ok()); // apply 1
        assert!(s.apply_action(0).is_err()); // apply 2: scheduled error
        assert!(s.apply_action(0).is_ok()); // apply 3: one-shot, passed
        assert_eq!(stats.errors(), 1);
        assert_eq!(stats.applies(), 4);
    }

    #[test]
    fn fault_budget_stops_injection() {
        let (factory, stats) = FaultPlan::seeded(9)
            .with_error_prob(1.0)
            .with_max_faults(2)
            .wrap(count_factory());
        let mut s = factory();
        s.init("x", 0).unwrap();
        let mut errors = 0;
        for _ in 0..10 {
            if s.apply_action(0).is_err() {
                errors += 1;
            }
        }
        assert_eq!(errors, 2, "budget caps injection");
        assert_eq!(stats.injected(), 2);
    }

    #[test]
    fn sampling_is_deterministic_in_the_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let (factory, _) = FaultPlan::seeded(seed)
                .with_error_prob(0.5)
                .wrap(count_factory());
            let mut s = factory();
            s.init("x", 0).unwrap();
            (0..32).map(|_| s.apply_action(0).is_err()).collect()
        };
        assert_eq!(run(7), run(7), "same seed, same fault sequence");
        assert_ne!(run(7), run(8), "different seeds diverge");
    }

    #[test]
    fn corrupt_reply_perturbs_observations() {
        let (factory, stats) = FaultPlan::seeded(3)
            .with_corrupt_prob(1.0)
            .wrap(count_factory());
        let mut s = factory();
        s.init("x", 0).unwrap();
        s.apply_action(0).unwrap();
        let obs = s.observe("steps").unwrap();
        assert_eq!(obs, Observation::Scalar(2.0), "1 step, corrupted by +1");
        assert_eq!(stats.corruptions(), 1);
    }

    #[test]
    fn slow_growth_inflates_reported_size_but_not_snapshots() {
        let (factory, stats) = FaultPlan::seeded(5)
            .schedule(1, FaultKind::SlowGrowth)
            .with_growth_increment(500)
            .wrap(count_factory());
        let mut s = factory();
        s.init("x", 0).unwrap();
        s.apply_action(0).unwrap(); // apply 0: clean
        assert_eq!(s.state_size(), Some(1));
        s.apply_action(0).unwrap(); // apply 1: slow growth
        assert_eq!(s.state_size(), Some(2 + 500), "reported size is inflated");
        assert_eq!(stats.slow_growths(), 1);
        // A snapshot round trip sheds the inflation: recovery escapes it.
        let snap = s.save_state().unwrap();
        let mut fresh = factory();
        fresh.init("x", 0).unwrap();
        fresh.load_state(&snap).unwrap();
        assert_eq!(fresh.state_size(), Some(2));
    }

    #[test]
    fn io_injector_is_deterministic_and_budgeted() {
        let run = |seed: u64| -> Vec<Option<IoFaultKind>> {
            let inj = IoFaultPlan::seeded(seed)
                .with_torn_write_prob(0.3)
                .with_enospc_prob(0.2)
                .injector();
            (0..64).map(|_| inj.fault_for_write()).collect()
        };
        assert_eq!(run(11), run(11), "same seed, same fault sequence");
        assert_ne!(run(11), run(12), "different seeds diverge");

        let inj = IoFaultPlan::seeded(3)
            .with_bit_flip_prob(1.0)
            .with_max_faults(4)
            .injector();
        let injected = (0..32).filter(|_| inj.fault_for_read().is_some()).count();
        assert_eq!(injected, 4, "budget caps injection");
        assert_eq!(inj.stats().bit_flips(), 4);
        assert_eq!(inj.stats().reads(), 32);
    }

    #[test]
    fn io_fault_offsets_stay_in_bounds() {
        let inj = IoFaultPlan::seeded(9).injector();
        for bound in [1u64, 2, 7, 1024] {
            for _ in 0..16 {
                let _ = inj.fault_for_write();
                assert!(inj.fault_offset(bound) < bound);
            }
        }
        assert_eq!(inj.fault_offset(0), 0);
    }

    #[test]
    fn forks_share_the_fault_schedule() {
        let (factory, stats) = FaultPlan::seeded(1)
            .schedule(1, FaultKind::Error)
            .wrap(count_factory());
        let mut a = factory();
        a.init("x", 0).unwrap();
        a.apply_action(0).unwrap(); // apply 0
        let mut b = a.fork();
        assert!(
            b.apply_action(0).is_err(),
            "fork draws from the same schedule (apply 1)"
        );
        assert_eq!(stats.applies(), 2);
    }
}
