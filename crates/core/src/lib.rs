//! # cg-core: the CompilerGym core
//!
//! The paper's primary contribution: a Gym-style environment abstraction for
//! compiler optimization tasks, backed by a client–server runtime that
//! isolates compiler backends behind an RPC boundary.
//!
//! * [`space`] — action/observation/reward space descriptions and values
//! * [`session`] — the 4-method [`session::CompilationSession`] interface
//!   compilers implement (Figure 5)
//! * [`envs`] — the three shipped integrations: LLVM phase ordering, GCC
//!   flag tuning, `loop_tool` CUDA loop nests
//! * [`service`] — the compiler service runtime: session workers, RPC
//!   transports (in-process and TCP), timeouts, panic isolation, retries,
//!   and the parsed-benchmark cache
//! * [`env`] — the user-facing [`env::CompilerEnv`] with `reset`/`step`/
//!   `fork`, batched and lazy stepping, and transparent mid-episode fault
//!   recovery by action replay
//! * [`retry`] — the [`retry::RetryPolicy`] governing attempts, backoff
//!   with deterministic jitter, per-request deadlines, and budgets
//! * [`checkpoint`] — session snapshots every K actions into a
//!   client-owned ring, making recovery O(K) instead of O(episode)
//! * [`budget`] — in-service resource budgets (step wall-clock, state-size
//!   growth, interpreter fuel) answered as typed in-band errors
//! * [`watchdog`] — a supervisor heartbeating the service and proactively
//!   restarting silently-wedged workers
//! * [`breaker`] — a per-(benchmark, action) circuit breaker quarantining
//!   pairs that repeatedly kill services
//! * [`chaos`] — seeded fault injection for any session factory, used by
//!   the `cg chaos` soak harness
//! * [`wrappers`] — TimeLimit, CycleOverBenchmarks, action subsets, and
//!   observation composition
//! * [`state`] — environment state (de)serialization and replay validation
//! * [`validation`] — semantics validation by differential execution
//!
//! # Example
//!
//! ```
//! use cg_core::make;
//!
//! let mut env = make("llvm-v0")?;
//! env.set_benchmark("benchmark://cbench-v1/crc32");
//! env.set_observation_space("Autophase");
//! env.set_reward_space("IrInstructionCount");
//! let _obs = env.reset()?;
//! let step = env.step(env.action_space().index_of("mem2reg").unwrap())?;
//! assert!(step.reward > 0.0, "mem2reg removes instructions");
//! # Ok::<(), cg_core::CgError>(())
//! ```

pub mod breaker;
pub mod broker;
pub mod budget;
pub mod chaos;
pub mod checkpoint;
pub mod env;
pub mod envs;
pub mod evalcache;
pub mod pool;
pub mod retry;
pub mod service;
pub mod session;
pub mod sink;
pub mod space;
pub mod state;
pub mod validation;
pub mod watchdog;
pub mod wire;
pub mod wrappers;

mod error;

pub use breaker::{Admission, BreakerState, CircuitBreaker};
pub use broker::{Broker, BrokerConfig, DrainReport, Submitted, TenantQuota, ANONYMOUS_TENANT};
pub use budget::{BudgetKind, BudgetViolation, ResourceBudget};
pub use chaos::{IoFaultInjector, IoFaultKind, IoFaultPlan, IoFaultStats};
pub use checkpoint::{Checkpoint, CheckpointSink, CheckpointStore};
pub use env::{
    make, make_with_policy, register_env_scheme, CompilerEnv, EpisodeSnapshot, SchemeFactory,
    StepResult, Transport,
};
pub use error::CgError;
pub use evalcache::EvalCache;
pub use pool::{ActionSeq, EnvFactory, EnvPool, Outcome};
pub use retry::RetryPolicy;
pub use session::CompilationSession;
pub use sink::{clear_transition_sink, install_transition_sink, transition_sink, TransitionSink};
pub use space::{ActionSpaceInfo, Observation, ObservationSpaceInfo, RewardSpaceInfo};
pub use state::EnvState;
pub use watchdog::{Watchdog, WatchdogConfig};
pub use wire::WireCodec;
