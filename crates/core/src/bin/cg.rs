//! `cg`: the command-line interface (§III-D) — inspect environments, run
//! random searches, replay and validate saved states, all without writing
//! code.
//!
//! ```text
//! cg describe <env>                         list spaces and actions
//! cg random <env> <benchmark> <steps>       run a random episode
//! cg replay <state.json>                    replay a saved state
//! cg validate <state.json>                  validate reproducibility
//! cg datasets                               list benchmark datasets
//! cg stats [--json] <env> <benchmark> <steps>   episode + telemetry report
//! cg trace <env> <benchmark> <steps>        episode + JSONL trace dump
//! cg chaos [flags]                          soak episodes under fault injection
//! cg fuzz [flags]                           differential pass-pipeline fuzzing
//! ```

use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  cg describe <env>\n  cg random <env> <benchmark> <steps>\n  \
         cg replay <state.json>\n  cg validate <state.json>\n  cg datasets\n  \
         cg stats [--json] <env> <benchmark> <steps>\n  cg trace <env> <benchmark> <steps>\n  \
         cg chaos [--episodes N] [--steps N] [--seed S] [--panic P] [--hang P]\n           \
         [--error P] [--corrupt P] [--wedge P] [--slow-growth P] [--faults LIST]\n           \
         [--timeout-ms MS] [--checkpoint-k K] [--budget-wall-ms MS] [--max-growth F]\n           \
         [--watchdog-ms MS] [--breaker N] [--breaker-cooldown-ms MS] [--json]\n  \
         cg fuzz [--seed-range A..B] [--jobs N] [--profile NAME] [--max-passes N]\n          \
         [--inputs N] [--corpus DIR] [--no-corpus] [--budget-secs N]\n          \
         [--reduce-budget N] [--smoke] [--json]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("describe") => describe(args.get(1).map(String::as_str).unwrap_or("llvm-v0")),
        Some("random") => {
            let env = args.get(1).cloned().unwrap_or_else(|| "llvm-v0".into());
            let bench = args
                .get(2)
                .cloned()
                .unwrap_or_else(|| "benchmark://cbench-v1/qsort".into());
            let steps = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(50);
            random(&env, &bench, steps)
        }
        Some("replay") => replay(args.get(1).map(String::as_str), false),
        Some("validate") => replay(args.get(1).map(String::as_str), true),
        Some("stats") | Some("trace") => {
            let as_trace = args[0] == "trace";
            let rest: Vec<&String> = args[1..].iter().filter(|a| *a != "--json").collect();
            let json = args.iter().any(|a| a == "--json");
            let env = rest.first().map(|s| s.as_str()).unwrap_or("llvm-v0").to_string();
            let bench = rest
                .get(1)
                .map(|s| s.as_str())
                .unwrap_or("benchmark://cbench-v1/qsort")
                .to_string();
            let steps = rest.get(2).and_then(|s| s.parse().ok()).unwrap_or(50);
            if as_trace {
                trace(&env, &bench, steps)
            } else {
                stats(&env, &bench, steps, json)
            }
        }
        Some("chaos") => chaos(&args[1..]),
        Some("fuzz") => fuzz(&args[1..]),
        Some("datasets") => {
            for d in cg_datasets::datasets() {
                println!(
                    "{:<18} {:>12}  {}",
                    d.name,
                    d.len().map(|n| n.to_string()).unwrap_or_else(|| "2^32".into()),
                    d.description
                );
            }
            Ok(())
        }
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn describe(env_id: &str) -> Result<(), Box<dyn std::error::Error>> {
    let env = cg_core::make(env_id)?;
    println!("environment: {env_id}");
    for a in env.action_spaces() {
        println!("action space {:?}: {} actions", a.name, a.len());
        for (i, n) in a.actions.iter().enumerate().take(12) {
            println!("  [{i:>3}] {n}");
        }
        if a.len() > 12 {
            println!("  … {} more", a.len() - 12);
        }
    }
    println!("observation spaces:");
    for o in env.observation_spaces() {
        println!(
            "  {:<24} {:?}{}{}",
            o.name,
            o.kind,
            if o.deterministic { "" } else { ", nondeterministic" },
            if o.platform_dependent { ", platform-dependent" } else { "" }
        );
    }
    println!("reward spaces:");
    for r in env.reward_spaces() {
        println!(
            "  {:<24} metric={}{}",
            r.name,
            r.metric,
            r.baseline.as_deref().map(|b| format!(", scaled by {b}")).unwrap_or_default()
        );
    }
    Ok(())
}

fn random(env_id: &str, benchmark: &str, steps: usize) -> Result<(), Box<dyn std::error::Error>> {
    use rand::Rng as _;
    let mut env = cg_core::make(env_id)?;
    env.set_benchmark(benchmark);
    env.reset()?;
    let mut rng = rand::thread_rng();
    let n = env.action_space().len();
    for _ in 0..steps {
        let a = rng.gen_range(0..n);
        let step = env.step(a)?;
        if step.reward != 0.0 {
            println!("{:<28} {:+.4}", env.action_space().actions[a], step.reward);
        }
    }
    println!("episode reward: {:+.4}", env.episode_reward());
    println!("state:\n{}", env.state().to_json());
    Ok(())
}

/// Drives one random episode so the telemetry layer has something to report.
fn run_episode(
    env_id: &str,
    benchmark: &str,
    steps: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    use rand::Rng as _;
    let mut env = cg_core::make(env_id)?;
    env.set_benchmark(benchmark);
    env.reset()?;
    let mut rng = rand::thread_rng();
    let n = env.action_space().len();
    for _ in 0..steps {
        let a = rng.gen_range(0..n);
        if env.step(a)?.done {
            break;
        }
    }
    Ok(())
}

/// Renders microseconds human-readably (µs / ms / s).
fn fmt_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

fn stats(
    env_id: &str,
    benchmark: &str,
    steps: usize,
    json: bool,
) -> Result<(), Box<dyn std::error::Error>> {
    let tel = cg_telemetry::global();
    tel.reset();
    run_episode(env_id, benchmark, steps)?;
    let snap = tel.snapshot();
    if json {
        println!("{}", serde_json::to_string_pretty(&snap)?);
        return Ok(());
    }
    println!("telemetry for {env_id} on {benchmark} ({steps} random steps)\n");
    println!("service requests:");
    println!(
        "  {:<14} {:>7} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "kind", "count", "p50", "p90", "p99", "max", "errors"
    );
    for (kind, h) in &snap.requests {
        let errors = snap.request_errors.get(kind).copied().unwrap_or(0);
        println!(
            "  {:<14} {:>7} {:>9} {:>9} {:>9} {:>9} {:>7}",
            kind,
            h.count,
            fmt_us(h.p50_micros),
            fmt_us(h.p90_micros),
            fmt_us(h.p99_micros),
            fmt_us(h.max_micros),
            errors
        );
    }
    println!(
        "\nservice health: restarts={} panics={} timeouts={} in-flight={}",
        snap.restarts, snap.panics, snap.timeouts, snap.in_flight
    );
    println!(
        "containment: checkpoints={} restores={} budget-kills={} watchdog-restarts={} \
         breaker trips={} half-opens={} fast-fails={}",
        snap.checkpoints_taken,
        snap.checkpoint_restores,
        snap.budget_kills,
        snap.watchdog_restarts,
        snap.breaker_trips,
        snap.breaker_half_opens,
        snap.breaker_fast_fails
    );
    let ep = &snap.episode;
    let changed_pct = if ep.actions_total == 0 {
        0.0
    } else {
        100.0 * ep.actions_changed as f64 / ep.actions_total as f64
    };
    println!(
        "\nepisode: episodes={} steps={} actions={} changed={:.0}% reward={:+.4}",
        ep.episodes, ep.steps, ep.actions_total, changed_pct, ep.reward_sum
    );
    println!(
        "  reset  p50={} max={}",
        fmt_us(ep.reset_wall.p50_micros),
        fmt_us(ep.reset_wall.max_micros)
    );
    println!(
        "  step   p50={} p99={} max={}",
        fmt_us(ep.step_wall.p50_micros),
        fmt_us(ep.step_wall.p99_micros),
        fmt_us(ep.step_wall.max_micros)
    );
    if !snap.observations.is_empty() {
        println!("\nobservations:");
        for (name, h) in &snap.observations {
            println!(
                "  {:<24} count={:<5} p50={} p99={}",
                name,
                h.count,
                fmt_us(h.p50_micros),
                fmt_us(h.p99_micros)
            );
        }
    }
    if !snap.passes.is_empty() {
        println!("\ntop passes by total time:");
        let mut passes: Vec<_> = snap.passes.iter().collect();
        passes.sort_by_key(|(_, p)| std::cmp::Reverse(p.total_micros));
        for (name, p) in passes.iter().take(15) {
            println!(
                "  {:<28} calls={:<4} total={:<9} changed={:<4} Δinst={:+}",
                name,
                p.calls,
                fmt_us(p.total_micros),
                p.changed,
                p.inst_delta
            );
        }
    }
    if snap.fuzz.cases > 0 {
        println!(
            "\nfuzz: cases={} divergences={} shrunk={} verifier-rejects={} pass-panics={}",
            snap.fuzz.cases,
            snap.fuzz.divergences,
            snap.fuzz.shrunk,
            snap.fuzz.verifier_rejects,
            snap.fuzz.pass_panics
        );
        let mut blame: Vec<_> = snap.fuzz.blame.iter().collect();
        blame.sort_by_key(|(_, n)| std::cmp::Reverse(**n));
        for (pass, n) in blame.iter().take(10) {
            println!("  blame {pass:<26} {n}");
        }
    }
    println!(
        "\ntrace: {} buffered event(s), {} dropped (see `cg trace`)",
        snap.trace_events, snap.trace_dropped
    );
    Ok(())
}

fn trace(env_id: &str, benchmark: &str, steps: usize) -> Result<(), Box<dyn std::error::Error>> {
    let tel = cg_telemetry::global();
    tel.reset();
    run_episode(env_id, benchmark, steps)?;
    print!("{}", tel.trace.export_jsonl());
    Ok(())
}

/// The `cg fuzz` surface: differential pass-pipeline fuzzing with the
/// `cg-difftest` engine. Samples random programs and random pipelines over
/// the full action space, judges each with the interpreter oracle, shrinks
/// any divergence to a minimal reproducer in the corpus directory, and
/// exits non-zero if anything diverged. `--smoke` is the CI configuration:
/// a fixed seed range under a strict wall-clock budget.
fn fuzz(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use cg_difftest::{run_fuzz, FuzzConfig};
    use std::time::Duration;

    let mut cfg = FuzzConfig {
        jobs: 4,
        corpus_dir: Some(cg_difftest::repro::default_corpus_dir()),
        ..FuzzConfig::default()
    };
    let mut json = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<&String, Box<dyn std::error::Error>> {
            it.next().ok_or_else(|| format!("{name} needs a value").into())
        };
        match flag.as_str() {
            "--seed-range" => {
                let raw = val("--seed-range")?;
                let (a, b) = raw
                    .split_once("..")
                    .ok_or_else(|| format!("--seed-range wants A..B, got `{raw}`"))?;
                cfg.seed_start = a.parse()?;
                cfg.seed_end = b.parse()?;
            }
            "--jobs" => cfg.jobs = val("--jobs")?.parse()?,
            "--profile" => {
                let name = val("--profile")?.clone();
                if cg_datasets::synth::Profile::named(&name).is_none() {
                    return Err(format!(
                        "unknown profile `{name}` (available: {})",
                        cg_datasets::synth::FUZZ_PROFILES.join(", ")
                    )
                    .into());
                }
                cfg.profile = Some(name);
            }
            "--max-passes" => cfg.max_passes = val("--max-passes")?.parse()?,
            "--inputs" => cfg.extra_inputs = val("--inputs")?.parse()?,
            "--corpus" => cfg.corpus_dir = Some(val("--corpus")?.into()),
            "--no-corpus" => cfg.corpus_dir = None,
            "--budget-secs" => {
                cfg.budget = Some(Duration::from_secs(val("--budget-secs")?.parse()?));
            }
            "--reduce-budget" => cfg.reduce_budget = val("--reduce-budget")?.parse()?,
            "--smoke" => {
                // The CI configuration: fixed seeds, bounded wall-clock.
                cfg.seed_start = 0;
                cfg.seed_end = 500;
                cfg.budget = Some(Duration::from_secs(60));
            }
            "--json" => json = true,
            other => return Err(format!("unknown fuzz flag `{other}`").into()),
        }
    }

    let tel = cg_telemetry::global();
    tel.reset();
    let report = run_fuzz(&cfg);
    let snap = tel.snapshot();

    if json {
        #[derive(serde::Serialize)]
        struct DivJson {
            seed: u64,
            profile: String,
            deopt: bool,
            pipeline: Vec<String>,
            failure: String,
            ir_lines: usize,
            repro: Option<String>,
        }
        #[derive(serde::Serialize)]
        struct FuzzJson {
            cases: u64,
            skipped: u64,
            elapsed_ms: u64,
            divergences: Vec<DivJson>,
            telemetry: cg_telemetry::FuzzSnapshot,
        }
        let out = FuzzJson {
            cases: report.cases,
            skipped: report.skipped,
            elapsed_ms: report.elapsed.as_millis() as u64,
            divergences: report
                .divergences
                .iter()
                .map(|d| DivJson {
                    seed: d.seed,
                    profile: d.profile.clone(),
                    deopt: d.deopt,
                    pipeline: d.pipeline.clone(),
                    failure: d.failure.clone(),
                    ir_lines: d.ir_lines,
                    repro: d.repro_path.as_ref().map(|p| p.display().to_string()),
                })
                .collect(),
            telemetry: snap.fuzz.clone(),
        };
        println!("{}", serde_json::to_string_pretty(&out)?);
    } else {
        println!(
            "fuzz: {} case(s) over seeds {}..{} ({} job(s)) in {:.1}s{}",
            report.cases,
            cfg.seed_start,
            cfg.seed_end,
            cfg.jobs,
            report.elapsed.as_secs_f64(),
            if report.skipped > 0 {
                format!(", {} seed(s) skipped on budget", report.skipped)
            } else {
                String::new()
            }
        );
        println!(
            "  oracle comparisons={} verifier-rejects={} pass-panics={} divergences={} shrunk={}",
            snap.fuzz.oracle_runs,
            snap.fuzz.verifier_rejects,
            snap.fuzz.pass_panics,
            snap.fuzz.divergences,
            snap.fuzz.shrunk
        );
        println!(
            "  case wall p50={} p99={}",
            fmt_us(snap.fuzz.case_wall.p50_micros),
            fmt_us(snap.fuzz.case_wall.p99_micros)
        );
        if !snap.fuzz.blame.is_empty() {
            println!("\nper-pass blame (appearances in minimal pipelines):");
            let mut blame: Vec<_> = snap.fuzz.blame.iter().collect();
            blame.sort_by_key(|(_, n)| std::cmp::Reverse(**n));
            for (pass, n) in blame.iter().take(15) {
                println!("  {pass:<28} {n}");
            }
        }
        for d in &report.divergences {
            println!("\nseed {} [{}{}]: {}", d.seed, d.profile, if d.deopt { ", deopt" } else { "" }, d.failure);
            println!("  pipeline: {} (sampled {})", d.pipeline.join(" "), d.original_pipeline.len());
            println!("  reduced IR: {} line(s)", d.ir_lines);
            if let Some(p) = &d.repro_path {
                println!("  reproducer: {}", p.display());
            }
        }
    }
    if !report.clean() {
        return Err(format!("{} divergence(s) found", report.divergences.len()).into());
    }
    Ok(())
}

/// The `cg chaos` soak harness: run llvm-v0 episodes with a seeded fault
/// load (injected panics, hangs, backend errors, corrupted replies) and
/// report how many faults the runtime recovered from transparently. Exits
/// non-zero when any episode failed in a way recovery should have absorbed.
fn chaos(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use cg_core::chaos::FaultPlan;
    use cg_core::retry::splitmix64;
    use std::time::Duration;

    let mut episodes: u64 = 20;
    let mut steps: u64 = 10;
    let mut seed: u64 = 7;
    let mut panic_prob = 0.04;
    let mut hang_prob = 0.02;
    let mut error_prob = 0.0;
    let mut corrupt_prob = 0.0;
    let mut wedge_prob = 0.0;
    let mut slow_growth_prob = 0.0;
    let mut timeout_ms: u64 = 400;
    // Containment knobs (the server-side half of the recovery ladder).
    let mut checkpoint_k: u64 = 10;
    let mut budget_wall_ms: u64 = 0;
    let mut max_growth: f64 = 0.0;
    let mut watchdog_ms: u64 = 0;
    let mut breaker_threshold: u32 = 0;
    let mut breaker_cooldown_ms: u64 = 250;
    let mut json = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<&String, Box<dyn std::error::Error>> {
            it.next().ok_or_else(|| format!("{name} needs a value").into())
        };
        match flag.as_str() {
            "--episodes" => episodes = val("--episodes")?.parse()?,
            "--steps" => steps = val("--steps")?.parse()?,
            "--seed" => seed = val("--seed")?.parse()?,
            "--panic" => panic_prob = val("--panic")?.parse()?,
            "--hang" => hang_prob = val("--hang")?.parse()?,
            "--error" => error_prob = val("--error")?.parse()?,
            "--corrupt" => corrupt_prob = val("--corrupt")?.parse()?,
            "--wedge" => wedge_prob = val("--wedge")?.parse()?,
            "--slow-growth" => slow_growth_prob = val("--slow-growth")?.parse()?,
            // Fault-kind matrix selector: zero every probability, then give
            // each listed kind its default load.
            "--faults" => {
                panic_prob = 0.0;
                hang_prob = 0.0;
                error_prob = 0.0;
                corrupt_prob = 0.0;
                wedge_prob = 0.0;
                slow_growth_prob = 0.0;
                for kind in val("--faults")?.split(',').filter(|s| !s.is_empty()) {
                    match kind {
                        "panic" => panic_prob = 0.05,
                        "hang" => hang_prob = 0.04,
                        "error" => error_prob = 0.05,
                        "corrupt" => corrupt_prob = 0.04,
                        "wedge" => wedge_prob = 0.03,
                        "slow-growth" => slow_growth_prob = 0.10,
                        other => {
                            return Err(format!("unknown fault kind `{other}`").into())
                        }
                    }
                }
            }
            "--timeout-ms" => timeout_ms = val("--timeout-ms")?.parse()?,
            "--checkpoint-k" => checkpoint_k = val("--checkpoint-k")?.parse()?,
            "--budget-wall-ms" => budget_wall_ms = val("--budget-wall-ms")?.parse()?,
            "--max-growth" => max_growth = val("--max-growth")?.parse()?,
            "--watchdog-ms" => watchdog_ms = val("--watchdog-ms")?.parse()?,
            "--breaker" => breaker_threshold = val("--breaker")?.parse()?,
            "--breaker-cooldown-ms" => {
                breaker_cooldown_ms = val("--breaker-cooldown-ms")?.parse()?;
            }
            "--json" => json = true,
            other => return Err(format!("unknown chaos flag `{other}`").into()),
        }
    }
    // Each fault kind needs its matching containment rung; wire the default
    // when the user selected the fault but no explicit limit.
    if slow_growth_prob > 0.0 && max_growth == 0.0 {
        max_growth = 2.0;
    }
    if hang_prob > 0.0 && budget_wall_ms == 0 {
        budget_wall_ms = timeout_ms / 2;
    }
    if wedge_prob > 0.0 && watchdog_ms == 0 {
        watchdog_ms = timeout_ms / 4;
    }

    // Injected panics are expected here; keep their default backtrace spew
    // out of the soak output.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        if !msg.starts_with("chaos:") {
            prev_hook(info);
        }
    }));

    let tel = cg_telemetry::global();
    tel.reset();
    let timeout = Duration::from_millis(timeout_ms.max(50));
    // Hangs must exceed the client deadline to register as faults; the
    // budget guarantees an adversarial plan eventually lets recovery win.
    let plan = FaultPlan::seeded(seed)
        .with_panic_prob(panic_prob)
        .with_hang_prob(hang_prob)
        .with_error_prob(error_prob)
        .with_corrupt_prob(corrupt_prob)
        .with_wedge_prob(wedge_prob)
        .with_slow_growth_prob(slow_growth_prob)
        .with_hang_duration(timeout * 6)
        .with_max_faults(episodes.saturating_mul(2).max(4));
    let inner = cg_core::envs::session_factory("llvm-v0").map_err(cg_core::CgError::Unknown)?;
    let (factory, stats) = plan.wrap(inner);
    let mut env = cg_core::CompilerEnv::with_factory(
        "llvm-v0",
        factory,
        "benchmark://cbench-v1/qsort",
        "Autophase",
        "IrInstructionCount",
        timeout,
    )?;
    env.set_retry_policy(
        cg_core::RetryPolicy::default()
            .with_max_attempts(10)
            .with_backoff(Duration::from_millis(5), Duration::from_millis(200)),
    );
    // Containment wiring. The default checkpoint interval is already K=10;
    // only replace the store for a non-default K (replacing restarts the
    // service, which would pollute the restart counters below).
    if checkpoint_k != cg_core::checkpoint::DEFAULT_CHECKPOINT_INTERVAL {
        env.set_checkpoint_interval(checkpoint_k);
    }
    if budget_wall_ms > 0 || max_growth > 0.0 {
        let mut budget = cg_core::ResourceBudget::default();
        if budget_wall_ms > 0 {
            budget = budget.with_step_wall(Duration::from_millis(budget_wall_ms));
        }
        if max_growth > 0.0 {
            budget = budget.with_max_growth(max_growth);
        }
        env.set_resource_budget(budget)?;
    }
    if watchdog_ms > 0 {
        env.enable_watchdog(cg_core::WatchdogConfig {
            interval: Duration::from_millis(watchdog_ms),
            probe_deadline: Duration::from_millis((watchdog_ms / 2).max(10)),
            misses: 2,
        });
    }
    let breaker = (breaker_threshold > 0).then(|| {
        cg_core::CircuitBreaker::new(
            breaker_threshold,
            Duration::from_millis(breaker_cooldown_ms),
        )
    });
    if let Some(br) = &breaker {
        env.set_circuit_breaker(br.clone());
    }

    const BENCHMARKS: [&str; 4] = [
        "benchmark://cbench-v1/qsort",
        "benchmark://cbench-v1/crc32",
        "benchmark://cbench-v1/sha",
        "benchmark://cbench-v1/bitcount",
    ];
    let mut completed = 0u64;
    let mut session_errors = 0u64;
    let mut circuit_rejections = 0u64;
    let mut unrecovered: Vec<String> = Vec::new();
    for ep in 0..episodes {
        env.set_benchmark(BENCHMARKS[(ep % BENCHMARKS.len() as u64) as usize]);
        if let Err(e) = env.reset() {
            unrecovered.push(format!("episode {ep}: reset: {e}"));
            continue;
        }
        let n = env.action_space().len() as u64;
        let mut ok = true;
        for s in 0..steps {
            let a = (splitmix64(seed ^ (ep * 1_000 + s).wrapping_mul(0x9E37)) % n) as usize;
            match env.step(a) {
                Ok(step) if step.done => break,
                Ok(_) => {}
                // Backend errors are legitimate episode outcomes, not
                // recovery failures (only injected when --error is set).
                Err(cg_core::CgError::Session(_)) => {
                    session_errors += 1;
                    ok = false;
                    break;
                }
                // A quarantined pair fast-failing is the breaker doing its
                // job, not a recovery failure: skip the action and go on.
                Err(cg_core::CgError::CircuitOpen { .. }) => {
                    circuit_rejections += 1;
                }
                Err(e) => {
                    unrecovered.push(format!("episode {ep} step {s}: {e}"));
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            completed += 1;
        }
    }
    // The breaker contract requires open circuits to eventually allow a
    // half-open probe. If the soak never demonstrated it, drive it: wait
    // out the cooldown and probe every quarantined pair.
    let mut breaker_never_half_opened = false;
    if let Some(br) = &breaker {
        if br.trips() > 0 && br.half_opens() == 0 {
            std::thread::sleep(Duration::from_millis(breaker_cooldown_ms + 50));
            for (b, a) in br.open_circuits() {
                let _ = br.admit(&b, a);
            }
            breaker_never_half_opened = br.half_opens() == 0;
        }
    }
    let snap = tel.snapshot();

    if json {
        #[derive(serde::Serialize)]
        struct ChaosReport {
            episodes: u64,
            completed: u64,
            session_errors: u64,
            circuit_rejections: u64,
            unrecovered: Vec<String>,
            injected_panics: u64,
            injected_hangs: u64,
            injected_errors: u64,
            injected_corruptions: u64,
            injected_wedges: u64,
            injected_slow_growths: u64,
            recoveries: u64,
            restarts: u64,
            replay_divergences: u64,
            timeouts: u64,
            service_panics: u64,
            checkpoints_taken: u64,
            checkpoint_restores: u64,
            budget_kills: u64,
            watchdog_restarts: u64,
            breaker_trips: u64,
            breaker_half_opens: u64,
            breaker_fast_fails: u64,
            breaker_never_half_opened: bool,
        }
        let report = ChaosReport {
            episodes,
            completed,
            session_errors,
            circuit_rejections,
            unrecovered: unrecovered.clone(),
            injected_panics: stats.panics(),
            injected_hangs: stats.hangs(),
            injected_errors: stats.errors(),
            injected_corruptions: stats.corruptions(),
            injected_wedges: stats.wedges(),
            injected_slow_growths: stats.slow_growths(),
            recoveries: snap.recoveries,
            restarts: snap.restarts,
            replay_divergences: snap.replay_divergences,
            timeouts: snap.timeouts,
            service_panics: snap.panics,
            checkpoints_taken: snap.checkpoints_taken,
            checkpoint_restores: snap.checkpoint_restores,
            budget_kills: snap.budget_kills,
            watchdog_restarts: snap.watchdog_restarts,
            breaker_trips: snap.breaker_trips,
            breaker_half_opens: snap.breaker_half_opens,
            breaker_fast_fails: snap.breaker_fast_fails,
            breaker_never_half_opened,
        };
        println!("{}", serde_json::to_string_pretty(&report)?);
    } else {
        println!("chaos soak: seed={seed} episodes={episodes} steps={steps}");
        println!(
            "injected faults: panics={} hangs={} errors={} corruptions={} wedges={} \
             slow-growths={} ({} applies, {} observes)",
            stats.panics(),
            stats.hangs(),
            stats.errors(),
            stats.corruptions(),
            stats.wedges(),
            stats.slow_growths(),
            stats.applies(),
            stats.observes()
        );
        println!(
            "recovery: recoveries={} restarts={} replay-divergences={} \
             timeouts={} service-panics={}",
            snap.recoveries, snap.restarts, snap.replay_divergences, snap.timeouts, snap.panics
        );
        println!(
            "containment: checkpoints={} restores={} budget-kills={} watchdog-restarts={} \
             breaker trips={} half-opens={} fast-fails={}",
            snap.checkpoints_taken,
            snap.checkpoint_restores,
            snap.budget_kills,
            snap.watchdog_restarts,
            snap.breaker_trips,
            snap.breaker_half_opens,
            snap.breaker_fast_fails
        );
        println!(
            "episodes: completed={completed}/{episodes} session-errors={session_errors} \
             circuit-rejections={circuit_rejections} unrecovered={}",
            unrecovered.len()
        );
        for line in &unrecovered {
            println!("  UNRECOVERED {line}");
        }
        if breaker_never_half_opened {
            println!("  BREAKER tripped but never reached half-open");
        }
    }
    if !unrecovered.is_empty() {
        return Err(format!("{} unrecovered failure(s)", unrecovered.len()).into());
    }
    if breaker_never_half_opened {
        return Err("breaker tripped but never allowed a half-open probe".into());
    }
    Ok(())
}

fn replay(path: Option<&str>, validate: bool) -> Result<(), Box<dyn std::error::Error>> {
    let path = path.ok_or("missing state file")?;
    let text = std::fs::read_to_string(path)?;
    let state = cg_core::EnvState::from_json(&text)?;
    if validate {
        state.validate()?;
        println!("OK: state is reproducible and the reward checks out");
    } else {
        let env = state.replay()?;
        println!("replayed {} actions, reward {:+.4}", state.actions.len(), env.episode_reward());
    }
    Ok(())
}
