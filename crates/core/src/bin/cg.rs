//! `cg`: the command-line interface (§III-D) — inspect environments, run
//! random searches, replay and validate saved states, all without writing
//! code.
//!
//! ```text
//! cg describe <env>                         list spaces and actions
//! cg random <env> <benchmark> <steps>       run a random episode
//! cg replay <state.json>                    replay a saved state
//! cg validate <state.json>                  validate reproducibility
//! cg datasets                               list benchmark datasets
//! cg stats [--json] <env> <benchmark> <steps>   episode + telemetry report
//! cg trace <env> <benchmark> <steps>        episode + JSONL trace dump
//! ```

use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  cg describe <env>\n  cg random <env> <benchmark> <steps>\n  \
         cg replay <state.json>\n  cg validate <state.json>\n  cg datasets\n  \
         cg stats [--json] <env> <benchmark> <steps>\n  cg trace <env> <benchmark> <steps>"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("describe") => describe(args.get(1).map(String::as_str).unwrap_or("llvm-v0")),
        Some("random") => {
            let env = args.get(1).cloned().unwrap_or_else(|| "llvm-v0".into());
            let bench = args
                .get(2)
                .cloned()
                .unwrap_or_else(|| "benchmark://cbench-v1/qsort".into());
            let steps = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(50);
            random(&env, &bench, steps)
        }
        Some("replay") => replay(args.get(1).map(String::as_str), false),
        Some("validate") => replay(args.get(1).map(String::as_str), true),
        Some("stats") | Some("trace") => {
            let as_trace = args[0] == "trace";
            let rest: Vec<&String> = args[1..].iter().filter(|a| *a != "--json").collect();
            let json = args.iter().any(|a| a == "--json");
            let env = rest.first().map(|s| s.as_str()).unwrap_or("llvm-v0").to_string();
            let bench = rest
                .get(1)
                .map(|s| s.as_str())
                .unwrap_or("benchmark://cbench-v1/qsort")
                .to_string();
            let steps = rest.get(2).and_then(|s| s.parse().ok()).unwrap_or(50);
            if as_trace {
                trace(&env, &bench, steps)
            } else {
                stats(&env, &bench, steps, json)
            }
        }
        Some("datasets") => {
            for d in cg_datasets::datasets() {
                println!(
                    "{:<18} {:>12}  {}",
                    d.name,
                    d.len().map(|n| n.to_string()).unwrap_or_else(|| "2^32".into()),
                    d.description
                );
            }
            Ok(())
        }
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn describe(env_id: &str) -> Result<(), Box<dyn std::error::Error>> {
    let env = cg_core::make(env_id)?;
    println!("environment: {env_id}");
    for a in env.action_spaces() {
        println!("action space {:?}: {} actions", a.name, a.len());
        for (i, n) in a.actions.iter().enumerate().take(12) {
            println!("  [{i:>3}] {n}");
        }
        if a.len() > 12 {
            println!("  … {} more", a.len() - 12);
        }
    }
    println!("observation spaces:");
    for o in env.observation_spaces() {
        println!(
            "  {:<24} {:?}{}{}",
            o.name,
            o.kind,
            if o.deterministic { "" } else { ", nondeterministic" },
            if o.platform_dependent { ", platform-dependent" } else { "" }
        );
    }
    println!("reward spaces:");
    for r in env.reward_spaces() {
        println!(
            "  {:<24} metric={}{}",
            r.name,
            r.metric,
            r.baseline.as_deref().map(|b| format!(", scaled by {b}")).unwrap_or_default()
        );
    }
    Ok(())
}

fn random(env_id: &str, benchmark: &str, steps: usize) -> Result<(), Box<dyn std::error::Error>> {
    use rand::Rng as _;
    let mut env = cg_core::make(env_id)?;
    env.set_benchmark(benchmark);
    env.reset()?;
    let mut rng = rand::thread_rng();
    let n = env.action_space().len();
    for _ in 0..steps {
        let a = rng.gen_range(0..n);
        let step = env.step(a)?;
        if step.reward != 0.0 {
            println!("{:<28} {:+.4}", env.action_space().actions[a], step.reward);
        }
    }
    println!("episode reward: {:+.4}", env.episode_reward());
    println!("state:\n{}", env.state().to_json());
    Ok(())
}

/// Drives one random episode so the telemetry layer has something to report.
fn run_episode(
    env_id: &str,
    benchmark: &str,
    steps: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    use rand::Rng as _;
    let mut env = cg_core::make(env_id)?;
    env.set_benchmark(benchmark);
    env.reset()?;
    let mut rng = rand::thread_rng();
    let n = env.action_space().len();
    for _ in 0..steps {
        let a = rng.gen_range(0..n);
        if env.step(a)?.done {
            break;
        }
    }
    Ok(())
}

/// Renders microseconds human-readably (µs / ms / s).
fn fmt_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

fn stats(
    env_id: &str,
    benchmark: &str,
    steps: usize,
    json: bool,
) -> Result<(), Box<dyn std::error::Error>> {
    let tel = cg_telemetry::global();
    tel.reset();
    run_episode(env_id, benchmark, steps)?;
    let snap = tel.snapshot();
    if json {
        println!("{}", serde_json::to_string_pretty(&snap)?);
        return Ok(());
    }
    println!("telemetry for {env_id} on {benchmark} ({steps} random steps)\n");
    println!("service requests:");
    println!(
        "  {:<14} {:>7} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "kind", "count", "p50", "p90", "p99", "max", "errors"
    );
    for (kind, h) in &snap.requests {
        let errors = snap.request_errors.get(kind).copied().unwrap_or(0);
        println!(
            "  {:<14} {:>7} {:>9} {:>9} {:>9} {:>9} {:>7}",
            kind,
            h.count,
            fmt_us(h.p50_micros),
            fmt_us(h.p90_micros),
            fmt_us(h.p99_micros),
            fmt_us(h.max_micros),
            errors
        );
    }
    println!(
        "\nservice health: restarts={} panics={} timeouts={} in-flight={}",
        snap.restarts, snap.panics, snap.timeouts, snap.in_flight
    );
    let ep = &snap.episode;
    let changed_pct = if ep.actions_total == 0 {
        0.0
    } else {
        100.0 * ep.actions_changed as f64 / ep.actions_total as f64
    };
    println!(
        "\nepisode: episodes={} steps={} actions={} changed={:.0}% reward={:+.4}",
        ep.episodes, ep.steps, ep.actions_total, changed_pct, ep.reward_sum
    );
    println!(
        "  reset  p50={} max={}",
        fmt_us(ep.reset_wall.p50_micros),
        fmt_us(ep.reset_wall.max_micros)
    );
    println!(
        "  step   p50={} p99={} max={}",
        fmt_us(ep.step_wall.p50_micros),
        fmt_us(ep.step_wall.p99_micros),
        fmt_us(ep.step_wall.max_micros)
    );
    if !snap.observations.is_empty() {
        println!("\nobservations:");
        for (name, h) in &snap.observations {
            println!(
                "  {:<24} count={:<5} p50={} p99={}",
                name,
                h.count,
                fmt_us(h.p50_micros),
                fmt_us(h.p99_micros)
            );
        }
    }
    if !snap.passes.is_empty() {
        println!("\ntop passes by total time:");
        let mut passes: Vec<_> = snap.passes.iter().collect();
        passes.sort_by_key(|(_, p)| std::cmp::Reverse(p.total_micros));
        for (name, p) in passes.iter().take(15) {
            println!(
                "  {:<28} calls={:<4} total={:<9} changed={:<4} Δinst={:+}",
                name,
                p.calls,
                fmt_us(p.total_micros),
                p.changed,
                p.inst_delta
            );
        }
    }
    println!(
        "\ntrace: {} buffered event(s), {} dropped (see `cg trace`)",
        snap.trace_events, snap.trace_dropped
    );
    Ok(())
}

fn trace(env_id: &str, benchmark: &str, steps: usize) -> Result<(), Box<dyn std::error::Error>> {
    let tel = cg_telemetry::global();
    tel.reset();
    run_episode(env_id, benchmark, steps)?;
    print!("{}", tel.trace.export_jsonl());
    Ok(())
}

fn replay(path: Option<&str>, validate: bool) -> Result<(), Box<dyn std::error::Error>> {
    let path = path.ok_or("missing state file")?;
    let text = std::fs::read_to_string(path)?;
    let state = cg_core::EnvState::from_json(&text)?;
    if validate {
        state.validate()?;
        println!("OK: state is reproducible and the reward checks out");
    } else {
        let env = state.replay()?;
        println!("replayed {} actions, reward {:+.4}", state.actions.len(), env.episode_reward());
    }
    Ok(())
}
