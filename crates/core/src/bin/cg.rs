//! `cg`: the command-line interface (§III-D) — inspect environments, run
//! random searches, replay and validate saved states, all without writing
//! code.
//!
//! ```text
//! cg describe <env>                         list spaces and actions
//! cg random <env> <benchmark> <steps>       run a random episode
//! cg replay <state.json>                    replay a saved state
//! cg validate <state.json>                  validate reproducibility
//! cg datasets                               list benchmark datasets
//! cg stats [--json] <env> <benchmark> <steps>   episode + telemetry report
//! cg trace <env> <benchmark> <steps>        episode + JSONL trace dump
//! cg trace --episode last [--json]          episode flight-recorder timeline
//! cg export-metrics [env bench steps]       Prometheus / JSONL metrics dump
//! cg chaos [flags]                          soak episodes under fault injection
//! cg fuzz [flags]                           differential pass-pipeline fuzzing
//! cg bench-pool [flags]                     parallel-evaluation throughput report
//! ```

use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  cg describe <env>\n  cg random <env> <benchmark> <steps>\n  \
         cg replay <state.json>\n  cg validate <state.json>\n  cg datasets\n  \
         cg stats [--json] [--slo-ms MS] <env> <benchmark> <steps>\n  \
         cg trace [--episode ID|last] [--json] [--tcp] [--chaos-seed S]\n           \
         [<env> <benchmark> <steps>]\n  \
         cg export-metrics [--jsonl] [--slo-ms MS] [<env> <benchmark> <steps>]\n  \
         cg chaos [--episodes N] [--steps N] [--seed S] [--panic P] [--hang P]\n           \
         [--error P] [--corrupt P] [--wedge P] [--slow-growth P] [--faults LIST]\n           \
         [--timeout-ms MS] [--checkpoint-k K] [--budget-wall-ms MS] [--max-growth F]\n           \
         [--watchdog-ms MS] [--breaker N] [--breaker-cooldown-ms MS]\n           \
         [--serve-metrics ADDR] [--linger-ms MS] [--json]\n  \
         cg fuzz [--seed-range A..B] [--jobs N] [--profile NAME] [--max-passes N]\n          \
         [--inputs N] [--corpus DIR] [--no-corpus] [--budget-secs N]\n          \
         [--reduce-budget N] [--smoke] [--json]\n  \
         cg bench-pool [--workers LIST] [--evaluations N] [--length N] [--benchmark URI]\n                \
         [--ga-budget N] [--ga-pop N] [--seed S] [--out PATH] [--json]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("describe") => describe(args.get(1).map(String::as_str).unwrap_or("llvm-v0")),
        Some("random") => {
            let env = args.get(1).cloned().unwrap_or_else(|| "llvm-v0".into());
            let bench = args
                .get(2)
                .cloned()
                .unwrap_or_else(|| "benchmark://cbench-v1/qsort".into());
            let steps = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(50);
            random(&env, &bench, steps)
        }
        Some("replay") => replay(args.get(1).map(String::as_str), false),
        Some("validate") => replay(args.get(1).map(String::as_str), true),
        Some("stats") => stats(&args[1..]),
        Some("trace") => trace(&args[1..]),
        Some("export-metrics") => export_metrics(&args[1..]),
        Some("chaos") => chaos(&args[1..]),
        Some("fuzz") => fuzz(&args[1..]),
        Some("bench-pool") => bench_pool(&args[1..]),
        Some("datasets") => {
            for d in cg_datasets::datasets() {
                println!(
                    "{:<18} {:>12}  {}",
                    d.name,
                    d.len().map(|n| n.to_string()).unwrap_or_else(|| "2^32".into()),
                    d.description
                );
            }
            Ok(())
        }
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn describe(env_id: &str) -> Result<(), Box<dyn std::error::Error>> {
    let env = cg_core::make(env_id)?;
    println!("environment: {env_id}");
    for a in env.action_spaces() {
        println!("action space {:?}: {} actions", a.name, a.len());
        for (i, n) in a.actions.iter().enumerate().take(12) {
            println!("  [{i:>3}] {n}");
        }
        if a.len() > 12 {
            println!("  … {} more", a.len() - 12);
        }
    }
    println!("observation spaces:");
    for o in env.observation_spaces() {
        println!(
            "  {:<24} {:?}{}{}",
            o.name,
            o.kind,
            if o.deterministic { "" } else { ", nondeterministic" },
            if o.platform_dependent { ", platform-dependent" } else { "" }
        );
    }
    println!("reward spaces:");
    for r in env.reward_spaces() {
        println!(
            "  {:<24} metric={}{}",
            r.name,
            r.metric,
            r.baseline.as_deref().map(|b| format!(", scaled by {b}")).unwrap_or_default()
        );
    }
    Ok(())
}

fn random(env_id: &str, benchmark: &str, steps: usize) -> Result<(), Box<dyn std::error::Error>> {
    use rand::Rng as _;
    let mut env = cg_core::make(env_id)?;
    env.set_benchmark(benchmark);
    env.reset()?;
    let mut rng = rand::thread_rng();
    let n = env.action_space().len();
    for _ in 0..steps {
        let a = rng.gen_range(0..n);
        let step = env.step(a)?;
        if step.reward != 0.0 {
            println!("{:<28} {:+.4}", env.action_space().actions[a], step.reward);
        }
    }
    println!("episode reward: {:+.4}", env.episode_reward());
    println!("state:\n{}", env.state().to_json());
    Ok(())
}

/// Drives one random episode so the telemetry layer has something to report.
fn run_episode(
    env_id: &str,
    benchmark: &str,
    steps: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    use rand::Rng as _;
    let mut env = cg_core::make(env_id)?;
    env.set_benchmark(benchmark);
    env.reset()?;
    let mut rng = rand::thread_rng();
    let n = env.action_space().len();
    for _ in 0..steps {
        let a = rng.gen_range(0..n);
        if env.step(a)?.done {
            break;
        }
    }
    Ok(())
}

/// Renders microseconds human-readably (µs / ms / s).
fn fmt_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

/// Splits a flag-bearing argument list into recognized flags and the
/// positional `<env> <benchmark> <steps>` triple every reporting
/// subcommand shares.
struct EpisodeArgs {
    env: String,
    bench: String,
    steps: usize,
}

fn episode_args(positional: &[&String]) -> EpisodeArgs {
    EpisodeArgs {
        env: positional.first().map(|s| s.as_str()).unwrap_or("llvm-v0").to_string(),
        bench: positional
            .get(1)
            .map(|s| s.as_str())
            .unwrap_or("benchmark://cbench-v1/qsort")
            .to_string(),
        steps: positional.get(2).and_then(|s| s.parse().ok()).unwrap_or(50),
    }
}

fn stats(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use std::time::Duration;

    let mut json = false;
    let mut slo_ms: Option<u64> = None;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--slo-ms" => {
                slo_ms =
                    Some(it.next().ok_or("--slo-ms needs a value")?.parse()?);
            }
            _ => positional.push(a),
        }
    }
    let ep_args = episode_args(&positional);
    let (env_id, benchmark, steps) = (&ep_args.env, &ep_args.bench, ep_args.steps);

    let tel = cg_telemetry::global();
    tel.reset();
    if let Some(ms) = slo_ms {
        tel.slo.configure(Duration::from_millis(ms), 0.99);
    }
    run_episode(env_id, benchmark, steps)?;
    let snap = tel.snapshot();
    if json {
        println!("{}", serde_json::to_string_pretty(&snap)?);
        return Ok(());
    }
    println!("telemetry for {env_id} on {benchmark} ({steps} random steps)\n");
    println!("service requests:");
    println!(
        "  {:<14} {:>7} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "kind", "count", "p50", "p90", "p99", "max", "errors"
    );
    for (kind, h) in &snap.requests {
        let errors = snap.request_errors.get(kind).copied().unwrap_or(0);
        println!(
            "  {:<14} {:>7} {:>9} {:>9} {:>9} {:>9} {:>7}",
            kind,
            h.count,
            fmt_us(h.p50_micros),
            fmt_us(h.p90_micros),
            fmt_us(h.p99_micros),
            fmt_us(h.max_micros),
            errors
        );
    }
    println!(
        "\nservice health: restarts={} panics={} timeouts={} in-flight={}",
        snap.restarts, snap.panics, snap.timeouts, snap.in_flight
    );
    println!(
        "containment: checkpoints={} restores={} budget-kills={} watchdog-restarts={} \
         breaker trips={} half-opens={} fast-fails={}",
        snap.checkpoints_taken,
        snap.checkpoint_restores,
        snap.budget_kills,
        snap.watchdog_restarts,
        snap.breaker_trips,
        snap.breaker_half_opens,
        snap.breaker_fast_fails
    );
    let ep = &snap.episode;
    let changed_pct = if ep.actions_total == 0 {
        0.0
    } else {
        100.0 * ep.actions_changed as f64 / ep.actions_total as f64
    };
    println!(
        "\nepisode: episodes={} steps={} actions={} changed={:.0}% reward={:+.4}",
        ep.episodes, ep.steps, ep.actions_total, changed_pct, ep.reward_sum
    );
    println!(
        "  reset  p50={} max={}",
        fmt_us(ep.reset_wall.p50_micros),
        fmt_us(ep.reset_wall.max_micros)
    );
    println!(
        "  step   p50={} p99={} max={}",
        fmt_us(ep.step_wall.p50_micros),
        fmt_us(ep.step_wall.p99_micros),
        fmt_us(ep.step_wall.max_micros)
    );
    let pool = &snap.pool;
    let total_actions = pool.actions_executed + pool.actions_saved;
    let saved_pct = if total_actions == 0 {
        0.0
    } else {
        100.0 * pool.actions_saved as f64 / total_actions as f64
    };
    println!(
        "\npool: workers={} jobs={} errors={} panics={} queue-depth={}",
        pool.workers, pool.jobs, pool.job_errors, pool.job_panics, pool.queue_depth
    );
    println!(
        "  cache: hits={} misses={} prefix-hits={} evictions={}",
        pool.cache_hits, pool.cache_misses, pool.prefix_hits, pool.evictions
    );
    println!(
        "  actions: executed={} saved={} ({saved_pct:.0}% saved)",
        pool.actions_executed, pool.actions_saved
    );
    if pool.jobs > 0 {
        println!(
            "  batch p50={} max={}  job p50={} p99={}",
            fmt_us(pool.batch_wall.p50_micros),
            fmt_us(pool.batch_wall.max_micros),
            fmt_us(pool.job_wall.p50_micros),
            fmt_us(pool.job_wall.p99_micros)
        );
    }
    if !snap.observations.is_empty() {
        println!("\nobservations:");
        for (name, h) in &snap.observations {
            println!(
                "  {:<24} count={:<5} p50={} p99={}",
                name,
                h.count,
                fmt_us(h.p50_micros),
                fmt_us(h.p99_micros)
            );
        }
    }
    if !snap.passes.is_empty() {
        println!("\ntop passes by total time:");
        let mut passes: Vec<_> = snap.passes.iter().collect();
        passes.sort_by_key(|(_, p)| std::cmp::Reverse(p.total_micros));
        for (name, p) in passes.iter().take(15) {
            println!(
                "  {:<28} calls={:<4} total={:<9} changed={:<4} Δinst={:+}",
                name,
                p.calls,
                fmt_us(p.total_micros),
                p.changed,
                p.inst_delta
            );
        }
    }
    if snap.fuzz.cases > 0 {
        println!(
            "\nfuzz: cases={} divergences={} shrunk={} verifier-rejects={} pass-panics={}",
            snap.fuzz.cases,
            snap.fuzz.divergences,
            snap.fuzz.shrunk,
            snap.fuzz.verifier_rejects,
            snap.fuzz.pass_panics
        );
        let mut blame: Vec<_> = snap.fuzz.blame.iter().collect();
        blame.sort_by_key(|(_, n)| std::cmp::Reverse(**n));
        for (pass, n) in blame.iter().take(10) {
            println!("  blame {pass:<26} {n}");
        }
    }
    if snap.slo.objective_micros > 0 {
        println!(
            "\nslo: step objective {} at {:.2}% target",
            fmt_us(snap.slo.objective_micros),
            100.0 * snap.slo.target
        );
        println!(
            "  good={} bad={} compliance={:.2}% burn-rate={:.2}x",
            snap.slo.good,
            snap.slo.bad,
            100.0 * snap.slo.compliance,
            snap.slo.burn_rate
        );
    }
    println!(
        "\ntrace: {} buffered event(s), {} dropped (see `cg trace`)",
        snap.trace_events, snap.trace_dropped
    );
    println!(
        "  flight recorder: episodes recorded={} dropped={} span-drops={}",
        snap.episodes_recorded, snap.episodes_dropped, snap.episode_spans_dropped
    );
    // Per-family event counts: the prefix before the first `:` groups span
    // names into subsystems (env, rpc, service, pass, ...).
    let mut families: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for ev in tel.trace.events() {
        let family = ev.span.split(':').next().unwrap_or(&ev.span).to_string();
        *families.entry(family).or_insert(0) += 1;
    }
    if !families.is_empty() {
        let rendered: Vec<String> =
            families.iter().map(|(f, n)| format!("{f}={n}")).collect();
        println!("  events by family: {}", rendered.join(" "));
    }
    Ok(())
}

fn trace(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut json = false;
    let mut tcp = false;
    let mut episode: Option<String> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--tcp" => tcp = true,
            "--episode" => {
                episode = Some(it.next().ok_or("--episode needs an id or `last`")?.clone());
            }
            "--chaos-seed" => {
                chaos_seed =
                    Some(it.next().ok_or("--chaos-seed needs a value")?.parse()?);
            }
            _ => positional.push(a),
        }
    }
    let ep_args = episode_args(&positional);

    let tel = cg_telemetry::global();
    tel.reset();
    let ran = if tcp || chaos_seed.is_some() {
        run_traced_episode(&ep_args.env, &ep_args.bench, ep_args.steps, tcp, chaos_seed)?
    } else {
        run_episode(&ep_args.env, &ep_args.bench, ep_args.steps)?;
        tel.trace.recorder().last_episode_id()
    };

    let Some(selector) = episode else {
        // Legacy surface: the raw trace ring as JSONL, one event per line.
        print!("{}", tel.trace.export_jsonl());
        return Ok(());
    };
    let id = if selector == "last" {
        ran.or_else(|| tel.trace.recorder().last_episode_id())
            .ok_or("no episode recorded")?
    } else {
        selector.parse()?
    };
    let record = tel
        .trace
        .recorder()
        .episode(id)
        .ok_or_else(|| format!("episode {id} is not in the flight recorder"))?;
    if json {
        println!("{}", serde_json::to_string_pretty(&record)?);
    } else {
        render_episode(&record);
    }
    Ok(())
}

/// Runs one random episode with the service reached over a loopback TCP
/// socket (`--tcp`) and/or a seeded fault plan (`--chaos-seed`), so the
/// recorded span trees demonstrate cross-boundary propagation and the
/// recovery ladder. Returns the flight-recorder episode id.
fn run_traced_episode(
    env_id: &str,
    benchmark: &str,
    steps: usize,
    tcp: bool,
    chaos_seed: Option<u64>,
) -> Result<Option<u64>, Box<dyn std::error::Error>> {
    use rand::{Rng as _, SeedableRng as _};
    use std::time::Duration;

    let inner = cg_core::envs::session_factory(env_id).map_err(cg_core::CgError::Unknown)?;
    let timeout =
        if chaos_seed.is_some() { Duration::from_millis(400) } else { Duration::from_secs(60) };
    let factory = match chaos_seed {
        Some(seed) => {
            quiet_chaos_panics();
            // Guaranteed faults (not probabilistic sampling): a session
            // panic at the 6th apply and, over TCP, a hang at the 10th, so
            // a short episode demonstrably exercises the recovery ladder.
            let mut plan = cg_core::chaos::FaultPlan::seeded(seed)
                .schedule(5, cg_core::chaos::FaultKind::Panic)
                .with_hang_duration(timeout * 6)
                .with_max_faults(4);
            if tcp && steps >= 10 {
                plan = plan.schedule(9, cg_core::chaos::FaultKind::Hang);
            }
            plan.wrap(inner).0
        }
        None => inner,
    };
    let mut env = if tcp {
        let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?.to_string();
        std::thread::spawn(move || cg_core::service::serve_tcp(listener, factory));
        cg_core::CompilerEnv::connect_tcp(
            env_id,
            &addr,
            benchmark,
            "Autophase",
            "IrInstructionCount",
            timeout,
        )?
    } else {
        cg_core::CompilerEnv::with_factory(
            env_id,
            factory,
            benchmark,
            "Autophase",
            "IrInstructionCount",
            timeout,
        )?
    };
    env.set_retry_policy(
        cg_core::RetryPolicy::default()
            .with_max_attempts(8)
            .with_backoff(Duration::from_millis(5), Duration::from_millis(100)),
    );
    env.set_checkpoint_interval(4);
    env.reset()?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(chaos_seed.unwrap_or(7) ^ 0xCAFE);
    let n = env.action_space().len();
    for _ in 0..steps {
        let a = rng.gen_range(0..n);
        if env.step(a)?.done {
            break;
        }
    }
    env.close();
    Ok(cg_telemetry::global().trace.recorder().last_episode_id())
}

/// Renders a recorded episode as an indented span-tree timeline: offsets
/// relative to the episode start, one subtree per trace, children ordered
/// by start time.
fn render_episode(record: &cg_telemetry::EpisodeRecord) {
    use std::collections::HashMap;

    println!(
        "episode {} — {} on {}",
        record.episode_id, record.env_id, record.benchmark
    );
    let ended = if record.ended_micros == 0 {
        "still open".to_string()
    } else {
        format!("{} total", fmt_us(record.ended_micros.saturating_sub(record.started_micros)))
    };
    println!(
        "{} trace(s), {} span(s), {} span(s) dropped, {ended}\n",
        record.trace_ids.len(),
        record.spans.len(),
        record.dropped_spans
    );

    let ids: std::collections::HashSet<u64> = record.spans.iter().map(|s| s.span_id).collect();
    let mut children: HashMap<Option<u64>, Vec<&cg_telemetry::SpanRecord>> = HashMap::new();
    for s in &record.spans {
        // Spans whose parent fell out of the ring render as roots.
        let key = s.parent_id.filter(|p| ids.contains(p));
        children.entry(key).or_default().push(s);
    }
    for list in children.values_mut() {
        list.sort_by_key(|s| (s.start_micros, s.seq));
    }
    let mut stack: Vec<(&cg_telemetry::SpanRecord, usize)> = Vec::new();
    for root in children.get(&None).cloned().unwrap_or_default() {
        stack.push((root, 0));
        while let Some((span, depth)) = stack.pop() {
            let offset = span.start_micros.saturating_sub(record.started_micros);
            let status = match span.status {
                cg_telemetry::SpanStatus::Ok => String::new(),
                other => format!(" [{other:?}]"),
            };
            let detail = if span.detail.is_empty() {
                String::new()
            } else {
                format!("  {}", span.detail)
            };
            let attrs = if span.attrs.is_empty() {
                String::new()
            } else {
                let kv: Vec<String> =
                    span.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
                format!("  {{{}}}", kv.join(", "))
            };
            println!(
                "{:>9} {:indent$}{} ({}){status}{detail}{attrs}",
                format!("+{}", fmt_us(offset)),
                "",
                span.span,
                fmt_us(span.dur_micros),
                indent = depth * 2,
            );
            if let Some(kids) = children.get(&Some(span.span_id)) {
                // Reverse so the earliest child pops first.
                for kid in kids.iter().rev() {
                    stack.push((kid, depth + 1));
                }
            }
        }
    }
}

/// The `cg export-metrics` surface: drive one random episode, then dump the
/// full registry in Prometheus text exposition format (default) or as JSONL
/// (`--jsonl`), for scraping-free ingestion into files and pipelines.
fn export_metrics(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use std::time::Duration;

    let mut jsonl = false;
    let mut slo_ms: Option<u64> = None;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jsonl" => jsonl = true,
            "--slo-ms" => {
                slo_ms =
                    Some(it.next().ok_or("--slo-ms needs a value")?.parse()?);
            }
            _ => positional.push(a),
        }
    }
    let ep_args = episode_args(&positional);

    let tel = cg_telemetry::global();
    tel.reset();
    tel.slo.configure(Duration::from_millis(slo_ms.unwrap_or(250)), 0.99);
    run_episode(&ep_args.env, &ep_args.bench, ep_args.steps)?;
    let snap = tel.snapshot();
    if jsonl {
        print!("{}", cg_telemetry::export::metrics_jsonl(&snap));
    } else {
        print!("{}", cg_telemetry::export::prometheus_text(&snap));
    }
    Ok(())
}

/// Silences the default panic backtrace for chaos-injected panics (they are
/// the point of the exercise, not noise worth a stack trace).
fn quiet_chaos_panics() {
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        if !msg.starts_with("chaos:") {
            prev_hook(info);
        }
    }));
}

/// The `cg fuzz` surface: differential pass-pipeline fuzzing with the
/// `cg-difftest` engine. Samples random programs and random pipelines over
/// the full action space, judges each with the interpreter oracle, shrinks
/// any divergence to a minimal reproducer in the corpus directory, and
/// exits non-zero if anything diverged. `--smoke` is the CI configuration:
/// a fixed seed range under a strict wall-clock budget.
fn fuzz(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use cg_difftest::{run_fuzz, FuzzConfig};
    use std::time::Duration;

    let mut cfg = FuzzConfig {
        jobs: 4,
        corpus_dir: Some(cg_difftest::repro::default_corpus_dir()),
        ..FuzzConfig::default()
    };
    let mut json = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<&String, Box<dyn std::error::Error>> {
            it.next().ok_or_else(|| format!("{name} needs a value").into())
        };
        match flag.as_str() {
            "--seed-range" => {
                let raw = val("--seed-range")?;
                let (a, b) = raw
                    .split_once("..")
                    .ok_or_else(|| format!("--seed-range wants A..B, got `{raw}`"))?;
                cfg.seed_start = a.parse()?;
                cfg.seed_end = b.parse()?;
            }
            "--jobs" => cfg.jobs = val("--jobs")?.parse()?,
            "--profile" => {
                let name = val("--profile")?.clone();
                if cg_datasets::synth::Profile::named(&name).is_none() {
                    return Err(format!(
                        "unknown profile `{name}` (available: {})",
                        cg_datasets::synth::FUZZ_PROFILES.join(", ")
                    )
                    .into());
                }
                cfg.profile = Some(name);
            }
            "--max-passes" => cfg.max_passes = val("--max-passes")?.parse()?,
            "--inputs" => cfg.extra_inputs = val("--inputs")?.parse()?,
            "--corpus" => cfg.corpus_dir = Some(val("--corpus")?.into()),
            "--no-corpus" => cfg.corpus_dir = None,
            "--budget-secs" => {
                cfg.budget = Some(Duration::from_secs(val("--budget-secs")?.parse()?));
            }
            "--reduce-budget" => cfg.reduce_budget = val("--reduce-budget")?.parse()?,
            "--smoke" => {
                // The CI configuration: fixed seeds, bounded wall-clock.
                cfg.seed_start = 0;
                cfg.seed_end = 500;
                cfg.budget = Some(Duration::from_secs(60));
            }
            "--json" => json = true,
            other => return Err(format!("unknown fuzz flag `{other}`").into()),
        }
    }

    let tel = cg_telemetry::global();
    tel.reset();
    let report = run_fuzz(&cfg);
    let snap = tel.snapshot();

    if json {
        #[derive(serde::Serialize)]
        struct DivJson {
            seed: u64,
            profile: String,
            deopt: bool,
            pipeline: Vec<String>,
            failure: String,
            ir_lines: usize,
            repro: Option<String>,
        }
        #[derive(serde::Serialize)]
        struct FuzzJson {
            cases: u64,
            skipped: u64,
            elapsed_ms: u64,
            divergences: Vec<DivJson>,
            telemetry: cg_telemetry::FuzzSnapshot,
        }
        let out = FuzzJson {
            cases: report.cases,
            skipped: report.skipped,
            elapsed_ms: report.elapsed.as_millis() as u64,
            divergences: report
                .divergences
                .iter()
                .map(|d| DivJson {
                    seed: d.seed,
                    profile: d.profile.clone(),
                    deopt: d.deopt,
                    pipeline: d.pipeline.clone(),
                    failure: d.failure.clone(),
                    ir_lines: d.ir_lines,
                    repro: d.repro_path.as_ref().map(|p| p.display().to_string()),
                })
                .collect(),
            telemetry: snap.fuzz.clone(),
        };
        println!("{}", serde_json::to_string_pretty(&out)?);
    } else {
        println!(
            "fuzz: {} case(s) over seeds {}..{} ({} job(s)) in {:.1}s{}",
            report.cases,
            cfg.seed_start,
            cfg.seed_end,
            cfg.jobs,
            report.elapsed.as_secs_f64(),
            if report.skipped > 0 {
                format!(", {} seed(s) skipped on budget", report.skipped)
            } else {
                String::new()
            }
        );
        println!(
            "  oracle comparisons={} verifier-rejects={} pass-panics={} divergences={} shrunk={}",
            snap.fuzz.oracle_runs,
            snap.fuzz.verifier_rejects,
            snap.fuzz.pass_panics,
            snap.fuzz.divergences,
            snap.fuzz.shrunk
        );
        println!(
            "  case wall p50={} p99={}",
            fmt_us(snap.fuzz.case_wall.p50_micros),
            fmt_us(snap.fuzz.case_wall.p99_micros)
        );
        if !snap.fuzz.blame.is_empty() {
            println!("\nper-pass blame (appearances in minimal pipelines):");
            let mut blame: Vec<_> = snap.fuzz.blame.iter().collect();
            blame.sort_by_key(|(_, n)| std::cmp::Reverse(**n));
            for (pass, n) in blame.iter().take(15) {
                println!("  {pass:<28} {n}");
            }
        }
        for d in &report.divergences {
            println!("\nseed {} [{}{}]: {}", d.seed, d.profile, if d.deopt { ", deopt" } else { "" }, d.failure);
            println!("  pipeline: {} (sampled {})", d.pipeline.join(" "), d.original_pipeline.len());
            println!("  reduced IR: {} line(s)", d.ir_lines);
            if let Some(p) = &d.repro_path {
                println!("  reproducer: {}", p.display());
            }
        }
    }
    if !report.clean() {
        return Err(format!("{} divergence(s) found", report.divergences.len()).into());
    }
    Ok(())
}

/// The `cg chaos` soak harness: run llvm-v0 episodes with a seeded fault
/// load (injected panics, hangs, backend errors, corrupted replies) and
/// report how many faults the runtime recovered from transparently. Exits
/// non-zero when any episode failed in a way recovery should have absorbed.
fn chaos(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use cg_core::chaos::FaultPlan;
    use cg_core::retry::splitmix64;
    use std::time::Duration;

    let mut episodes: u64 = 20;
    let mut steps: u64 = 10;
    let mut seed: u64 = 7;
    let mut panic_prob = 0.04;
    let mut hang_prob = 0.02;
    let mut error_prob = 0.0;
    let mut corrupt_prob = 0.0;
    let mut wedge_prob = 0.0;
    let mut slow_growth_prob = 0.0;
    let mut timeout_ms: u64 = 400;
    // Containment knobs (the server-side half of the recovery ladder).
    let mut checkpoint_k: u64 = 10;
    let mut budget_wall_ms: u64 = 0;
    let mut max_growth: f64 = 0.0;
    let mut watchdog_ms: u64 = 0;
    let mut breaker_threshold: u32 = 0;
    let mut breaker_cooldown_ms: u64 = 250;
    let mut serve_metrics_addr: Option<String> = None;
    let mut linger_ms: u64 = 0;
    let mut json = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<&String, Box<dyn std::error::Error>> {
            it.next().ok_or_else(|| format!("{name} needs a value").into())
        };
        match flag.as_str() {
            "--episodes" => episodes = val("--episodes")?.parse()?,
            "--steps" => steps = val("--steps")?.parse()?,
            "--seed" => seed = val("--seed")?.parse()?,
            "--panic" => panic_prob = val("--panic")?.parse()?,
            "--hang" => hang_prob = val("--hang")?.parse()?,
            "--error" => error_prob = val("--error")?.parse()?,
            "--corrupt" => corrupt_prob = val("--corrupt")?.parse()?,
            "--wedge" => wedge_prob = val("--wedge")?.parse()?,
            "--slow-growth" => slow_growth_prob = val("--slow-growth")?.parse()?,
            // Fault-kind matrix selector: zero every probability, then give
            // each listed kind its default load.
            "--faults" => {
                panic_prob = 0.0;
                hang_prob = 0.0;
                error_prob = 0.0;
                corrupt_prob = 0.0;
                wedge_prob = 0.0;
                slow_growth_prob = 0.0;
                for kind in val("--faults")?.split(',').filter(|s| !s.is_empty()) {
                    match kind {
                        "panic" => panic_prob = 0.05,
                        "hang" => hang_prob = 0.04,
                        "error" => error_prob = 0.05,
                        "corrupt" => corrupt_prob = 0.04,
                        "wedge" => wedge_prob = 0.03,
                        "slow-growth" => slow_growth_prob = 0.10,
                        other => {
                            return Err(format!("unknown fault kind `{other}`").into())
                        }
                    }
                }
            }
            "--timeout-ms" => timeout_ms = val("--timeout-ms")?.parse()?,
            "--checkpoint-k" => checkpoint_k = val("--checkpoint-k")?.parse()?,
            "--budget-wall-ms" => budget_wall_ms = val("--budget-wall-ms")?.parse()?,
            "--max-growth" => max_growth = val("--max-growth")?.parse()?,
            "--watchdog-ms" => watchdog_ms = val("--watchdog-ms")?.parse()?,
            "--breaker" => breaker_threshold = val("--breaker")?.parse()?,
            "--breaker-cooldown-ms" => {
                breaker_cooldown_ms = val("--breaker-cooldown-ms")?.parse()?;
            }
            "--serve-metrics" => serve_metrics_addr = Some(val("--serve-metrics")?.clone()),
            "--linger-ms" => linger_ms = val("--linger-ms")?.parse()?,
            "--json" => json = true,
            other => return Err(format!("unknown chaos flag `{other}`").into()),
        }
    }
    // Each fault kind needs its matching containment rung; wire the default
    // when the user selected the fault but no explicit limit.
    if slow_growth_prob > 0.0 && max_growth == 0.0 {
        max_growth = 2.0;
    }
    if hang_prob > 0.0 && budget_wall_ms == 0 {
        budget_wall_ms = timeout_ms / 2;
    }
    if wedge_prob > 0.0 && watchdog_ms == 0 {
        watchdog_ms = timeout_ms / 4;
    }

    // Injected panics are expected here; keep their default backtrace spew
    // out of the soak output.
    quiet_chaos_panics();

    let tel = cg_telemetry::global();
    tel.reset();
    // Scrape endpoint over the live registry: up while the soak runs (and,
    // with --linger-ms, for a grace period after), so external collectors
    // can observe a fault-injected run end to end.
    if let Some(addr) = &serve_metrics_addr {
        let bound = cg_telemetry::export::spawn_metrics_server(addr)?;
        eprintln!("serving metrics on http://{bound}/metrics");
    }
    let timeout = Duration::from_millis(timeout_ms.max(50));
    // Hangs must exceed the client deadline to register as faults; the
    // budget guarantees an adversarial plan eventually lets recovery win.
    let plan = FaultPlan::seeded(seed)
        .with_panic_prob(panic_prob)
        .with_hang_prob(hang_prob)
        .with_error_prob(error_prob)
        .with_corrupt_prob(corrupt_prob)
        .with_wedge_prob(wedge_prob)
        .with_slow_growth_prob(slow_growth_prob)
        .with_hang_duration(timeout * 6)
        .with_max_faults(episodes.saturating_mul(2).max(4));
    let inner = cg_core::envs::session_factory("llvm-v0").map_err(cg_core::CgError::Unknown)?;
    let (factory, stats) = plan.wrap(inner);
    let mut env = cg_core::CompilerEnv::with_factory(
        "llvm-v0",
        factory,
        "benchmark://cbench-v1/qsort",
        "Autophase",
        "IrInstructionCount",
        timeout,
    )?;
    env.set_retry_policy(
        cg_core::RetryPolicy::default()
            .with_max_attempts(10)
            .with_backoff(Duration::from_millis(5), Duration::from_millis(200)),
    );
    // Containment wiring. The default checkpoint interval is already K=10;
    // only replace the store for a non-default K (replacing restarts the
    // service, which would pollute the restart counters below).
    if checkpoint_k != cg_core::checkpoint::DEFAULT_CHECKPOINT_INTERVAL {
        env.set_checkpoint_interval(checkpoint_k);
    }
    if budget_wall_ms > 0 || max_growth > 0.0 {
        let mut budget = cg_core::ResourceBudget::default();
        if budget_wall_ms > 0 {
            budget = budget.with_step_wall(Duration::from_millis(budget_wall_ms));
        }
        if max_growth > 0.0 {
            budget = budget.with_max_growth(max_growth);
        }
        env.set_resource_budget(budget)?;
    }
    if watchdog_ms > 0 {
        env.enable_watchdog(cg_core::WatchdogConfig {
            interval: Duration::from_millis(watchdog_ms),
            probe_deadline: Duration::from_millis((watchdog_ms / 2).max(10)),
            misses: 2,
        });
    }
    let breaker = (breaker_threshold > 0).then(|| {
        cg_core::CircuitBreaker::new(
            breaker_threshold,
            Duration::from_millis(breaker_cooldown_ms),
        )
    });
    if let Some(br) = &breaker {
        env.set_circuit_breaker(br.clone());
    }

    const BENCHMARKS: [&str; 4] = [
        "benchmark://cbench-v1/qsort",
        "benchmark://cbench-v1/crc32",
        "benchmark://cbench-v1/sha",
        "benchmark://cbench-v1/bitcount",
    ];
    let mut completed = 0u64;
    let mut session_errors = 0u64;
    let mut circuit_rejections = 0u64;
    let mut unrecovered: Vec<String> = Vec::new();
    for ep in 0..episodes {
        env.set_benchmark(BENCHMARKS[(ep % BENCHMARKS.len() as u64) as usize]);
        if let Err(e) = env.reset() {
            unrecovered.push(format!("episode {ep}: reset: {e}"));
            continue;
        }
        let n = env.action_space().len() as u64;
        let mut ok = true;
        for s in 0..steps {
            let a = (splitmix64(seed ^ (ep * 1_000 + s).wrapping_mul(0x9E37)) % n) as usize;
            match env.step(a) {
                Ok(step) if step.done => break,
                Ok(_) => {}
                // Backend errors are legitimate episode outcomes, not
                // recovery failures (only injected when --error is set).
                Err(cg_core::CgError::Session(_)) => {
                    session_errors += 1;
                    ok = false;
                    break;
                }
                // A quarantined pair fast-failing is the breaker doing its
                // job, not a recovery failure: skip the action and go on.
                Err(cg_core::CgError::CircuitOpen { .. }) => {
                    circuit_rejections += 1;
                }
                Err(e) => {
                    unrecovered.push(format!("episode {ep} step {s}: {e}"));
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            completed += 1;
        }
    }
    // The breaker contract requires open circuits to eventually allow a
    // half-open probe. If the soak never demonstrated it, drive it: wait
    // out the cooldown and probe every quarantined pair.
    let mut breaker_never_half_opened = false;
    if let Some(br) = &breaker {
        if br.trips() > 0 && br.half_opens() == 0 {
            std::thread::sleep(Duration::from_millis(breaker_cooldown_ms + 50));
            for (b, a) in br.open_circuits() {
                let _ = br.admit(&b, a);
            }
            breaker_never_half_opened = br.half_opens() == 0;
        }
    }
    let snap = tel.snapshot();

    if json {
        #[derive(serde::Serialize)]
        struct ChaosReport {
            episodes: u64,
            completed: u64,
            session_errors: u64,
            circuit_rejections: u64,
            unrecovered: Vec<String>,
            injected_panics: u64,
            injected_hangs: u64,
            injected_errors: u64,
            injected_corruptions: u64,
            injected_wedges: u64,
            injected_slow_growths: u64,
            recoveries: u64,
            restarts: u64,
            replay_divergences: u64,
            timeouts: u64,
            service_panics: u64,
            checkpoints_taken: u64,
            checkpoint_restores: u64,
            budget_kills: u64,
            watchdog_restarts: u64,
            breaker_trips: u64,
            breaker_half_opens: u64,
            breaker_fast_fails: u64,
            breaker_never_half_opened: bool,
        }
        let report = ChaosReport {
            episodes,
            completed,
            session_errors,
            circuit_rejections,
            unrecovered: unrecovered.clone(),
            injected_panics: stats.panics(),
            injected_hangs: stats.hangs(),
            injected_errors: stats.errors(),
            injected_corruptions: stats.corruptions(),
            injected_wedges: stats.wedges(),
            injected_slow_growths: stats.slow_growths(),
            recoveries: snap.recoveries,
            restarts: snap.restarts,
            replay_divergences: snap.replay_divergences,
            timeouts: snap.timeouts,
            service_panics: snap.panics,
            checkpoints_taken: snap.checkpoints_taken,
            checkpoint_restores: snap.checkpoint_restores,
            budget_kills: snap.budget_kills,
            watchdog_restarts: snap.watchdog_restarts,
            breaker_trips: snap.breaker_trips,
            breaker_half_opens: snap.breaker_half_opens,
            breaker_fast_fails: snap.breaker_fast_fails,
            breaker_never_half_opened,
        };
        println!("{}", serde_json::to_string_pretty(&report)?);
    } else {
        println!("chaos soak: seed={seed} episodes={episodes} steps={steps}");
        println!(
            "injected faults: panics={} hangs={} errors={} corruptions={} wedges={} \
             slow-growths={} ({} applies, {} observes)",
            stats.panics(),
            stats.hangs(),
            stats.errors(),
            stats.corruptions(),
            stats.wedges(),
            stats.slow_growths(),
            stats.applies(),
            stats.observes()
        );
        println!(
            "recovery: recoveries={} restarts={} replay-divergences={} \
             timeouts={} service-panics={}",
            snap.recoveries, snap.restarts, snap.replay_divergences, snap.timeouts, snap.panics
        );
        println!(
            "containment: checkpoints={} restores={} budget-kills={} watchdog-restarts={} \
             breaker trips={} half-opens={} fast-fails={}",
            snap.checkpoints_taken,
            snap.checkpoint_restores,
            snap.budget_kills,
            snap.watchdog_restarts,
            snap.breaker_trips,
            snap.breaker_half_opens,
            snap.breaker_fast_fails
        );
        println!(
            "episodes: completed={completed}/{episodes} session-errors={session_errors} \
             circuit-rejections={circuit_rejections} unrecovered={}",
            unrecovered.len()
        );
        for line in &unrecovered {
            println!("  UNRECOVERED {line}");
        }
        if breaker_never_half_opened {
            println!("  BREAKER tripped but never reached half-open");
        }
    }
    if serve_metrics_addr.is_some() && linger_ms > 0 {
        std::thread::sleep(Duration::from_millis(linger_ms));
    }
    if !unrecovered.is_empty() {
        return Err(format!("{} unrecovered failure(s)", unrecovered.len()).into());
    }
    if breaker_never_half_opened {
        return Err("breaker tripped but never allowed a half-open probe".into());
    }
    Ok(())
}

/// The `cg bench-pool` surface: measure parallel-evaluation throughput
/// (batch evaluation and vectorized RL stepping) at each requested worker
/// count, and quantify how much raw pass-pipeline work the evaluation
/// cache saves a genetic-algorithm search at equal budget. Writes the
/// machine-readable report to `BENCH_pool.json` (override with `--out`).
fn bench_pool(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use cg_core::{ActionSeq, EnvFactory, EnvPool, EvalCache};
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng as _};
    use std::sync::Arc;
    use std::time::Instant;

    let mut worker_counts: Vec<usize> = vec![1, 2, 4, 8];
    let mut evaluations: usize = 64;
    let mut length: usize = 8;
    let mut benchmark = "benchmark://cbench-v1/crc32".to_string();
    let mut ga_budget: u64 = 240;
    let mut ga_pop: usize = 16;
    let mut seed: u64 = 7;
    let mut out_path = "BENCH_pool.json".to_string();
    let mut json = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<&String, Box<dyn std::error::Error>> {
            it.next().ok_or_else(|| format!("{name} needs a value").into())
        };
        match flag.as_str() {
            "--workers" => {
                worker_counts = val("--workers")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::parse)
                    .collect::<Result<_, _>>()?;
                if worker_counts.is_empty() {
                    return Err("--workers wants a list like 1,2,4,8".into());
                }
            }
            "--evaluations" => evaluations = val("--evaluations")?.parse()?,
            "--length" => length = val("--length")?.parse::<usize>()?.max(1),
            "--benchmark" => benchmark = val("--benchmark")?.clone(),
            "--ga-budget" => ga_budget = val("--ga-budget")?.parse()?,
            "--ga-pop" => ga_pop = val("--ga-pop")?.parse()?,
            "--seed" => seed = val("--seed")?.parse()?,
            "--out" => out_path = val("--out")?.clone(),
            "--json" => json = true,
            other => return Err(format!("unknown bench-pool flag `{other}`").into()),
        }
    }

    let factory: EnvFactory = {
        let benchmark = benchmark.clone();
        Arc::new(move |_widx| {
            cg_core::CompilerEnv::with_factory(
                "llvm-v0",
                cg_core::envs::session_factory("llvm-v0").map_err(cg_core::CgError::Unknown)?,
                &benchmark,
                "Autophase",
                "IrInstructionCount",
                std::time::Duration::from_secs(60),
            )
        })
    };
    let probe = factory(0)?;
    let num_actions = probe.action_space().len();
    drop(probe);

    // The same deterministic job set for every worker count.
    let mut rng = StdRng::seed_from_u64(seed);
    let jobs: Vec<ActionSeq> = (0..evaluations)
        .map(|_| ActionSeq {
            benchmark: benchmark.clone(),
            actions: (0..length).map(|_| rng.gen_range(0..num_actions)).collect(),
        })
        .collect();

    #[derive(serde::Serialize)]
    struct WorkerPoint {
        workers: usize,
        evaluations: usize,
        evals_per_sec: f64,
        batch_wall_ms: f64,
        episodes: usize,
        episodes_per_sec: f64,
        errors: usize,
    }
    #[derive(serde::Serialize)]
    struct GaReport {
        budget: u64,
        population: usize,
        best_cached: f64,
        best_uncached: f64,
        executed_cached: u64,
        executed_uncached: u64,
        saved: u64,
        cache_hits: u64,
        prefix_hits: u64,
        savings_pct: f64,
    }
    #[derive(serde::Serialize)]
    struct Report {
        cpus: usize,
        benchmark: String,
        length: usize,
        workers: Vec<WorkerPoint>,
        ga: GaReport,
    }

    let tel = cg_telemetry::global();
    let mut points = Vec::new();
    for &w in &worker_counts {
        // Cache disabled: pure evaluation throughput, no reuse between
        // worker counts.
        let pool = EnvPool::with_cache(w, Arc::clone(&factory), Arc::new(EvalCache::disabled()));
        // Warm the workers (spawn threads, build envs, parse the benchmark)
        // outside the timed region.
        let warm: Vec<ActionSeq> = jobs.iter().take(w).cloned().collect();
        let _ = pool.evaluate_batch(warm);
        let start = Instant::now();
        let outcomes = pool.evaluate_batch(jobs.clone());
        let wall = start.elapsed();
        let errors = outcomes.iter().filter(|o| o.error.is_some()).count();

        // Vectorized RL stepping: one lockstep episode per worker, repeated.
        let rounds = (evaluations / w.max(1)).clamp(1, 8);
        let ep_start = Instant::now();
        let mut ep_rng = StdRng::seed_from_u64(seed ^ 0xE915);
        for _ in 0..rounds {
            for r in pool.reset_all() {
                r?;
            }
            for _ in 0..length {
                let actions: Vec<usize> =
                    (0..w).map(|_| ep_rng.gen_range(0..num_actions)).collect();
                for s in pool.step_all(&actions) {
                    s?;
                }
            }
        }
        let ep_wall = ep_start.elapsed();
        let episodes = rounds * w;
        points.push(WorkerPoint {
            workers: w,
            evaluations,
            evals_per_sec: evaluations as f64 / wall.as_secs_f64(),
            batch_wall_ms: wall.as_secs_f64() * 1e3,
            episodes,
            episodes_per_sec: episodes as f64 / ep_wall.as_secs_f64(),
            errors,
        });
    }

    // GA at equal budget, cached vs uncached: identical rng stream, so the
    // uncached run executes every action the cached run either executes or
    // saves. The workload mirrors `cg_autotune::genetic_algorithm` over a
    // pool-backed problem (elitist, tournament selection, 0.6 mutation).
    let ga_workers = worker_counts.iter().copied().max().unwrap_or(2);
    // (best score, actions executed, actions saved, cache hits, prefix hits)
    type GaOutcome = (f64, u64, u64, u64, u64);
    let run_ga = |cache: EvalCache| -> Result<GaOutcome, Box<dyn std::error::Error>> {
        let pool = EnvPool::with_cache(ga_workers, Arc::clone(&factory), Arc::new(cache));
        let executed_before = tel.pool.actions_executed.get();
        let saved_before = tel.pool.actions_saved.get();
        let hits_before = tel.pool.cache_hits.get();
        let prefix_before = tel.pool.prefix_hits.get();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6A);
        let eval_many = |pool: &EnvPool, pts: &[Vec<usize>]| -> Vec<f64> {
            let seqs = pts
                .iter()
                .map(|p| ActionSeq { benchmark: benchmark.clone(), actions: p.clone() })
                .collect();
            pool.evaluate_batch(seqs).into_iter().map(|o| o.score).collect()
        };
        let population = ga_pop.max(4);
        let batch = ga_workers * 2;
        let mut pop: Vec<(Vec<usize>, f64)> = Vec::new();
        let mut evals = 0u64;
        let seed_n = population.min(ga_budget as usize);
        while pop.len() < seed_n {
            let k = batch.min(seed_n - pop.len());
            let cands: Vec<Vec<usize>> = (0..k)
                .map(|_| (0..length).map(|_| rng.gen_range(0..num_actions)).collect())
                .collect();
            let scores = eval_many(&pool, &cands);
            evals += k as u64;
            pop.extend(cands.into_iter().zip(scores));
        }
        let by_score = |a: &(Vec<usize>, f64), b: &(Vec<usize>, f64)| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal)
        };
        pop.sort_by(by_score);
        while evals < ga_budget {
            let mut next: Vec<(Vec<usize>, f64)> =
                pop.iter().take(population / 8 + 1).cloned().collect();
            while next.len() < population && evals < ga_budget {
                let k = batch.min(population - next.len()).min((ga_budget - evals) as usize);
                let children: Vec<Vec<usize>> = (0..k)
                    .map(|_| {
                        let pick = |rng: &mut StdRng, pop: &[(Vec<usize>, f64)]| {
                            let a = rng.gen_range(0..pop.len());
                            let b = rng.gen_range(0..pop.len());
                            pop[a.min(b)].0.clone()
                        };
                        let a = pick(&mut rng, &pop);
                        let b = pick(&mut rng, &pop);
                        let cut = rng.gen_range(0..a.len());
                        let mut child: Vec<usize> =
                            a[..cut].iter().chain(b[cut..].iter()).copied().collect();
                        if rng.gen_bool(0.6) {
                            let i = rng.gen_range(0..child.len());
                            child[i] = rng.gen_range(0..num_actions);
                        }
                        child
                    })
                    .collect();
                let scores = eval_many(&pool, &children);
                evals += k as u64;
                next.extend(children.into_iter().zip(scores));
            }
            next.sort_by(by_score);
            pop = next;
        }
        Ok((
            pop[0].1,
            tel.pool.actions_executed.get() - executed_before,
            tel.pool.actions_saved.get() - saved_before,
            tel.pool.cache_hits.get() - hits_before,
            tel.pool.prefix_hits.get() - prefix_before,
        ))
    };
    let (best_cached, executed_cached, saved, cache_hits, prefix_hits) =
        run_ga(EvalCache::default())?;
    let (best_uncached, executed_uncached, _, _, _) = run_ga(EvalCache::disabled())?;
    let savings_pct = if executed_uncached == 0 {
        0.0
    } else {
        100.0 * (executed_uncached - executed_cached.min(executed_uncached)) as f64
            / executed_uncached as f64
    };

    let report = Report {
        cpus: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        benchmark,
        length,
        workers: points,
        ga: GaReport {
            budget: ga_budget,
            population: ga_pop,
            best_cached,
            best_uncached,
            executed_cached,
            executed_uncached,
            saved,
            cache_hits,
            prefix_hits,
            savings_pct,
        },
    };
    let rendered = serde_json::to_string_pretty(&report)?;
    std::fs::write(&out_path, &rendered)?;
    if json {
        println!("{rendered}");
    } else {
        println!("bench-pool on {} ({} cpus), {} evaluations of length {}:", report.benchmark, report.cpus, evaluations, report.length);
        println!(
            "  {:>7} {:>14} {:>14} {:>14} {:>7}",
            "workers", "evals/sec", "batch wall", "episodes/sec", "errors"
        );
        for p in &report.workers {
            println!(
                "  {:>7} {:>14.1} {:>12.0}ms {:>14.1} {:>7}",
                p.workers, p.evals_per_sec, p.batch_wall_ms, p.episodes_per_sec, p.errors
            );
        }
        println!(
            "\nGA at budget {} (population {}, {} workers):",
            report.ga.budget, report.ga.population, ga_workers
        );
        println!(
            "  raw actions executed: cached={} uncached={} saved={} ({:.1}% fewer)",
            report.ga.executed_cached,
            report.ga.executed_uncached,
            report.ga.saved,
            report.ga.savings_pct
        );
        println!(
            "  cache hits={} prefix hits={} best: cached={:+.4} uncached={:+.4}",
            report.ga.cache_hits, report.ga.prefix_hits, report.ga.best_cached, report.ga.best_uncached
        );
        println!("\nreport written to {out_path}");
    }
    Ok(())
}

fn replay(path: Option<&str>, validate: bool) -> Result<(), Box<dyn std::error::Error>> {
    let path = path.ok_or("missing state file")?;
    let text = std::fs::read_to_string(path)?;
    let state = cg_core::EnvState::from_json(&text)?;
    if validate {
        state.validate()?;
        println!("OK: state is reproducible and the reward checks out");
    } else {
        let env = state.replay()?;
        println!("replayed {} actions, reward {:+.4}", state.actions.len(), env.episode_reward());
    }
    Ok(())
}
