//! `cg`: the command-line interface (§III-D) — inspect environments, run
//! random searches, replay and validate saved states, all without writing
//! code.
//!
//! ```text
//! cg describe <env>                         list spaces and actions
//! cg random <env> <benchmark> <steps>       run a random episode
//! cg replay <state.json>                    replay a saved state
//! cg validate <state.json>                  validate reproducibility
//! cg datasets                               list benchmark datasets
//! ```

use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  cg describe <env>\n  cg random <env> <benchmark> <steps>\n  \
         cg replay <state.json>\n  cg validate <state.json>\n  cg datasets"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("describe") => describe(args.get(1).map(String::as_str).unwrap_or("llvm-v0")),
        Some("random") => {
            let env = args.get(1).cloned().unwrap_or_else(|| "llvm-v0".into());
            let bench = args
                .get(2)
                .cloned()
                .unwrap_or_else(|| "benchmark://cbench-v1/qsort".into());
            let steps = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(50);
            random(&env, &bench, steps)
        }
        Some("replay") => replay(args.get(1).map(String::as_str), false),
        Some("validate") => replay(args.get(1).map(String::as_str), true),
        Some("datasets") => {
            for d in cg_datasets::datasets() {
                println!(
                    "{:<18} {:>12}  {}",
                    d.name,
                    d.len().map(|n| n.to_string()).unwrap_or_else(|| "2^32".into()),
                    d.description
                );
            }
            Ok(())
        }
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn describe(env_id: &str) -> Result<(), Box<dyn std::error::Error>> {
    let env = cg_core::make(env_id)?;
    println!("environment: {env_id}");
    for a in env.action_spaces() {
        println!("action space {:?}: {} actions", a.name, a.len());
        for (i, n) in a.actions.iter().enumerate().take(12) {
            println!("  [{i:>3}] {n}");
        }
        if a.len() > 12 {
            println!("  … {} more", a.len() - 12);
        }
    }
    println!("observation spaces:");
    for o in env.observation_spaces() {
        println!(
            "  {:<24} {:?}{}{}",
            o.name,
            o.kind,
            if o.deterministic { "" } else { ", nondeterministic" },
            if o.platform_dependent { ", platform-dependent" } else { "" }
        );
    }
    println!("reward spaces:");
    for r in env.reward_spaces() {
        println!(
            "  {:<24} metric={}{}",
            r.name,
            r.metric,
            r.baseline.as_deref().map(|b| format!(", scaled by {b}")).unwrap_or_default()
        );
    }
    Ok(())
}

fn random(env_id: &str, benchmark: &str, steps: usize) -> Result<(), Box<dyn std::error::Error>> {
    use rand::Rng as _;
    let mut env = cg_core::make(env_id)?;
    env.set_benchmark(benchmark);
    env.reset()?;
    let mut rng = rand::thread_rng();
    let n = env.action_space().len();
    for _ in 0..steps {
        let a = rng.gen_range(0..n);
        let step = env.step(a)?;
        if step.reward != 0.0 {
            println!("{:<28} {:+.4}", env.action_space().actions[a], step.reward);
        }
    }
    println!("episode reward: {:+.4}", env.episode_reward());
    println!("state:\n{}", env.state().to_json());
    Ok(())
}

fn replay(path: Option<&str>, validate: bool) -> Result<(), Box<dyn std::error::Error>> {
    let path = path.ok_or("missing state file")?;
    let text = std::fs::read_to_string(path)?;
    let state = cg_core::EnvState::from_json(&text)?;
    if validate {
        state.validate()?;
        println!("OK: state is reproducible and the reward checks out");
    } else {
        let env = state.replay()?;
        println!("replayed {} actions, reward {:+.4}", state.actions.len(), env.episode_reward());
    }
    Ok(())
}
