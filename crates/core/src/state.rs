//! Environment state serialization and replay validation (§III-B2/B3).
//!
//! A serialized state is `(environment, benchmark, action names, reward)`.
//! Replaying the actions must reproduce the same final state and reward —
//! if it does not, the underlying compiler has a reproducibility bug (this
//! is exactly how the paper caught LLVM's `-gvn-sink`; see the
//! `validation_catches_gvn_sink_bug` integration test).

use serde::{Deserialize, Serialize};

use crate::env::{make, CompilerEnv};
use crate::error::CgError;

/// A serialized episode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnvState {
    /// Environment id (e.g. `llvm-v0`).
    pub env: String,
    /// Benchmark URI.
    pub benchmark: String,
    /// Action names, in application order.
    pub actions: Vec<String>,
    /// Cumulative reward achieved.
    pub reward: f64,
    /// The reward space the reward was measured in.
    pub reward_space: String,
}

impl EnvState {
    /// Serializes to JSON (the on-disk/leaderboard format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("EnvState is always serializable")
    }

    /// Parses from JSON.
    ///
    /// # Errors
    /// Returns a [`CgError::Validation`] describing the parse failure.
    pub fn from_json(s: &str) -> Result<EnvState, CgError> {
        serde_json::from_str(s).map_err(|e| CgError::Validation(format!("bad state json: {e}")))
    }

    /// Replays this state in a fresh environment, returning the environment
    /// at the final state.
    ///
    /// # Errors
    /// Unknown environment/action names, or any session failure.
    pub fn replay(&self) -> Result<CompilerEnv, CgError> {
        let mut env = make(&self.env)?;
        env.set_benchmark(&self.benchmark);
        env.set_reward_space(&self.reward_space);
        env.reset()?;
        for name in &self.actions {
            let idx = env
                .action_space()
                .index_of(name)
                .ok_or_else(|| CgError::Unknown(format!("action `{name}`")))?;
            env.step(idx)?;
        }
        Ok(env)
    }

    /// Validates reproducibility: replays the actions **twice** and checks
    /// that (a) both replays agree with each other and (b) with the recorded
    /// reward (for deterministic reward spaces). Disagreement between
    /// replays indicts the compiler itself — a nondeterministic pass.
    ///
    /// # Errors
    /// [`CgError::Validation`] with a description of the mismatch.
    pub fn validate(&self) -> Result<(), CgError> {
        let mut a = self.replay()?;
        let mut b = self.replay()?;
        let deterministic = a
            .reward_spaces()
            .iter()
            .find(|r| r.name == self.reward_space)
            .map(|r| r.deterministic)
            .unwrap_or(false);
        // Compare final textual state where available (LLVM exposes "Ir");
        // otherwise compare the final reward metric.
        let fingerprint = |env: &mut CompilerEnv| -> Result<String, CgError> {
            match env.observe("Ir") {
                Ok(o) => Ok(format!(
                    "{:016x}",
                    cg_ir::fnv1a(o.as_text().unwrap_or("").as_bytes())
                )),
                Err(_) => Ok(format!("{:.6}", env.episode_reward())),
            }
        };
        let fa = fingerprint(&mut a)?;
        let fb = fingerprint(&mut b)?;
        if fa != fb {
            return Err(CgError::Validation(format!(
                "replaying the same actions twice produced different states \
                 ({fa} vs {fb}): the compiler is nondeterministic"
            )));
        }
        if deterministic {
            let delta = (a.episode_reward() - self.reward).abs();
            if delta > 1e-6 * self.reward.abs().max(1.0) {
                return Err(CgError::Validation(format!(
                    "recorded reward {} but replay achieved {}",
                    self.reward,
                    a.episode_reward()
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let s = EnvState {
            env: "llvm-v0".into(),
            benchmark: "benchmark://cbench-v1/crc32".into(),
            actions: vec!["mem2reg".into(), "dce".into()],
            reward: 12.0,
            reward_space: "IrInstructionCount".into(),
        };
        let j = s.to_json();
        assert_eq!(EnvState::from_json(&j).unwrap(), s);
        assert!(EnvState::from_json("{broken").is_err());
    }

    #[test]
    fn record_then_validate() {
        let mut env = make("llvm-v0").unwrap();
        env.set_benchmark("benchmark://cbench-v1/crc32");
        env.reset().unwrap();
        for name in ["mem2reg", "instcombine", "dce"] {
            let idx = env.action_space().index_of(name).unwrap();
            env.step(idx).unwrap();
        }
        let state = env.state();
        assert_eq!(state.actions.len(), 3);
        state
            .validate()
            .expect("deterministic passes must validate");
    }

    #[test]
    fn validate_rejects_tampered_reward() {
        let mut env = make("llvm-v0").unwrap();
        env.set_benchmark("benchmark://cbench-v1/crc32");
        env.reset().unwrap();
        let idx = env.action_space().index_of("mem2reg").unwrap();
        env.step(idx).unwrap();
        let mut state = env.state();
        state.reward += 1000.0; // a dishonest leaderboard entry
        let err = state.validate().unwrap_err();
        assert!(matches!(err, CgError::Validation(_)));
    }
}
