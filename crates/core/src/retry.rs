//! The configurable retry policy for service calls (§IV-B).
//!
//! The paper's runtime treats every compiler invocation as fallible: calls
//! may crash, hang, or be answered by a service that has since died. Rather
//! than hard-coding "try twice", recovery behaviour is captured in a
//! [`RetryPolicy`] value threaded through [`crate::service::ServiceClient`],
//! [`crate::service::TcpClient`], and [`crate::env::CompilerEnv`]:
//!
//! * **attempts** — how many times a logical call may be issued in total;
//! * **backoff** — exponential delay between attempts, with *deterministic*
//!   jitter derived from a seed (reproducible runs stay reproducible);
//! * **deadlines** — per-request-kind overrides of the client timeout, so a
//!   cheap `Ping` fails fast while a `Step` may legitimately take long;
//! * **budget** — an optional wall-clock cap across all attempts;
//! * **teardown deadline** — a short bound for best-effort cleanup calls
//!   (ending a session on a possibly-dead service must not stall an episode).

use std::collections::HashMap;
use std::time::Duration;

/// SplitMix64: a tiny, high-quality 64-bit mixer. Used for deterministic
/// backoff jitter and by the [`crate::chaos`] fault sampler, so recovery
/// schedules and injected fault sequences are pure functions of their seeds.
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform `f64` in `[0, 1)` from 64 random bits.
#[must_use]
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// How a client recovers from service failures: attempt count, exponential
/// backoff with deterministic jitter, per-request-kind deadlines, and an
/// overall wall-clock budget.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per logical call, including the first (min 1).
    pub max_attempts: u32,
    /// Delay before the first retry; doubles each further retry.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff delay.
    pub max_backoff: Duration,
    /// Fraction of the backoff randomized (±), in `[0, 1]`. Jitter is
    /// deterministic in `(seed, attempt)`.
    pub jitter: f64,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
    /// Optional wall-clock cap across all attempts of one logical call.
    /// When exceeded, the in-flight attempt becomes the last.
    pub budget: Option<Duration>,
    /// Per-request-kind deadline overrides (keyed by `Request::kind()`),
    /// taking precedence over the client's default timeout.
    pub deadlines: HashMap<String, Duration>,
    /// Deadline for best-effort teardown calls (e.g. `EndSession` against a
    /// service that may already be dead). Expiry is not a failure and is not
    /// counted as a timeout.
    pub teardown_deadline: Duration,
}

impl Default for RetryPolicy {
    /// Three attempts (the seed runtime's two retries), 10 ms base backoff
    /// doubling to at most 2 s, ±25% jitter, 250 ms teardown deadline.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(2),
            jitter: 0.25,
            seed: 0x5EED,
            budget: None,
            deadlines: HashMap::new(),
            teardown_deadline: Duration::from_millis(250),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, no backoff).
    #[must_use]
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Sets the total attempt count (min 1).
    #[must_use]
    pub fn with_max_attempts(mut self, attempts: u32) -> RetryPolicy {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Sets the exponential backoff range.
    #[must_use]
    pub fn with_backoff(mut self, base: Duration, max: Duration) -> RetryPolicy {
        self.base_backoff = base;
        self.max_backoff = max.max(base);
        self
    }

    /// Sets the jitter fraction and its seed.
    #[must_use]
    pub fn with_jitter(mut self, jitter: f64, seed: u64) -> RetryPolicy {
        self.jitter = jitter.clamp(0.0, 1.0);
        self.seed = seed;
        self
    }

    /// Sets the overall wall-clock budget across attempts.
    #[must_use]
    pub fn with_budget(mut self, budget: Duration) -> RetryPolicy {
        self.budget = Some(budget);
        self
    }

    /// Overrides the deadline for one request kind (e.g. `"Step"`).
    #[must_use]
    pub fn with_deadline(mut self, kind: &str, deadline: Duration) -> RetryPolicy {
        self.deadlines.insert(kind.to_string(), deadline);
        self
    }

    /// Sets the best-effort teardown deadline.
    #[must_use]
    pub fn with_teardown_deadline(mut self, deadline: Duration) -> RetryPolicy {
        self.teardown_deadline = deadline;
        self
    }

    /// The deadline override for a request kind, if any.
    #[must_use]
    pub fn deadline_for(&self, kind: &str) -> Option<Duration> {
        self.deadlines.get(kind).copied()
    }

    /// Records one retry decision as a `Retried`-status trace span under
    /// the caller's current context: which request kind, which attempt,
    /// what failed, and how long recovery backs off before re-issuing.
    /// Shared by both transports so every retry looks the same in a trace.
    pub fn record_retry(&self, kind: &str, attempt: u32, error: &str) {
        cg_telemetry::global().trace.emit_status(
            format!("rpc:retry:{kind}"),
            format!(
                "attempt {attempt}: {error}; backoff {:?}",
                self.backoff_for(attempt)
            ),
            Duration::ZERO,
            cg_telemetry::SpanStatus::Retried,
        );
    }

    /// The delay to sleep before retry number `attempt` (1-based: the delay
    /// after the first failed attempt is `backoff_for(1)`). Exponential in
    /// the attempt number, capped at `max_backoff`, with deterministic
    /// jitter: the same `(seed, attempt)` always yields the same delay.
    #[must_use]
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        if attempt == 0 || self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let exp = attempt.saturating_sub(1).min(32);
        let raw = self.base_backoff.saturating_mul(1u32 << exp.min(31));
        let capped = raw.min(self.max_backoff);
        if self.jitter <= 0.0 {
            return capped;
        }
        // factor in [1 - jitter, 1 + jitter], deterministic in (seed, attempt).
        let r = unit_f64(splitmix64(
            self.seed ^ u64::from(attempt).wrapping_mul(0x9E37),
        ));
        let factor = 1.0 + self.jitter * (2.0 * r - 1.0);
        capped.mul_f64(factor.max(0.0)).min(self.max_backoff)
    }

    /// Like [`RetryPolicy::backoff_for`], but honoring a server-supplied
    /// floor (e.g. the `retry_after_ms` of a typed
    /// [`crate::CgError::Overloaded`] refusal): the client never retries
    /// earlier than the server asked, even when the jittered exponential
    /// delay — or the `max_backoff` cap — would round below it.
    #[must_use]
    pub fn backoff_with_floor(&self, attempt: u32, floor: Duration) -> Duration {
        self.backoff_for(attempt).max(floor)
    }
}

/// Per-correlation-id retry accounting for pipelined calls.
///
/// A pipelined batch fails as a *transport*, not as a call: when the socket
/// dies mid-window, some requests already have replies and must not be
/// re-issued, while the unanswered remainder each burn one attempt. This
/// tracker holds the per-slot attempt counts across reconnects so the
/// policy's `max_attempts` bounds every individual request, exactly as the
/// serial path does — not the batch as a whole (which would let one flaky
/// link starve a long window) and not per-failure (which would retry
/// forever as long as *some* request succeeds each round).
#[derive(Debug)]
pub struct PipelineRetry {
    policy: RetryPolicy,
    attempts: Vec<u32>,
    started: std::time::Instant,
}

impl PipelineRetry {
    /// Tracks a batch of `n` in-flight requests under `policy`.
    #[must_use]
    pub fn new(n: usize, policy: RetryPolicy) -> PipelineRetry {
        PipelineRetry {
            policy,
            attempts: vec![0; n],
            started: std::time::Instant::now(),
        }
    }

    /// Attempts burned so far by the request in slot `at`.
    #[must_use]
    pub fn attempts(&self, at: usize) -> u32 {
        self.attempts.get(at).copied().unwrap_or(0)
    }

    /// Records one failed attempt for every still-unanswered slot after a
    /// transport failure, emitting the same retry spans as the serial path.
    ///
    /// Returns the delay to back off before re-issuing the unanswered
    /// requests, or `None` when any of them has exhausted the policy
    /// (attempt count or wall-clock budget) — the batch then fails with
    /// the transport error.
    pub fn record_failure(&mut self, unanswered: &[usize], error: &str) -> Option<Duration> {
        let max = self.policy.max_attempts.max(1);
        if self
            .policy
            .budget
            .is_some_and(|b| self.started.elapsed() >= b)
        {
            return None;
        }
        let mut worst = 0u32;
        for &at in unanswered {
            let n = &mut self.attempts[at];
            *n += 1;
            worst = worst.max(*n);
            self.policy
                .record_retry("Pipelined", *n, &format!("slot {at}: {error}"));
        }
        if worst >= max {
            return None;
        }
        Some(self.policy.backoff_for(worst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy::default()
            .with_backoff(Duration::from_millis(10), Duration::from_millis(100))
            .with_jitter(0.0, 0);
        assert_eq!(p.backoff_for(1), Duration::from_millis(10));
        assert_eq!(p.backoff_for(2), Duration::from_millis(20));
        assert_eq!(p.backoff_for(3), Duration::from_millis(40));
        assert_eq!(
            p.backoff_for(10),
            Duration::from_millis(100),
            "capped at max"
        );
        assert_eq!(p.backoff_for(0), Duration::ZERO);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy::default()
            .with_backoff(Duration::from_millis(100), Duration::from_secs(10))
            .with_jitter(0.5, 42);
        let a = p.backoff_for(1);
        let b = p.backoff_for(1);
        assert_eq!(a, b, "same (seed, attempt) must give the same delay");
        assert!(a >= Duration::from_millis(50) && a <= Duration::from_millis(150));
        let q = RetryPolicy::default()
            .with_backoff(Duration::from_millis(100), Duration::from_secs(10))
            .with_jitter(0.5, 43);
        // Different seeds almost surely differ (fixed seeds: this is exact).
        assert_ne!(a, q.backoff_for(1));
    }

    #[test]
    fn per_kind_deadlines() {
        let p = RetryPolicy::default()
            .with_deadline("Ping", Duration::from_millis(50))
            .with_deadline("Step", Duration::from_secs(30));
        assert_eq!(p.deadline_for("Ping"), Some(Duration::from_millis(50)));
        assert_eq!(p.deadline_for("Step"), Some(Duration::from_secs(30)));
        assert_eq!(p.deadline_for("Fork"), None);
    }

    #[test]
    fn server_retry_after_is_a_backoff_floor() {
        // Full jitter so the raw delay can land well below its nominal
        // value: 10ms base with ±100% jitter can round down to ~0.
        let p = RetryPolicy::default()
            .with_backoff(Duration::from_millis(10), Duration::from_millis(80))
            .with_jitter(1.0, 0xF100D);
        let floor = Duration::from_millis(150);
        for attempt in 1..=12 {
            let d = p.backoff_with_floor(attempt, floor);
            assert!(
                d >= floor,
                "attempt {attempt}: {d:?} retried earlier than the server asked ({floor:?})"
            );
        }
        // The floor dominates even the max_backoff cap …
        assert_eq!(p.backoff_with_floor(10, floor), floor);
        // … and a floor below the computed backoff changes nothing.
        let q = RetryPolicy::default()
            .with_backoff(Duration::from_millis(100), Duration::from_secs(2))
            .with_jitter(0.0, 0);
        assert_eq!(
            q.backoff_with_floor(3, Duration::from_millis(1)),
            q.backoff_for(3),
            "a tiny floor must not inflate the normal schedule"
        );
    }

    #[test]
    fn none_never_retries() {
        assert_eq!(RetryPolicy::none().max_attempts, 1);
        assert_eq!(RetryPolicy::default().with_max_attempts(0).max_attempts, 1);
    }

    #[test]
    fn pipeline_retry_bounds_each_slot_not_the_batch() {
        let p = RetryPolicy::default()
            .with_max_attempts(3)
            .with_jitter(0.0, 0)
            .with_backoff(Duration::from_millis(10), Duration::from_millis(40));
        let mut t = PipelineRetry::new(4, p);
        // Slots 2 and 3 unanswered on the first transport failure.
        assert_eq!(
            t.record_failure(&[2, 3], "io"),
            Some(Duration::from_millis(10))
        );
        assert_eq!(t.attempts(2), 1);
        assert_eq!(t.attempts(0), 0, "answered slots burn nothing");
        // Slot 2 answered on the second attempt; slot 3 keeps failing.
        assert_eq!(
            t.record_failure(&[3], "io"),
            Some(Duration::from_millis(20))
        );
        // The third failed attempt exhausts slot 3 under max_attempts=3.
        assert_eq!(t.record_failure(&[3], "io"), None);
    }

    #[test]
    fn pipeline_retry_honors_wall_budget() {
        let p = RetryPolicy::default()
            .with_max_attempts(100)
            .with_budget(Duration::ZERO);
        let mut t = PipelineRetry::new(1, p);
        assert_eq!(
            t.record_failure(&[0], "io"),
            None,
            "a spent budget makes the in-flight attempt the last"
        );
    }

    #[test]
    fn splitmix_is_a_pure_mixer() {
        assert_eq!(splitmix64(7), splitmix64(7));
        assert_ne!(splitmix64(7), splitmix64(8));
        let u = unit_f64(splitmix64(123));
        assert!((0.0..1.0).contains(&u));
    }
}
