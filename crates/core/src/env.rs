//! The user-facing Gym-style environment.
//!
//! # Fault tolerance contract
//!
//! An episode survives its compiler service (§IV-B): the environment records
//! `(benchmark, action space, action history)` and, when a call fails
//! because the service died, hung past its deadline, or the session was
//! destroyed by a panic, it restarts the service, starts a fresh session,
//! and **replays the action history** to restore byte-identical state before
//! retrying the failed call — so user code observes an `Ok` step, not the
//! crash. Replay is checked for consistency: if the restored reward metric
//! diverges from the pre-fault value, the typed
//! [`CgError::ReplayDivergence`] is surfaced (with a trace event and a
//! self-contained JSON reproducer) instead of silently continuing on corrupt
//! state. Recovery effort is governed by the client's [`RetryPolicy`].
//!
//! # Recovery ladder
//!
//! Faults are handled at the cheapest rung that contains them:
//!
//! 1. **in-band budget error** — a pass exceeding its
//!    [`crate::budget::ResourceBudget`] is killed inside the service and
//!    answered as a typed error (no hang, no restart);
//! 2. **checkpoint restore + suffix replay** — recovery restores the latest
//!    matching snapshot from the client-owned
//!    [`crate::checkpoint::CheckpointStore`] and replays only the ≤K-action
//!    suffix (O(K) instead of O(episode));
//! 3. **full replay** — when no checkpoint matches (or restore fails), the
//!    whole action history is replayed as before;
//! 4. **hard failure** — replay divergence or retry exhaustion surfaces as
//!    a typed error; the per-(benchmark, action)
//!    [`crate::breaker::CircuitBreaker`] (if attached) quarantines pairs
//!    that keep killing services so later episodes fail fast.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use cg_telemetry::SpanStatus;

use crate::breaker::{Admission, CircuitBreaker};
use crate::budget::ResourceBudget;
use crate::checkpoint::{Checkpoint, CheckpointStore};
use crate::envs::session_factory;
use crate::error::CgError;
use crate::retry::RetryPolicy;
use crate::service::{Request, Response, ServiceClient, TcpTransport};
use crate::space::{ActionSpaceInfo, Observation, ObservationSpaceInfo, RewardSpaceInfo};
use crate::state::EnvState;
use crate::watchdog::{Watchdog, WatchdogConfig};

/// The result of one `step()`.
#[derive(Debug, Clone)]
pub struct StepResult {
    /// The observation after the action(s), in the configured observation
    /// space.
    pub observation: Observation,
    /// The reward for the action(s), in the configured reward space.
    pub reward: f64,
    /// Whether the episode reached a terminal state.
    pub done: bool,
    /// Whether the action changed the compiler state at all.
    pub changed: bool,
}

/// A portable snapshot of a live episode: the serialized compiler state
/// plus the client-side bookkeeping (metrics, reward, action history)
/// needed to resume rewards seamlessly. Produced by
/// [`CompilerEnv::episode_snapshot`], consumed by
/// [`CompilerEnv::restore_snapshot`] — possibly in a *different*
/// environment over the same backend, which is how the evaluation cache
/// hands shared action prefixes to pool workers without replaying them.
#[derive(Debug, Clone)]
pub struct EpisodeSnapshot {
    /// Benchmark URI the episode runs on.
    pub benchmark: String,
    /// Index into the advertised action spaces.
    pub action_space_index: usize,
    /// Actions applied so far (the prefix this snapshot captures).
    pub actions: Vec<usize>,
    /// Serialized backend state (`CompilationSession::save_state`).
    pub state: Vec<u8>,
    /// Reward metric after the last action.
    pub prev_metric: f64,
    /// Reward metric at episode start.
    pub init_metric: f64,
    /// Baseline metric for scaled reward spaces, if any.
    pub baseline_metric: Option<f64>,
    /// Cumulative episode reward.
    pub episode_reward: f64,
}

/// The service transport an environment drives: the default in-process
/// worker, or a remote service over TCP. Both expose the same call surface
/// ([`ServiceClient`] / [`TcpTransport`]), so the recovery ladder above is
/// transport-agnostic — the same replay, checkpoint-restore, and retry
/// machinery runs whether the compiler lives in this process or on another
/// machine.
#[derive(Debug, Clone)]
pub enum Transport {
    /// In-process service worker reached over channels.
    Local(ServiceClient),
    /// Remote service over length-prefixed TCP frames.
    Tcp(TcpTransport),
}

impl Transport {
    fn call(&self, req: Request) -> Result<Response, CgError> {
        match self {
            Transport::Local(c) => c.call(req),
            Transport::Tcp(c) => c.call(req),
        }
    }

    fn call_teardown(&self, req: Request) -> Result<Response, CgError> {
        match self {
            Transport::Local(c) => c.call_teardown(req),
            Transport::Tcp(c) => c.call_teardown(req),
        }
    }

    fn call_with_policy(&mut self, req: Request) -> Result<Response, CgError> {
        match self {
            Transport::Local(c) => c.call_with_policy(req),
            Transport::Tcp(c) => c.call_with_policy(req),
        }
    }

    /// Issues a batch of requests with the whole window in flight before
    /// the first reply is awaited. Typed per-request errors come back as
    /// raw [`Response`] values in their slots; transport-level failures
    /// error the batch. See [`ServiceClient::call_pipelined`] and
    /// [`TcpTransport::call_pipelined`].
    ///
    /// # Errors
    /// [`CgError::ServiceFailure`] on transport death after retries.
    pub fn call_pipelined(&self, reqs: &[Request]) -> Result<Vec<Response>, CgError> {
        match self {
            Transport::Local(c) => c.call_pipelined(reqs),
            Transport::Tcp(c) => c.call_pipelined(reqs),
        }
    }

    fn policy(&self) -> &RetryPolicy {
        match self {
            Transport::Local(c) => c.policy(),
            Transport::Tcp(c) => c.policy(),
        }
    }

    fn set_policy(&mut self, policy: RetryPolicy) {
        match self {
            Transport::Local(c) => c.set_policy(policy),
            Transport::Tcp(c) => c.set_policy(policy),
        }
    }

    fn restart(&self) {
        match self {
            Transport::Local(c) => c.restart(),
            Transport::Tcp(c) => c.restart(),
        }
    }

    fn restarts(&self) -> u64 {
        match self {
            Transport::Local(c) => c.restarts(),
            Transport::Tcp(c) => c.restarts(),
        }
    }

    fn checkpoint_store(&self) -> &CheckpointStore {
        match self {
            Transport::Local(c) => c.checkpoint_store(),
            Transport::Tcp(c) => c.checkpoint_store(),
        }
    }

    fn set_checkpoint_store(&mut self, store: CheckpointStore) {
        match self {
            Transport::Local(c) => c.set_checkpoint_store(store),
            Transport::Tcp(c) => c.set_checkpoint_store(store),
        }
    }

    fn resource_budget(&self) -> ResourceBudget {
        match self {
            Transport::Local(c) => c.resource_budget(),
            Transport::Tcp(c) => c.resource_budget(),
        }
    }

    fn set_resource_budget(&self, budget: ResourceBudget) -> Result<(), CgError> {
        match self {
            Transport::Local(c) => c.set_resource_budget(budget),
            Transport::Tcp(c) => c.set_resource_budget(budget),
        }
    }
}

/// A compiler optimization environment: the Gym interaction loop (Figure 1)
/// over a [`crate::session::CompilationSession`] living behind the service
/// RPC boundary (Figure 2).
#[derive(Debug)]
pub struct CompilerEnv {
    env_id: String,
    client: Transport,
    session: Option<u64>,
    benchmark: String,
    action_space_index: usize,
    action_spaces: Vec<ActionSpaceInfo>,
    observation_spaces: Vec<ObservationSpaceInfo>,
    reward_spaces: Vec<RewardSpaceInfo>,
    observation_space: String,
    reward_space: String,
    prev_metric: f64,
    init_metric: f64,
    baseline_metric: Option<f64>,
    episode_reward: f64,
    actions: Vec<usize>,
    /// Optional per-(benchmark, action) quarantine, shared between forks.
    breaker: Option<CircuitBreaker>,
    /// Optional heartbeat supervisor for the backing service.
    watchdog: Option<Watchdog>,
    /// The flight-recorder episode this env's steps bind their traces to.
    episode_id: Option<u64>,
    /// Whether this env opened `episode_id` (and must end it on close).
    /// Forks borrow the parent's episode without owning it.
    owns_episode: bool,
    /// Whether this env feeds the global transition sink (when one is
    /// installed). Replay environments disable this: they write through to
    /// their own store directly, and double-logging would count every
    /// served transition twice.
    log_transitions: bool,
    /// Hash of the current state as assigned by the transition sink at the
    /// last reset/step, threaded through as the next step's `from_state`.
    /// `None` when no sink was active at the last reset.
    sink_state: Option<u64>,
}

/// A factory for a whole URI scheme of environment ids (`replay://…`),
/// registered with [`register_env_scheme`] and consulted by [`make`].
pub type SchemeFactory = Arc<dyn Fn(&str) -> Result<CompilerEnv, CgError> + Send + Sync>;

fn scheme_registry() -> &'static parking_lot::RwLock<HashMap<String, SchemeFactory>> {
    static REGISTRY: OnceLock<parking_lot::RwLock<HashMap<String, SchemeFactory>>> =
        OnceLock::new();
    REGISTRY.get_or_init(|| parking_lot::RwLock::new(HashMap::new()))
}

/// Registers a factory for every environment id of the form
/// `<scheme>://…`. [`make`] dispatches such ids to the factory with the
/// full id, so crates layered *above* cg-core (like the transition store's
/// replay environment) can plug whole environment families into the
/// ordinary `make` entry point without a dependency cycle. Re-registering
/// a scheme replaces the previous factory.
pub fn register_env_scheme(scheme: &str, factory: SchemeFactory) {
    scheme_registry()
        .write()
        .insert(scheme.to_string(), factory);
}

/// Records a service-kill fault against every action in the faulting step.
fn record_faults(breaker: &Option<CircuitBreaker>, benchmark: &str, actions: &[usize]) {
    if let Some(br) = breaker {
        for &action in actions {
            br.record_fault(benchmark, action);
        }
    }
}

/// Instantiates a registered environment:
///
/// * `"llvm-v0"` — LLVM phase ordering (Autophase observation,
///   `IrInstructionCount` reward by default)
/// * `"llvm-autophase-ic-v0"` — the preset used by the paper's RL
///   experiments (Autophase observation, `-Oz`-scaled size reward)
/// * `"gcc-v0"` (optionally `"gcc-v0/docker:gcc:11.2.0"` etc.) — GCC flag
///   tuning
/// * `"loop_tool-v0"` — CUDA loop-nest tuning
///
/// # Errors
/// [`CgError::Unknown`] for unregistered ids.
pub fn make(env_id: &str) -> Result<CompilerEnv, CgError> {
    if let Some((scheme, _)) = env_id.split_once("://") {
        let factory = scheme_registry().read().get(scheme).cloned();
        return match factory {
            Some(f) => f(env_id),
            None => Err(CgError::Unknown(format!("environment `{env_id}`"))),
        };
    }
    let (backend, benchmark, obs, rew): (String, &str, &str, &str) = match env_id {
        "llvm-v0" => (
            "llvm-v0".into(),
            "benchmark://cbench-v1/qsort",
            "Autophase",
            "IrInstructionCount",
        ),
        "llvm-ic-v0" => (
            "llvm-v0".into(),
            "benchmark://cbench-v1/qsort",
            "Ir",
            "IrInstructionCount",
        ),
        "llvm-autophase-ic-v0" => (
            "llvm-v0".into(),
            "benchmark://cbench-v1/qsort",
            "Autophase",
            "IrInstructionCountOz",
        ),
        s if s == "gcc-v0" || s.starts_with("gcc-v0/") => (
            s.into(),
            "benchmark://chstone-v0/adpcm",
            "InstructionCounts",
            "ObjSize",
        ),
        "loop_tool-v0" => (
            "loop_tool-v0".into(),
            "benchmark://loop_tool-v0/1048576",
            "ActionState",
            "Flops",
        ),
        other => return Err(CgError::Unknown(format!("environment `{other}`"))),
    };
    CompilerEnv::with_service(
        env_id,
        &backend,
        benchmark,
        obs,
        rew,
        Duration::from_secs(300),
    )
}

/// Like [`make`], but with an explicit recovery policy instead of the
/// default one.
///
/// # Errors
/// See [`make`].
pub fn make_with_policy(env_id: &str, policy: RetryPolicy) -> Result<CompilerEnv, CgError> {
    let mut env = make(env_id)?;
    env.set_retry_policy(policy);
    Ok(env)
}

impl CompilerEnv {
    /// Builds an environment around a freshly spawned service for `backend`.
    ///
    /// # Errors
    /// Fails when the backend cannot describe its spaces.
    pub fn with_service(
        env_id: &str,
        backend: &str,
        benchmark: &str,
        observation_space: &str,
        reward_space: &str,
        timeout: Duration,
    ) -> Result<CompilerEnv, CgError> {
        // Validated eagerly so a bad id fails here, not inside the thread.
        let factory = session_factory(backend).map_err(CgError::Unknown)?;
        Self::with_factory(
            env_id,
            factory,
            benchmark,
            observation_space,
            reward_space,
            timeout,
        )
    }

    /// Builds an environment around an arbitrary session factory. This is
    /// the extension point for custom backends and for fault-injection
    /// harnesses (see [`crate::chaos`]) that need a deliberately
    /// misbehaving session.
    ///
    /// # Errors
    /// Fails when the backend cannot describe its spaces.
    pub fn with_factory(
        env_id: &str,
        factory: crate::service::SessionFactory,
        benchmark: &str,
        observation_space: &str,
        reward_space: &str,
        timeout: Duration,
    ) -> Result<CompilerEnv, CgError> {
        let client = Transport::Local(ServiceClient::spawn(factory, timeout));
        Self::with_transport(env_id, client, benchmark, observation_space, reward_space)
    }

    /// Builds an environment over a remote compiler service reached by TCP
    /// ("running the compiler service on a remote machine"). The same
    /// recovery ladder applies: I/O failures reconnect and replay; session
    /// checkpoints are exported back over the wire at each K-boundary into
    /// the transport's client-owned store, so recovery after a connection
    /// loss replays only the suffix.
    ///
    /// # Errors
    /// Connection failures, or a remote that cannot describe its spaces.
    pub fn connect_tcp(
        env_id: &str,
        addr: &str,
        benchmark: &str,
        observation_space: &str,
        reward_space: &str,
        timeout: Duration,
    ) -> Result<CompilerEnv, CgError> {
        let transport = TcpTransport::connect(addr, timeout)?;
        Self::with_transport(
            env_id,
            Transport::Tcp(transport),
            benchmark,
            observation_space,
            reward_space,
        )
    }

    /// Builds an environment over an already-connected transport.
    ///
    /// # Errors
    /// Fails when the backend cannot describe its spaces.
    pub fn with_transport(
        env_id: &str,
        client: Transport,
        benchmark: &str,
        observation_space: &str,
        reward_space: &str,
    ) -> Result<CompilerEnv, CgError> {
        let (action_spaces, observation_spaces, reward_spaces) =
            match client.call(Request::GetSpaces)? {
                Response::Spaces {
                    action_spaces,
                    observation_spaces,
                    reward_spaces,
                } => (action_spaces, observation_spaces, reward_spaces),
                r => {
                    return Err(CgError::ServiceFailure(format!(
                        "bad GetSpaces reply: {r:?}"
                    )))
                }
            };
        Ok(CompilerEnv {
            env_id: env_id.to_string(),
            client,
            session: None,
            benchmark: benchmark.to_string(),
            action_space_index: 0,
            action_spaces,
            observation_spaces,
            reward_spaces,
            observation_space: observation_space.to_string(),
            reward_space: reward_space.to_string(),
            prev_metric: 0.0,
            init_metric: 0.0,
            baseline_metric: None,
            episode_reward: 0.0,
            actions: Vec::new(),
            breaker: None,
            watchdog: None,
            episode_id: None,
            owns_episode: false,
            log_transitions: true,
            sink_state: None,
        })
    }

    /// Enables or disables feeding the global transition sink from this
    /// environment (default: enabled). The replay environment turns it off
    /// to avoid double-logging transitions it already writes through.
    pub fn set_transition_logging(&mut self, on: bool) {
        self.log_transitions = on;
        if !on {
            self.sink_state = None;
        }
    }

    /// The active transition sink for this env, if logging is on, a sink is
    /// installed, and the backend can serve the `Ir` text the sink records.
    fn active_sink(&self) -> Option<Arc<dyn crate::sink::TransitionSink>> {
        if !self.log_transitions {
            return None;
        }
        let sink = crate::sink::transition_sink()?;
        self.observation_spaces
            .iter()
            .any(|o| o.name == "Ir")
            .then_some(sink)
    }

    /// The environment id this was made as.
    pub fn env_id(&self) -> &str {
        &self.env_id
    }

    /// The recovery policy in effect for this environment's service client.
    pub fn retry_policy(&self) -> &RetryPolicy {
        self.client.policy()
    }

    /// Replaces the recovery policy (attempts, backoff, deadlines) governing
    /// transparent fault recovery.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.client.set_policy(policy);
    }

    /// Sets the in-service [`ResourceBudget`] (rung 1 of the recovery
    /// ladder): runaway steps are killed inside the worker and answered
    /// with a typed [`CgError::BudgetExceeded`] instead of hanging until
    /// the client deadline. The budget survives service restarts.
    ///
    /// # Errors
    /// Service failure delivering the new budget to the live worker (the
    /// budget is still recorded and re-applied on the next restart).
    pub fn set_resource_budget(&mut self, budget: ResourceBudget) -> Result<(), CgError> {
        self.client.set_resource_budget(budget)
    }

    /// The in-service resource budget currently configured.
    pub fn resource_budget(&self) -> ResourceBudget {
        self.client.resource_budget()
    }

    /// Sets the checkpoint interval K: the service snapshots each session
    /// every K applied actions, and recovery replays only the ≤K-action
    /// suffix (rung 2 of the ladder). `0` disables checkpointing.
    ///
    /// Replaces the checkpoint store (existing snapshots are kept — the
    /// ring is shared) and restarts the service so the worker picks up the
    /// new interval; call this before `reset`, not mid-episode.
    pub fn set_checkpoint_interval(&mut self, every_k_actions: u64) {
        let store = self
            .client
            .checkpoint_store()
            .clone()
            .with_interval(every_k_actions);
        self.client.set_checkpoint_store(store);
    }

    /// The client-owned checkpoint store (shared with the service worker).
    pub fn checkpoint_store(&self) -> crate::checkpoint::CheckpointStore {
        self.client.checkpoint_store().clone()
    }

    /// Attaches a per-(benchmark, action) [`CircuitBreaker`]: pairs that
    /// repeatedly kill compiler services fail fast with
    /// [`CgError::CircuitOpen`] instead of burning a retry budget per
    /// episode. Forked environments share the breaker (and its quarantine).
    pub fn set_circuit_breaker(&mut self, breaker: CircuitBreaker) {
        self.breaker = Some(breaker);
    }

    /// The attached circuit breaker, if any.
    pub fn circuit_breaker(&self) -> Option<&CircuitBreaker> {
        self.breaker.as_ref()
    }

    /// Starts a [`Watchdog`] heartbeating this environment's service:
    /// silently-wedged workers are detected between calls and proactively
    /// restarted (in-flight calls abort into the normal recovery path).
    /// Replaces any previous watchdog. In-process transport only: a remote
    /// service's liveness is already surfaced by socket timeouts, and a
    /// heartbeat sharing the single connection would interleave with real
    /// replies.
    pub fn enable_watchdog(&mut self, config: WatchdogConfig) {
        if let Transport::Local(client) = &self.client {
            self.watchdog = Some(Watchdog::spawn(client.clone(), config));
        }
    }

    /// Stops the watchdog, if one is running.
    pub fn disable_watchdog(&mut self) {
        self.watchdog = None;
    }

    /// Number of restarts the watchdog has triggered (0 when none is
    /// attached).
    pub fn watchdog_restarts(&self) -> u64 {
        self.watchdog.as_ref().map_or(0, Watchdog::restarts)
    }

    /// The active action space.
    pub fn action_space(&self) -> &ActionSpaceInfo {
        &self.action_spaces[self.action_space_index]
    }

    /// All action spaces the backend advertises.
    pub fn action_spaces(&self) -> &[ActionSpaceInfo] {
        &self.action_spaces
    }

    /// The advertised observation spaces.
    pub fn observation_spaces(&self) -> &[ObservationSpaceInfo] {
        &self.observation_spaces
    }

    /// The advertised reward spaces.
    pub fn reward_spaces(&self) -> &[RewardSpaceInfo] {
        &self.reward_spaces
    }

    /// Selects the action space used by subsequent episodes (by advertised
    /// index).
    pub fn set_action_space(&mut self, index: usize) {
        self.action_space_index = index.min(self.action_spaces.len().saturating_sub(1));
    }

    /// Sets the benchmark for subsequent episodes.
    pub fn set_benchmark(&mut self, uri: &str) {
        self.benchmark = uri.to_string();
    }

    /// The current benchmark URI.
    pub fn benchmark(&self) -> &str {
        &self.benchmark
    }

    /// Selects the observation space returned by `step`.
    pub fn set_observation_space(&mut self, name: &str) {
        self.observation_space = name.to_string();
    }

    /// Selects the reward space.
    pub fn set_reward_space(&mut self, name: &str) {
        self.reward_space = name.to_string();
    }

    /// Cumulative reward of the episode so far.
    pub fn episode_reward(&self) -> f64 {
        self.episode_reward
    }

    /// The reward metric observed after the most recent action (or at
    /// reset): the raw value episode rewards are deltas of.
    pub fn last_metric(&self) -> f64 {
        self.prev_metric
    }

    /// Actions taken this episode.
    pub fn actions(&self) -> &[usize] {
        &self.actions
    }

    fn reward_info(&self) -> Result<RewardSpaceInfo, CgError> {
        self.reward_spaces
            .iter()
            .find(|r| r.name == self.reward_space)
            .cloned()
            .ok_or_else(|| CgError::Unknown(format!("reward space `{}`", self.reward_space)))
    }

    /// Starts a new episode, returning the initial observation.
    ///
    /// Recovers transparently from a dead or hung service by restarting it
    /// (bounded retries), per the runtime's fault-tolerance contract.
    ///
    /// # Errors
    /// Dataset errors, unknown spaces, or service failure after retries.
    pub fn reset(&mut self) -> Result<Observation, CgError> {
        let tel = cg_telemetry::global();
        let timer = cg_telemetry::Timer::start();
        // One flight-recorder episode per reset: close the previous one and
        // open a fresh timeline every trace this episode produces binds to.
        if let Some(ep) = self.episode_id.take() {
            if self.owns_episode {
                tel.trace.end_episode(ep);
            }
        }
        let episode = tel.trace.begin_episode(&self.env_id, &self.benchmark);
        self.episode_id = Some(episode);
        self.owns_episode = true;
        let mut span = tel.trace.root_span("env:reset");
        span.set_detail(format!("{} {}", self.env_id, self.benchmark));
        tel.trace.bind_episode(span.context().trace_id, episode);
        if let Some(sid) = self.session.take() {
            // Best effort: the old session may be gone if the service died.
            // A short teardown deadline keeps a hung service from stalling
            // the new episode (and its expiry is not a telemetry timeout).
            let _ = self
                .client
                .call_teardown(Request::EndSession { session_id: sid });
        }
        let reward_info = self.reward_info()?;
        let mut spaces = vec![self.observation_space.clone(), reward_info.metric.clone()];
        if let Some(b) = &reward_info.baseline {
            spaces.push(b.clone());
        }
        // When a transition sink is installed, piggyback the IR text onto
        // the same round trip so the sink can hash and log the initial
        // state without an extra service call.
        let sink = self.active_sink();
        if sink.is_some() {
            spaces.push("Ir".to_string());
        }
        let req = Request::StartSession {
            benchmark: self.benchmark.clone(),
            action_space: self.action_space_index,
        };
        let restarts_before = self.client.restarts();
        let sid = match self.client.call_with_policy(req)? {
            Response::SessionStarted { session_id } => session_id,
            r => {
                return Err(CgError::ServiceFailure(format!(
                    "bad StartSession reply: {r:?}"
                )))
            }
        };
        let recovered = self.client.restarts() - restarts_before;
        if recovered > 0 {
            // The service died or hung and was transparently replaced.
            // The transport's restart() already bumped the restart counter;
            // record that an episode recovered, with its benchmark.
            tel.trace.emit_status(
                "env:transparent-restart",
                format!("{} after {} restart(s)", self.benchmark, recovered),
                Duration::ZERO,
                SpanStatus::Recovered,
            );
            span.set_status(SpanStatus::Recovered);
        }
        self.session = Some(sid);
        let resp = self.client.call(Request::Step {
            session_id: sid,
            actions: vec![],
            observation_spaces: spaces,
        })?;
        let Response::Stepped { observations, .. } = resp else {
            return Err(CgError::ServiceFailure("bad Step reply".into()));
        };
        let mut it = observations.into_iter();
        let obs = it
            .next()
            .ok_or(CgError::ServiceFailure("missing observation".into()))?;
        let metric = it
            .next()
            .and_then(|o| o.as_scalar())
            .ok_or(CgError::ServiceFailure("missing metric".into()))?;
        self.prev_metric = metric;
        self.init_metric = metric;
        self.baseline_metric = if reward_info.baseline.is_some() {
            it.next().and_then(|o| o.as_scalar())
        } else {
            None
        };
        self.sink_state = match (&sink, it.next()) {
            (Some(s), Some(o)) => o.as_text().map(|ir| s.record_reset(&self.benchmark, ir)),
            _ => None,
        };
        self.episode_reward = 0.0;
        self.actions.clear();
        tel.episode.episodes.inc();
        let dur = timer.observe(&tel.episode.reset_wall);
        tel.trace
            .emit("reset", format!("{} {}", self.env_id, self.benchmark), dur);
        Ok(obs)
    }

    /// Whether an error means the episode's backing session is gone (dead
    /// or hung service, a panic-destroyed session, or a budget-killed
    /// session) and transparent recovery should be attempted. Backend
    /// errors ([`CgError::Session`]) are legitimate results and are never
    /// retried.
    fn recoverable(e: &CgError) -> bool {
        matches!(
            e,
            CgError::ServiceFailure(_) | CgError::SessionLost(_) | CgError::BudgetExceeded(_)
        )
    }

    /// Whether recovering from `e` requires replacing the service worker.
    /// A budget kill is an in-band answer from a *healthy* worker — only
    /// the session died, so recovery skips the restart rung.
    fn needs_restart(e: &CgError) -> bool {
        !matches!(e, CgError::BudgetExceeded(_))
    }

    /// Issues one request, absorbing typed overload refusals in place. An
    /// [`CgError::Overloaded`] answer means a healthy front door pushed
    /// back — the session is untouched — so the right response is to wait
    /// at least the server-advised `retry_after_ms` (the policy's jittered
    /// backoff never rounds below it) and re-issue the identical request.
    /// Replay and restart are never involved: overload is not a fault.
    fn call_patient(&self, req: Request) -> Result<Response, CgError> {
        let policy = self.client.policy().clone();
        let attempts = policy.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            match self.client.call(req.clone()) {
                Err(CgError::Overloaded {
                    retry_after_ms,
                    reason,
                }) if attempt + 1 < attempts => {
                    attempt += 1;
                    policy.record_retry(req.kind(), attempt, &reason);
                    std::thread::sleep(
                        policy.backoff_with_floor(attempt, Duration::from_millis(retry_after_ms)),
                    );
                }
                other => return other,
            }
        }
    }

    /// Issues a session-scoped request, transparently recovering the episode
    /// on service failure: the service is restarted (unless the fault was an
    /// in-band budget kill), a fresh session is established from the latest
    /// matching checkpoint (or from scratch), the unreplayed action suffix
    /// is replayed (with a consistency check), and the failed call is
    /// retried — up to the policy's attempt count and budget.
    ///
    /// `fault_actions` attributes faults for the circuit breaker: the
    /// actions this request applies. Rejected pairs fail fast with
    /// [`CgError::CircuitOpen`] before touching the service.
    fn call_recovering(
        &mut self,
        fault_actions: &[usize],
        build: impl Fn(u64) -> Request,
    ) -> Result<Response, CgError> {
        let breaker = self.breaker.clone();
        if let Some(br) = &breaker {
            for &action in fault_actions {
                if let Admission::Reject { retry_in } = br.admit(&self.benchmark, action) {
                    cg_telemetry::global().trace.emit_status(
                        "env:circuit-open",
                        format!(
                            "{} action {action} quarantined; retry in {retry_in:?}",
                            self.benchmark
                        ),
                        Duration::ZERO,
                        SpanStatus::CircuitOpen,
                    );
                    return Err(CgError::CircuitOpen {
                        benchmark: self.benchmark.clone(),
                        action,
                        retry_in_ms: retry_in.as_millis().min(u128::from(u64::MAX)) as u64,
                    });
                }
            }
        }
        let sid = self
            .session
            .ok_or_else(|| CgError::Usage("no active episode; call reset()".into()))?;
        let mut last = match self.call_patient(build(sid)) {
            Err(e) if Self::recoverable(&e) => {
                record_faults(&breaker, &self.benchmark, fault_actions);
                e
            }
            other => {
                if other.is_ok() {
                    // A clean call: close half-open probes, reset counts.
                    if let Some(br) = &breaker {
                        for &action in fault_actions {
                            br.record_success(&self.benchmark, action);
                        }
                    }
                }
                return other;
            }
        };
        // The session id now points into a dead, wedged, or budget-killed
        // worker session: drop it immediately so nothing can address the
        // ghost session.
        self.session = None;
        let policy = self.client.policy().clone();
        let start = std::time::Instant::now();
        for attempt in 1..policy.max_attempts.max(1) {
            if policy.budget.is_some_and(|b| start.elapsed() >= b) {
                break;
            }
            std::thread::sleep(policy.backoff_for(attempt));
            match self.replay_episode(Self::needs_restart(&last)) {
                Ok(new_sid) => match self.call_patient(build(new_sid)) {
                    Err(e) if Self::recoverable(&e) => {
                        self.session = None;
                        record_faults(&breaker, &self.benchmark, fault_actions);
                        last = e;
                    }
                    other => return other,
                },
                // A divergent replay is a correctness finding, not a
                // transient fault: surface it instead of retrying.
                Err(e @ CgError::ReplayDivergence { .. }) => return Err(e),
                Err(e) if Self::recoverable(&e) => last = e,
                Err(e) => return Err(e),
            }
        }
        Err(last)
    }

    /// Restores the episode after a fault, climbing down the recovery
    /// ladder: restarts the service (when the fault requires it), restores
    /// the deepest matching checkpoint and replays only the unreplayed
    /// action suffix — falling back to a full-history replay when no
    /// checkpoint matches (or the restored state diverges) — and checks
    /// that the restored reward metric matches the pre-fault `prev_metric`.
    fn replay_episode(&mut self, restart: bool) -> Result<u64, CgError> {
        let tel = cg_telemetry::global();
        let timer = cg_telemetry::Timer::start();
        if restart {
            self.client.restart();
        }
        let reward_info = self.reward_info()?;
        let mut try_checkpoint = true;
        loop {
            let restored = if try_checkpoint {
                self.restore_latest_checkpoint()
            } else {
                None
            };
            let (sid, replay_from) = match restored {
                Some(pair) => pair,
                None => {
                    let resp = self.client.call(Request::StartSession {
                        benchmark: self.benchmark.clone(),
                        action_space: self.action_space_index,
                    })?;
                    match resp {
                        Response::SessionStarted { session_id } => (session_id, 0),
                        r => {
                            return Err(CgError::ServiceFailure(format!(
                                "bad StartSession reply during replay: {r:?}"
                            )))
                        }
                    }
                }
            };
            let resp = self.client.call(Request::Step {
                session_id: sid,
                actions: self.actions[replay_from..].to_vec(),
                observation_spaces: vec![reward_info.metric.clone()],
            })?;
            let Response::Stepped {
                mut observations, ..
            } = resp
            else {
                return Err(CgError::ServiceFailure(
                    "bad Step reply during replay".into(),
                ));
            };
            let metric =
                observations
                    .pop()
                    .and_then(|o| o.as_scalar())
                    .ok_or(CgError::ServiceFailure(
                        "missing metric during replay".into(),
                    ))?;
            let tolerance = 1e-6 * self.prev_metric.abs().max(1.0);
            if (metric - self.prev_metric).abs() <= tolerance {
                self.session = Some(sid);
                if replay_from > 0 {
                    tel.checkpoint_restores.inc();
                    tel.trace.emit_status(
                        "env:checkpoint-restore",
                        format!(
                            "{}: restored checkpoint at depth {replay_from}, replayed \
                             {}-action suffix of {}",
                            self.benchmark,
                            self.actions.len() - replay_from,
                            self.actions.len()
                        ),
                        timer.elapsed(),
                        SpanStatus::Recovered,
                    );
                }
                tel.recoveries.inc();
                tel.trace.emit_status(
                    "env:replay",
                    format!(
                        "{}: {} action(s) replayed to metric {metric}",
                        self.benchmark,
                        self.actions.len() - replay_from
                    ),
                    timer.elapsed(),
                    SpanStatus::Recovered,
                );
                return Ok(sid);
            }
            // The restored metric diverges from the pre-fault value. If a
            // checkpoint was involved it may itself be the culprit (stale
            // or corrupt snapshot): drop down one rung and replay the whole
            // history before declaring a divergence.
            let _ = self
                .client
                .call_teardown(Request::EndSession { session_id: sid });
            if replay_from > 0 {
                tel.trace.emit_status(
                    "env:checkpoint-divergence",
                    format!(
                        "{}: checkpoint at depth {replay_from} replayed to {metric}, expected \
                         {}; falling back to full replay",
                        self.benchmark, self.prev_metric
                    ),
                    timer.elapsed(),
                    SpanStatus::Retried,
                );
                try_checkpoint = false;
                continue;
            }
            tel.replay_divergences.inc();
            tel.trace.emit_status(
                "env:replay-divergence",
                format!(
                    "{}: expected metric {} but replay produced {metric}",
                    self.benchmark, self.prev_metric
                ),
                timer.elapsed(),
                SpanStatus::Error,
            );
            let repro = self.dump_divergence_repro(&reward_info.metric, metric);
            return Err(CgError::ReplayDivergence {
                benchmark: self.benchmark.clone(),
                expected: self.prev_metric,
                actual: metric,
                repro,
            });
        }
    }

    /// Rung 2 of the recovery ladder: restores the deepest stored checkpoint
    /// whose (benchmark, action space, action prefix) matches this episode.
    /// Returns the fresh session id and the checkpoint depth, or `None` when
    /// no checkpoint matches or the restore fails (the caller falls back to
    /// a full replay — a lost checkpoint is never an error).
    fn restore_latest_checkpoint(&mut self) -> Option<(u64, usize)> {
        let cp = self.client.checkpoint_store().latest_matching(
            &self.benchmark,
            self.action_space_index,
            &self.actions,
        )?;
        let depth = cp.depth();
        match self.client.call(Request::RestoreSession {
            benchmark: cp.benchmark,
            action_space: cp.action_space,
            actions: cp.actions,
            state: cp.state,
        }) {
            Ok(Response::SessionStarted { session_id }) => Some((session_id, depth)),
            _ => None,
        }
    }

    /// Writes a self-contained JSON reproducer for a replay divergence
    /// (benchmark, full action history, expected/actual metric) so the
    /// nondeterminism can be re-judged offline, in the same format family
    /// as the fuzzer's miscompilation reproducers. Returns the written
    /// path, or `None` when the dump itself fails (the divergence error is
    /// surfaced either way).
    fn dump_divergence_repro(&self, metric_space: &str, actual: f64) -> Option<String> {
        cg_difftest::DivergenceRepro {
            version: cg_difftest::repro::REPRO_VERSION,
            env: self.env_id.clone(),
            benchmark: self.benchmark.clone(),
            action_space: self.action_space_index,
            actions: self.actions.clone(),
            metric_space: metric_space.to_string(),
            expected: self.prev_metric,
            actual,
        }
        .save(&cg_difftest::repro::default_divergence_dir())
        .ok()
        .map(|p| p.display().to_string())
    }

    /// Applies one action (see [`CompilerEnv::step_batched`] for several).
    ///
    /// Recovers transparently from a mid-episode service fault by replaying
    /// the episode's action history on a fresh service (see the module-level
    /// fault tolerance contract).
    ///
    /// # Errors
    /// [`CgError::Usage`] before `reset`; session or service failures.
    pub fn step(&mut self, action: usize) -> Result<StepResult, CgError> {
        self.step_batched(&[action])
    }

    /// Applies a batch of actions in a single service round trip (§III-B5),
    /// returning the final observation and the summed reward.
    ///
    /// # Errors
    /// See [`CompilerEnv::step`].
    pub fn step_batched(&mut self, actions: &[usize]) -> Result<StepResult, CgError> {
        let (results, step) = self.step_lazy(actions, &[])?;
        debug_assert!(results.is_empty());
        Ok(step)
    }

    /// The lazy-observation step (§III-B5): applies `actions`, then computes
    /// exactly the named `extra_observations` plus the reward metric.
    /// Returns the extra observations in request order.
    ///
    /// # Errors
    /// See [`CompilerEnv::step`].
    pub fn step_lazy(
        &mut self,
        actions: &[usize],
        extra_observations: &[&str],
    ) -> Result<(Vec<Observation>, StepResult), CgError> {
        let tel = cg_telemetry::global();
        // The root of this step's span tree: every rpc attempt, retry,
        // reconnect, restore, replay, and per-pass span this step causes —
        // on either side of the RPC boundary — parents under it, and the
        // whole trace binds to the episode's flight-recorder timeline.
        let mut span = tel.trace.root_span("env:step");
        if let Some(ep) = self.episode_id {
            tel.trace.bind_episode(span.context().trace_id, ep);
        }
        span.attr("benchmark", self.benchmark.clone());
        span.attr("actions", format!("{actions:?}"));
        let restarts_before = self.client.restarts();
        let result = self.step_lazy_inner(actions, extra_observations);
        match &result {
            Ok(_) => {
                if self.client.restarts() > restarts_before {
                    // The step succeeded, but only after the recovery
                    // ladder replaced the service under it.
                    span.set_status(SpanStatus::Recovered);
                }
            }
            Err(CgError::BudgetExceeded(v)) => {
                span.set_status(SpanStatus::BudgetExceeded);
                span.set_detail(v.to_string());
            }
            Err(CgError::CircuitOpen {
                benchmark,
                action,
                retry_in_ms,
            }) => {
                span.set_status(SpanStatus::CircuitOpen);
                span.set_detail(format!(
                    "{benchmark} action {action} retry in {retry_in_ms}ms"
                ));
            }
            Err(e) => {
                span.set_status(SpanStatus::Error);
                span.set_detail(e.to_string());
            }
        }
        result
    }

    fn step_lazy_inner(
        &mut self,
        actions: &[usize],
        extra_observations: &[&str],
    ) -> Result<(Vec<Observation>, StepResult), CgError> {
        let tel = cg_telemetry::global();
        let timer = cg_telemetry::Timer::start();
        let reward_info = self.reward_info()?;
        let mut spaces: Vec<String> = extra_observations.iter().map(|s| s.to_string()).collect();
        let want_default_obs = extra_observations.is_empty();
        if want_default_obs {
            spaces.push(self.observation_space.clone());
        }
        spaces.push(reward_info.metric.clone());
        // Piggyback the IR text for the transition sink in the same RPC.
        let sink = self.active_sink();
        if sink.is_some() {
            spaces.push("Ir".to_string());
        }
        let actions_owned = actions.to_vec();
        let resp = self.call_recovering(actions, |sid| Request::Step {
            session_id: sid,
            actions: actions_owned.clone(),
            observation_spaces: spaces.clone(),
        })?;
        let Response::Stepped {
            end_of_episode,
            changed,
            mut observations,
        } = resp
        else {
            return Err(CgError::ServiceFailure("bad Step reply".into()));
        };
        let ir_obs = if sink.is_some() {
            observations.pop()
        } else {
            None
        };
        let metric = observations
            .pop()
            .and_then(|o| o.as_scalar())
            .ok_or(CgError::ServiceFailure("missing reward metric".into()))?;
        let observation = if want_default_obs {
            observations
                .pop()
                .ok_or(CgError::ServiceFailure("missing observation".into()))?
        } else {
            Observation::Scalar(metric)
        };
        let mut reward = reward_info.sign * (self.prev_metric - metric);
        if reward_info.baseline.is_some() {
            let scale = (self.init_metric - self.baseline_metric.unwrap_or(0.0)).abs();
            reward /= scale.max(1e-9);
        }
        self.prev_metric = metric;
        self.episode_reward += reward;
        self.actions.extend_from_slice(actions);
        if let Some(sink) = &sink {
            if let Some(ir) = ir_obs.as_ref().and_then(|o| o.as_text()) {
                self.sink_state = Some(match self.sink_state {
                    Some(from) => {
                        let names = &self.action_space().actions;
                        let history: Vec<String> = self
                            .actions
                            .iter()
                            .map(|&a| names.get(a).cloned().unwrap_or_default())
                            .collect();
                        sink.record_step(&self.benchmark, &history, from, ir, reward)
                    }
                    // Resumed from a restored snapshot: the pre-step state
                    // is unknown, so only register this state and start
                    // logging edges from the next step.
                    None => sink.record_state(ir),
                });
            }
        }
        tel.episode.steps.inc();
        tel.episode.actions_total.add(actions.len() as u64);
        if changed {
            tel.episode.actions_changed.add(actions.len() as u64);
        }
        tel.episode.reward_sum.add(reward);
        self.maybe_checkpoint_tcp();
        let dur = timer.observe(&tel.episode.step_wall);
        tel.slo.record(dur);
        tel.trace.emit(
            "step",
            format!("{} actions={actions:?} reward={reward:.6}", self.env_id),
            dur,
        );
        Ok((
            observations,
            StepResult {
                observation,
                reward,
                done: end_of_episode,
                changed,
            },
        ))
    }

    /// Client-driven checkpointing for the TCP transport: a remote worker's
    /// server-side snapshots die with its connection, so at each K-boundary
    /// the env exports the session state back over the wire and parks it in
    /// the transport's client-owned store, where
    /// [`CompilerEnv::restore_latest_checkpoint`] finds it after a
    /// reconnect. Best effort — a failed export costs a rung of recovery
    /// speed, never the step.
    fn maybe_checkpoint_tcp(&mut self) {
        let Transport::Tcp(t) = &self.client else {
            return;
        };
        let store = t.checkpoint_store().clone();
        if !store.due(self.actions.len() as u64) {
            return;
        }
        let Some(sid) = self.session else { return };
        if let Ok(Response::State { state: Some(state) }) =
            self.client.call(Request::ExportState { session_id: sid })
        {
            store.put(Checkpoint {
                benchmark: self.benchmark.clone(),
                action_space: self.action_space_index,
                actions: self.actions.clone(),
                state,
            });
        }
    }

    /// Computes a single observation on demand, without taking an action.
    ///
    /// # Errors
    /// See [`CompilerEnv::step`].
    pub fn observe(&mut self, space: &str) -> Result<Observation, CgError> {
        let space_owned = space.to_string();
        let resp = self.call_recovering(&[], |sid| Request::Step {
            session_id: sid,
            actions: vec![],
            observation_spaces: vec![space_owned.clone()],
        })?;
        match resp {
            Response::Stepped {
                mut observations, ..
            } => observations
                .pop()
                .ok_or(CgError::ServiceFailure("missing observation".into())),
            r => Err(CgError::ServiceFailure(format!("bad reply: {r:?}"))),
        }
    }

    /// Creates an independent deep copy of this environment (§III-B6): the
    /// backend session is forked in place, so common action prefixes are
    /// never re-evaluated. The copy shares the service but not the state.
    ///
    /// # Errors
    /// See [`CompilerEnv::step`].
    pub fn fork(&mut self) -> Result<CompilerEnv, CgError> {
        let tel = cg_telemetry::global();
        let timer = cg_telemetry::Timer::start();
        let mut span = tel.trace.root_span("env:fork");
        span.set_detail(format!("{} {}", self.env_id, self.benchmark));
        if let Some(ep) = self.episode_id {
            tel.trace.bind_episode(span.context().trace_id, ep);
        }
        let forked = match self.call_recovering(&[], |sid| Request::Fork { session_id: sid })? {
            Response::Forked { session_id } => session_id,
            r => return Err(CgError::ServiceFailure(format!("bad Fork reply: {r:?}"))),
        };
        let dur = timer.observe(&tel.episode.fork_wall);
        tel.trace
            .emit("fork", format!("{} {}", self.env_id, self.benchmark), dur);
        Ok(CompilerEnv {
            env_id: self.env_id.clone(),
            client: self.client.clone(),
            session: Some(forked),
            benchmark: self.benchmark.clone(),
            action_space_index: self.action_space_index,
            action_spaces: self.action_spaces.clone(),
            observation_spaces: self.observation_spaces.clone(),
            reward_spaces: self.reward_spaces.clone(),
            observation_space: self.observation_space.clone(),
            reward_space: self.reward_space.clone(),
            prev_metric: self.prev_metric,
            init_metric: self.init_metric,
            baseline_metric: self.baseline_metric,
            episode_reward: self.episode_reward,
            actions: self.actions.clone(),
            // Forks share the quarantine: a pair that kills services is
            // pathological for every episode that touches it.
            breaker: self.breaker.clone(),
            watchdog: None,
            // The fork's steps keep binding to the parent's episode until
            // its own reset() opens a timeline of its own — borrowed, not
            // owned, so the fork's close never ends the parent's timeline.
            episode_id: self.episode_id,
            owns_episode: false,
            log_transitions: self.log_transitions,
            // The fork's pre-step state hash is the parent's: the backend
            // session was forked in place, so the next step's edge starts
            // from the same state.
            sink_state: self.sink_state,
        })
    }

    /// Captures the live episode as a portable [`EpisodeSnapshot`]:
    /// serialized backend state plus the client-side reward bookkeeping.
    /// Unlike [`CompilerEnv::fork`] the result is plain data — it can be
    /// cached, sent across threads, and restored into any environment that
    /// shares the backend.
    ///
    /// # Errors
    /// [`CgError::Usage`] before `reset`; service failures; backends
    /// without state serialization.
    pub fn episode_snapshot(&mut self) -> Result<EpisodeSnapshot, CgError> {
        let resp = self.call_recovering(&[], |sid| Request::ExportState { session_id: sid })?;
        let Response::State { state } = resp else {
            return Err(CgError::ServiceFailure(format!(
                "bad ExportState reply: {resp:?}"
            )));
        };
        let state = state
            .ok_or_else(|| CgError::ServiceFailure("session has no exportable state".into()))?;
        Ok(EpisodeSnapshot {
            benchmark: self.benchmark.clone(),
            action_space_index: self.action_space_index,
            actions: self.actions.clone(),
            state,
            prev_metric: self.prev_metric,
            init_metric: self.init_metric,
            baseline_metric: self.baseline_metric,
            episode_reward: self.episode_reward,
        })
    }

    /// Replaces the current episode (if any) with the one captured in
    /// `snap`: the backend session is rebuilt via `RestoreSession` and the
    /// client-side metrics are adopted, so subsequent `step` rewards
    /// continue exactly where the snapshot left off.
    ///
    /// # Errors
    /// Service failures; a backend that rejects the serialized state.
    pub fn restore_snapshot(&mut self, snap: &EpisodeSnapshot) -> Result<(), CgError> {
        if let Some(sid) = self.session.take() {
            let _ = self
                .client
                .call_teardown(Request::EndSession { session_id: sid });
        }
        let resp = self.client.call_with_policy(Request::RestoreSession {
            benchmark: snap.benchmark.clone(),
            action_space: snap.action_space_index,
            actions: snap.actions.clone(),
            state: snap.state.clone(),
        })?;
        let Response::SessionStarted { session_id } = resp else {
            return Err(CgError::ServiceFailure(format!(
                "bad RestoreSession reply: {resp:?}"
            )));
        };
        self.session = Some(session_id);
        self.benchmark = snap.benchmark.clone();
        self.action_space_index = snap.action_space_index;
        self.actions = snap.actions.clone();
        self.prev_metric = snap.prev_metric;
        self.init_metric = snap.init_metric;
        self.baseline_metric = snap.baseline_metric;
        self.episode_reward = snap.episode_reward;
        // The restored state's sink hash is unknown until the next step's
        // piggybacked IR arrives.
        self.sink_state = None;
        Ok(())
    }

    /// Serializes the episode state (§III-B2): benchmark, action names,
    /// cumulative reward.
    pub fn state(&self) -> EnvState {
        let names = self.action_space();
        EnvState {
            env: self.env_id.clone(),
            benchmark: self.benchmark.clone(),
            actions: self
                .actions
                .iter()
                .map(|&a| names.actions[a].clone())
                .collect(),
            reward: self.episode_reward,
            reward_space: self.reward_space.clone(),
        }
    }

    /// Ends the episode and releases the backend session.
    pub fn close(&mut self) {
        if let Some(ep) = self.episode_id.take() {
            if self.owns_episode {
                cg_telemetry::global().trace.end_episode(ep);
            }
        }
        if let Some(sid) = self.session.take() {
            // Best effort with a short teardown deadline: a wedged service
            // must not stall the caller (or Drop) for the full call timeout.
            let _ = self
                .client
                .call_teardown(Request::EndSession { session_id: sid });
        }
    }

    /// Number of service restarts this environment has triggered (fault
    /// tolerance observability).
    pub fn service_restarts(&self) -> u64 {
        self.client.restarts()
    }
}

impl Drop for CompilerEnv {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn make_llvm_and_reduce_size() {
        let mut env = make("llvm-v0").unwrap();
        env.set_benchmark("benchmark://cbench-v1/crc32");
        let obs = env.reset().unwrap();
        assert_eq!(obs.as_int_vector().unwrap().len(), 56); // Autophase
        let idx = env.action_space().index_of("mem2reg").unwrap();
        let step = env.step(idx).unwrap();
        assert!(step.reward > 0.0);
        assert!(step.changed);
        assert!(!step.done);
        assert_eq!(env.actions(), &[idx]);
    }

    #[test]
    fn batched_step_sums_reward_in_one_roundtrip() {
        let mut env = make("llvm-v0").unwrap();
        env.set_benchmark("benchmark://cbench-v1/sha");
        env.reset().unwrap();
        let a = env.action_space().index_of("mem2reg").unwrap();
        let b = env.action_space().index_of("instcombine").unwrap();
        let c = env.action_space().index_of("dce").unwrap();
        let batched = env.step_batched(&[a, b, c]).unwrap();
        // Compare against sequential on a fresh episode.
        let mut env2 = make("llvm-v0").unwrap();
        env2.set_benchmark("benchmark://cbench-v1/sha");
        env2.reset().unwrap();
        let mut total = 0.0;
        for x in [a, b, c] {
            total += env2.step(x).unwrap().reward;
        }
        assert!((batched.reward - total).abs() < 1e-9);
    }

    #[test]
    fn lazy_observations_by_name() {
        let mut env = make("llvm-v0").unwrap();
        env.set_benchmark("benchmark://cbench-v1/crc32");
        env.reset().unwrap();
        let a = env.action_space().index_of("sroa").unwrap();
        let (obs, step) = env.step_lazy(&[a], &["Ir", "InstCount"]).unwrap();
        assert_eq!(obs.len(), 2);
        assert!(obs[0].as_text().is_some());
        assert_eq!(obs[1].as_int_vector().unwrap().len(), 70);
        let _ = step;
    }

    #[test]
    fn scaled_reward_space_is_fraction_of_oz_gain() {
        let mut env = make("llvm-autophase-ic-v0").unwrap();
        env.set_benchmark("benchmark://cbench-v1/qsort");
        env.reset().unwrap();
        // Apply the whole Oz-ish recipe manually; cumulative scaled reward
        // should approach ~1.0 (the Oz gain).
        for name in [
            "sroa",
            "mem2reg",
            "instcombine",
            "gvn",
            "dse",
            "load-elim",
            "adce",
            "simplifycfg-aggressive",
        ] {
            let idx = env.action_space().index_of(name).unwrap();
            env.step(idx).unwrap();
        }
        let total = env.episode_reward();
        assert!(total > 0.5 && total < 1.5, "scaled reward was {total}");
    }

    #[test]
    fn fork_shares_prefix_without_reevaluation() {
        let mut env = make("llvm-v0").unwrap();
        env.set_benchmark("benchmark://cbench-v1/bitcount");
        env.reset().unwrap();
        let m2r = env.action_space().index_of("mem2reg").unwrap();
        env.step(m2r).unwrap();
        let mut forked = env.fork().unwrap();
        // Diverge.
        let dce = env.action_space().index_of("dce").unwrap();
        let gvn = env.action_space().index_of("gvn").unwrap();
        let r1 = env.step(dce).unwrap().reward;
        let r2 = forked.step(gvn).unwrap().reward;
        let _ = (r1, r2);
        assert_ne!(
            env.observe("IrInstructionCount").unwrap(),
            Observation::Scalar(-1.0)
        );
        // Both continue to work independently.
        assert_eq!(env.actions().len(), 2);
        assert_eq!(forked.actions().len(), 2);
    }

    #[test]
    fn gcc_env_round_trip() {
        let mut env = make("gcc-v0").unwrap();
        env.reset().unwrap();
        // Set -O to -Os via the flat action named like "set[-O]=5".
        let idx = env.action_space().index_of("set[-O]=5").unwrap();
        let step = env.step(idx).unwrap();
        assert!(
            step.reward > 0.0,
            "-Os shrinks vs unoptimized: {}",
            step.reward
        );
    }

    #[test]
    fn looptool_env_round_trip() {
        let mut env = make("loop_tool-v0").unwrap();
        env.reset().unwrap();
        let t = env.action_space().index_of("toggle_thread").unwrap();
        let step = env.step(t).unwrap();
        assert!(step.reward > 0.0, "threading raises FLOPs: {}", step.reward);
    }

    #[test]
    fn unknown_env_is_rejected() {
        assert!(matches!(make("nope-v9"), Err(CgError::Unknown(_))));
    }

    #[test]
    fn step_before_reset_is_usage_error() {
        let mut env = make("llvm-v0").unwrap();
        assert!(matches!(env.step(0), Err(CgError::Usage(_))));
    }
}
