//! The user-facing Gym-style environment.
//!
//! # Fault tolerance contract
//!
//! An episode survives its compiler service (§IV-B): the environment records
//! `(benchmark, action space, action history)` and, when a call fails
//! because the service died, hung past its deadline, or the session was
//! destroyed by a panic, it restarts the service, starts a fresh session,
//! and **replays the action history** to restore byte-identical state before
//! retrying the failed call — so user code observes an `Ok` step, not the
//! crash. Replay is checked for consistency: if the restored reward metric
//! diverges from the pre-fault value, the typed
//! [`CgError::ReplayDivergence`] is surfaced (with a trace event) instead of
//! silently continuing on corrupt state. Recovery effort is governed by the
//! client's [`RetryPolicy`].

use std::time::Duration;

use crate::envs::session_factory;
use crate::error::CgError;
use crate::retry::RetryPolicy;
use crate::service::{Request, Response, ServiceClient};
use crate::space::{ActionSpaceInfo, Observation, ObservationSpaceInfo, RewardSpaceInfo};
use crate::state::EnvState;

/// The result of one `step()`.
#[derive(Debug, Clone)]
pub struct StepResult {
    /// The observation after the action(s), in the configured observation
    /// space.
    pub observation: Observation,
    /// The reward for the action(s), in the configured reward space.
    pub reward: f64,
    /// Whether the episode reached a terminal state.
    pub done: bool,
    /// Whether the action changed the compiler state at all.
    pub changed: bool,
}

/// A compiler optimization environment: the Gym interaction loop (Figure 1)
/// over a [`crate::session::CompilationSession`] living behind the service
/// RPC boundary (Figure 2).
#[derive(Debug)]
pub struct CompilerEnv {
    env_id: String,
    client: ServiceClient,
    session: Option<u64>,
    benchmark: String,
    action_space_index: usize,
    action_spaces: Vec<ActionSpaceInfo>,
    observation_spaces: Vec<ObservationSpaceInfo>,
    reward_spaces: Vec<RewardSpaceInfo>,
    observation_space: String,
    reward_space: String,
    prev_metric: f64,
    init_metric: f64,
    baseline_metric: Option<f64>,
    episode_reward: f64,
    actions: Vec<usize>,
}

/// Instantiates a registered environment:
///
/// * `"llvm-v0"` — LLVM phase ordering (Autophase observation,
///   `IrInstructionCount` reward by default)
/// * `"llvm-autophase-ic-v0"` — the preset used by the paper's RL
///   experiments (Autophase observation, `-Oz`-scaled size reward)
/// * `"gcc-v0"` (optionally `"gcc-v0/docker:gcc:11.2.0"` etc.) — GCC flag
///   tuning
/// * `"loop_tool-v0"` — CUDA loop-nest tuning
///
/// # Errors
/// [`CgError::Unknown`] for unregistered ids.
pub fn make(env_id: &str) -> Result<CompilerEnv, CgError> {
    let (backend, benchmark, obs, rew): (String, &str, &str, &str) = match env_id {
        "llvm-v0" => ("llvm-v0".into(), "benchmark://cbench-v1/qsort", "Autophase", "IrInstructionCount"),
        "llvm-ic-v0" => ("llvm-v0".into(), "benchmark://cbench-v1/qsort", "Ir", "IrInstructionCount"),
        "llvm-autophase-ic-v0" => (
            "llvm-v0".into(),
            "benchmark://cbench-v1/qsort",
            "Autophase",
            "IrInstructionCountOz",
        ),
        s if s == "gcc-v0" || s.starts_with("gcc-v0/") => {
            (s.into(), "benchmark://chstone-v0/adpcm", "InstructionCounts", "ObjSize")
        }
        "loop_tool-v0" => ("loop_tool-v0".into(), "benchmark://loop_tool-v0/1048576", "ActionState", "Flops"),
        other => return Err(CgError::Unknown(format!("environment `{other}`"))),
    };
    CompilerEnv::with_service(env_id, &backend, benchmark, obs, rew, Duration::from_secs(300))
}

/// Like [`make`], but with an explicit recovery policy instead of the
/// default one.
///
/// # Errors
/// See [`make`].
pub fn make_with_policy(env_id: &str, policy: RetryPolicy) -> Result<CompilerEnv, CgError> {
    let mut env = make(env_id)?;
    env.set_retry_policy(policy);
    Ok(env)
}

impl CompilerEnv {
    /// Builds an environment around a freshly spawned service for `backend`.
    ///
    /// # Errors
    /// Fails when the backend cannot describe its spaces.
    pub fn with_service(
        env_id: &str,
        backend: &str,
        benchmark: &str,
        observation_space: &str,
        reward_space: &str,
        timeout: Duration,
    ) -> Result<CompilerEnv, CgError> {
        // Validated eagerly so a bad id fails here, not inside the thread.
        let factory = session_factory(backend).map_err(CgError::Unknown)?;
        Self::with_factory(env_id, factory, benchmark, observation_space, reward_space, timeout)
    }

    /// Builds an environment around an arbitrary session factory. This is
    /// the extension point for custom backends and for fault-injection
    /// harnesses (see [`crate::chaos`]) that need a deliberately
    /// misbehaving session.
    ///
    /// # Errors
    /// Fails when the backend cannot describe its spaces.
    pub fn with_factory(
        env_id: &str,
        factory: crate::service::SessionFactory,
        benchmark: &str,
        observation_space: &str,
        reward_space: &str,
        timeout: Duration,
    ) -> Result<CompilerEnv, CgError> {
        let client = ServiceClient::spawn(factory, timeout);
        let (action_spaces, observation_spaces, reward_spaces) =
            match client.call(Request::GetSpaces)? {
                Response::Spaces { action_spaces, observation_spaces, reward_spaces } => {
                    (action_spaces, observation_spaces, reward_spaces)
                }
                r => return Err(CgError::ServiceFailure(format!("bad GetSpaces reply: {r:?}"))),
            };
        Ok(CompilerEnv {
            env_id: env_id.to_string(),
            client,
            session: None,
            benchmark: benchmark.to_string(),
            action_space_index: 0,
            action_spaces,
            observation_spaces,
            reward_spaces,
            observation_space: observation_space.to_string(),
            reward_space: reward_space.to_string(),
            prev_metric: 0.0,
            init_metric: 0.0,
            baseline_metric: None,
            episode_reward: 0.0,
            actions: Vec::new(),
        })
    }

    /// The environment id this was made as.
    pub fn env_id(&self) -> &str {
        &self.env_id
    }

    /// The recovery policy in effect for this environment's service client.
    pub fn retry_policy(&self) -> &RetryPolicy {
        self.client.policy()
    }

    /// Replaces the recovery policy (attempts, backoff, deadlines) governing
    /// transparent fault recovery.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.client.set_policy(policy);
    }

    /// The active action space.
    pub fn action_space(&self) -> &ActionSpaceInfo {
        &self.action_spaces[self.action_space_index]
    }

    /// All action spaces the backend advertises.
    pub fn action_spaces(&self) -> &[ActionSpaceInfo] {
        &self.action_spaces
    }

    /// The advertised observation spaces.
    pub fn observation_spaces(&self) -> &[ObservationSpaceInfo] {
        &self.observation_spaces
    }

    /// The advertised reward spaces.
    pub fn reward_spaces(&self) -> &[RewardSpaceInfo] {
        &self.reward_spaces
    }

    /// Selects the action space used by subsequent episodes (by advertised
    /// index).
    pub fn set_action_space(&mut self, index: usize) {
        self.action_space_index = index.min(self.action_spaces.len().saturating_sub(1));
    }

    /// Sets the benchmark for subsequent episodes.
    pub fn set_benchmark(&mut self, uri: &str) {
        self.benchmark = uri.to_string();
    }

    /// The current benchmark URI.
    pub fn benchmark(&self) -> &str {
        &self.benchmark
    }

    /// Selects the observation space returned by `step`.
    pub fn set_observation_space(&mut self, name: &str) {
        self.observation_space = name.to_string();
    }

    /// Selects the reward space.
    pub fn set_reward_space(&mut self, name: &str) {
        self.reward_space = name.to_string();
    }

    /// Cumulative reward of the episode so far.
    pub fn episode_reward(&self) -> f64 {
        self.episode_reward
    }

    /// Actions taken this episode.
    pub fn actions(&self) -> &[usize] {
        &self.actions
    }

    fn reward_info(&self) -> Result<RewardSpaceInfo, CgError> {
        self.reward_spaces
            .iter()
            .find(|r| r.name == self.reward_space)
            .cloned()
            .ok_or_else(|| CgError::Unknown(format!("reward space `{}`", self.reward_space)))
    }

    /// Starts a new episode, returning the initial observation.
    ///
    /// Recovers transparently from a dead or hung service by restarting it
    /// (bounded retries), per the runtime's fault-tolerance contract.
    ///
    /// # Errors
    /// Dataset errors, unknown spaces, or service failure after retries.
    pub fn reset(&mut self) -> Result<Observation, CgError> {
        let tel = cg_telemetry::global();
        let timer = cg_telemetry::Timer::start();
        if let Some(sid) = self.session.take() {
            // Best effort: the old session may be gone if the service died.
            // A short teardown deadline keeps a hung service from stalling
            // the new episode (and its expiry is not a telemetry timeout).
            let _ = self.client.call_teardown(Request::EndSession { session_id: sid });
        }
        let reward_info = self.reward_info()?;
        let mut spaces = vec![self.observation_space.clone(), reward_info.metric.clone()];
        if let Some(b) = &reward_info.baseline {
            spaces.push(b.clone());
        }
        let req = Request::StartSession {
            benchmark: self.benchmark.clone(),
            action_space: self.action_space_index,
        };
        let restarts_before = self.client.restarts();
        let sid = match self.client.call_with_policy(req)? {
            Response::SessionStarted { session_id } => session_id,
            r => return Err(CgError::ServiceFailure(format!("bad StartSession reply: {r:?}"))),
        };
        let recovered = self.client.restarts() - restarts_before;
        if recovered > 0 {
            // The service died or hung and was transparently replaced.
            // ServiceClient::restart() already bumped the restart counter;
            // record that an episode recovered, with its benchmark.
            tel.trace.emit(
                "env:transparent-restart",
                format!("{} after {} restart(s)", self.benchmark, recovered),
                Duration::ZERO,
            );
        }
        self.session = Some(sid);
        let resp = self.client.call(Request::Step {
            session_id: sid,
            actions: vec![],
            observation_spaces: spaces,
        })?;
        let Response::Stepped { observations, .. } = resp else {
            return Err(CgError::ServiceFailure("bad Step reply".into()));
        };
        let mut it = observations.into_iter();
        let obs = it.next().ok_or(CgError::ServiceFailure("missing observation".into()))?;
        let metric = it
            .next()
            .and_then(|o| o.as_scalar())
            .ok_or(CgError::ServiceFailure("missing metric".into()))?;
        self.prev_metric = metric;
        self.init_metric = metric;
        self.baseline_metric = it.next().and_then(|o| o.as_scalar());
        self.episode_reward = 0.0;
        self.actions.clear();
        tel.episode.episodes.inc();
        let dur = timer.observe(&tel.episode.reset_wall);
        tel.trace.emit("reset", format!("{} {}", self.env_id, self.benchmark), dur);
        Ok(obs)
    }

    /// Whether an error means the episode's backing session is gone (dead
    /// or hung service, or a panic-destroyed session) and transparent
    /// recovery should be attempted. Backend errors ([`CgError::Session`])
    /// are legitimate results and are never retried.
    fn recoverable(e: &CgError) -> bool {
        matches!(e, CgError::ServiceFailure(_) | CgError::SessionLost(_))
    }

    /// Issues a session-scoped request, transparently recovering the episode
    /// on service failure: the service is restarted, a fresh session is
    /// established, the action history is replayed (with a consistency
    /// check), and the failed call is retried — up to the policy's attempt
    /// count and budget.
    fn call_recovering(&mut self, build: impl Fn(u64) -> Request) -> Result<Response, CgError> {
        let sid = self
            .session
            .ok_or_else(|| CgError::Usage("no active episode; call reset()".into()))?;
        let mut last = match self.client.call(build(sid)) {
            Err(e) if Self::recoverable(&e) => e,
            other => return other,
        };
        // The session id now points into a dead or wedged worker: drop it
        // immediately so nothing can address the ghost session.
        self.session = None;
        let policy = self.client.policy().clone();
        let start = std::time::Instant::now();
        for attempt in 1..policy.max_attempts.max(1) {
            if policy.budget.is_some_and(|b| start.elapsed() >= b) {
                break;
            }
            std::thread::sleep(policy.backoff_for(attempt));
            match self.replay_episode() {
                Ok(new_sid) => match self.client.call(build(new_sid)) {
                    Err(e) if Self::recoverable(&e) => {
                        self.session = None;
                        last = e;
                    }
                    other => return other,
                },
                // A divergent replay is a correctness finding, not a
                // transient fault: surface it instead of retrying.
                Err(e @ CgError::ReplayDivergence { .. }) => return Err(e),
                Err(e) if Self::recoverable(&e) => last = e,
                Err(e) => return Err(e),
            }
        }
        Err(last)
    }

    /// Restores the episode after a fault: restarts the service, starts a
    /// fresh session, replays the recorded action history in one batched
    /// step, and checks that the restored reward metric matches the
    /// pre-fault `prev_metric`.
    fn replay_episode(&mut self) -> Result<u64, CgError> {
        let tel = cg_telemetry::global();
        let timer = cg_telemetry::Timer::start();
        self.client.restart();
        let reward_info = self.reward_info()?;
        let resp = self.client.call(Request::StartSession {
            benchmark: self.benchmark.clone(),
            action_space: self.action_space_index,
        })?;
        let sid = match resp {
            Response::SessionStarted { session_id } => session_id,
            r => {
                return Err(CgError::ServiceFailure(format!(
                    "bad StartSession reply during replay: {r:?}"
                )))
            }
        };
        let resp = self.client.call(Request::Step {
            session_id: sid,
            actions: self.actions.clone(),
            observation_spaces: vec![reward_info.metric.clone()],
        })?;
        let Response::Stepped { mut observations, .. } = resp else {
            return Err(CgError::ServiceFailure("bad Step reply during replay".into()));
        };
        let metric = observations
            .pop()
            .and_then(|o| o.as_scalar())
            .ok_or(CgError::ServiceFailure("missing metric during replay".into()))?;
        let tolerance = 1e-6 * self.prev_metric.abs().max(1.0);
        if (metric - self.prev_metric).abs() > tolerance {
            tel.replay_divergences.inc();
            tel.trace.emit(
                "env:replay-divergence",
                format!(
                    "{}: expected metric {} but replay produced {metric}",
                    self.benchmark, self.prev_metric
                ),
                timer.elapsed(),
            );
            return Err(CgError::ReplayDivergence {
                benchmark: self.benchmark.clone(),
                expected: self.prev_metric,
                actual: metric,
            });
        }
        self.session = Some(sid);
        tel.recoveries.inc();
        tel.trace.emit(
            "env:replay",
            format!(
                "{}: {} action(s) replayed to metric {metric}",
                self.benchmark,
                self.actions.len()
            ),
            timer.elapsed(),
        );
        Ok(sid)
    }

    /// Applies one action (see [`CompilerEnv::step_batched`] for several).
    ///
    /// Recovers transparently from a mid-episode service fault by replaying
    /// the episode's action history on a fresh service (see the module-level
    /// fault tolerance contract).
    ///
    /// # Errors
    /// [`CgError::Usage`] before `reset`; session or service failures.
    pub fn step(&mut self, action: usize) -> Result<StepResult, CgError> {
        self.step_batched(&[action])
    }

    /// Applies a batch of actions in a single service round trip (§III-B5),
    /// returning the final observation and the summed reward.
    ///
    /// # Errors
    /// See [`CompilerEnv::step`].
    pub fn step_batched(&mut self, actions: &[usize]) -> Result<StepResult, CgError> {
        let (results, step) = self.step_lazy(actions, &[])?;
        debug_assert!(results.is_empty());
        Ok(step)
    }

    /// The lazy-observation step (§III-B5): applies `actions`, then computes
    /// exactly the named `extra_observations` plus the reward metric.
    /// Returns the extra observations in request order.
    ///
    /// # Errors
    /// See [`CompilerEnv::step`].
    pub fn step_lazy(
        &mut self,
        actions: &[usize],
        extra_observations: &[&str],
    ) -> Result<(Vec<Observation>, StepResult), CgError> {
        let tel = cg_telemetry::global();
        let timer = cg_telemetry::Timer::start();
        let reward_info = self.reward_info()?;
        let mut spaces: Vec<String> = extra_observations.iter().map(|s| s.to_string()).collect();
        let want_default_obs = extra_observations.is_empty();
        if want_default_obs {
            spaces.push(self.observation_space.clone());
        }
        spaces.push(reward_info.metric.clone());
        let actions_owned = actions.to_vec();
        let resp = self.call_recovering(|sid| Request::Step {
            session_id: sid,
            actions: actions_owned.clone(),
            observation_spaces: spaces.clone(),
        })?;
        let Response::Stepped { end_of_episode, changed, mut observations } = resp else {
            return Err(CgError::ServiceFailure("bad Step reply".into()));
        };
        let metric = observations
            .pop()
            .and_then(|o| o.as_scalar())
            .ok_or(CgError::ServiceFailure("missing reward metric".into()))?;
        let observation = if want_default_obs {
            observations.pop().ok_or(CgError::ServiceFailure("missing observation".into()))?
        } else {
            Observation::Scalar(metric)
        };
        let mut reward = reward_info.sign * (self.prev_metric - metric);
        if reward_info.baseline.is_some() {
            let scale = (self.init_metric - self.baseline_metric.unwrap_or(0.0)).abs();
            reward /= scale.max(1e-9);
        }
        self.prev_metric = metric;
        self.episode_reward += reward;
        self.actions.extend_from_slice(actions);
        tel.episode.steps.inc();
        tel.episode.actions_total.add(actions.len() as u64);
        if changed {
            tel.episode.actions_changed.add(actions.len() as u64);
        }
        tel.episode.reward_sum.add(reward);
        let dur = timer.observe(&tel.episode.step_wall);
        tel.trace.emit(
            "step",
            format!("{} actions={actions:?} reward={reward:.6}", self.env_id),
            dur,
        );
        Ok((
            observations,
            StepResult { observation, reward, done: end_of_episode, changed },
        ))
    }

    /// Computes a single observation on demand, without taking an action.
    ///
    /// # Errors
    /// See [`CompilerEnv::step`].
    pub fn observe(&mut self, space: &str) -> Result<Observation, CgError> {
        let space_owned = space.to_string();
        let resp = self.call_recovering(|sid| Request::Step {
            session_id: sid,
            actions: vec![],
            observation_spaces: vec![space_owned.clone()],
        })?;
        match resp {
            Response::Stepped { mut observations, .. } => observations
                .pop()
                .ok_or(CgError::ServiceFailure("missing observation".into())),
            r => Err(CgError::ServiceFailure(format!("bad reply: {r:?}"))),
        }
    }

    /// Creates an independent deep copy of this environment (§III-B6): the
    /// backend session is forked in place, so common action prefixes are
    /// never re-evaluated. The copy shares the service but not the state.
    ///
    /// # Errors
    /// See [`CompilerEnv::step`].
    pub fn fork(&mut self) -> Result<CompilerEnv, CgError> {
        let tel = cg_telemetry::global();
        let timer = cg_telemetry::Timer::start();
        let forked = match self.call_recovering(|sid| Request::Fork { session_id: sid })? {
            Response::Forked { session_id } => session_id,
            r => return Err(CgError::ServiceFailure(format!("bad Fork reply: {r:?}"))),
        };
        let dur = timer.observe(&tel.episode.fork_wall);
        tel.trace.emit("fork", format!("{} {}", self.env_id, self.benchmark), dur);
        Ok(CompilerEnv {
            env_id: self.env_id.clone(),
            client: self.client.clone(),
            session: Some(forked),
            benchmark: self.benchmark.clone(),
            action_space_index: self.action_space_index,
            action_spaces: self.action_spaces.clone(),
            observation_spaces: self.observation_spaces.clone(),
            reward_spaces: self.reward_spaces.clone(),
            observation_space: self.observation_space.clone(),
            reward_space: self.reward_space.clone(),
            prev_metric: self.prev_metric,
            init_metric: self.init_metric,
            baseline_metric: self.baseline_metric,
            episode_reward: self.episode_reward,
            actions: self.actions.clone(),
        })
    }

    /// Serializes the episode state (§III-B2): benchmark, action names,
    /// cumulative reward.
    pub fn state(&self) -> EnvState {
        let names = self.action_space();
        EnvState {
            env: self.env_id.clone(),
            benchmark: self.benchmark.clone(),
            actions: self.actions.iter().map(|&a| names.actions[a].clone()).collect(),
            reward: self.episode_reward,
            reward_space: self.reward_space.clone(),
        }
    }

    /// Ends the episode and releases the backend session.
    pub fn close(&mut self) {
        if let Some(sid) = self.session.take() {
            // Best effort with a short teardown deadline: a wedged service
            // must not stall the caller (or Drop) for the full call timeout.
            let _ = self.client.call_teardown(Request::EndSession { session_id: sid });
        }
    }

    /// Number of service restarts this environment has triggered (fault
    /// tolerance observability).
    pub fn service_restarts(&self) -> u64 {
        self.client.restarts()
    }
}

impl Drop for CompilerEnv {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn make_llvm_and_reduce_size() {
        let mut env = make("llvm-v0").unwrap();
        env.set_benchmark("benchmark://cbench-v1/crc32");
        let obs = env.reset().unwrap();
        assert_eq!(obs.as_int_vector().unwrap().len(), 56); // Autophase
        let idx = env.action_space().index_of("mem2reg").unwrap();
        let step = env.step(idx).unwrap();
        assert!(step.reward > 0.0);
        assert!(step.changed);
        assert!(!step.done);
        assert_eq!(env.actions(), &[idx]);
    }

    #[test]
    fn batched_step_sums_reward_in_one_roundtrip() {
        let mut env = make("llvm-v0").unwrap();
        env.set_benchmark("benchmark://cbench-v1/sha");
        env.reset().unwrap();
        let a = env.action_space().index_of("mem2reg").unwrap();
        let b = env.action_space().index_of("instcombine").unwrap();
        let c = env.action_space().index_of("dce").unwrap();
        let batched = env.step_batched(&[a, b, c]).unwrap();
        // Compare against sequential on a fresh episode.
        let mut env2 = make("llvm-v0").unwrap();
        env2.set_benchmark("benchmark://cbench-v1/sha");
        env2.reset().unwrap();
        let mut total = 0.0;
        for x in [a, b, c] {
            total += env2.step(x).unwrap().reward;
        }
        assert!((batched.reward - total).abs() < 1e-9);
    }

    #[test]
    fn lazy_observations_by_name() {
        let mut env = make("llvm-v0").unwrap();
        env.set_benchmark("benchmark://cbench-v1/crc32");
        env.reset().unwrap();
        let a = env.action_space().index_of("sroa").unwrap();
        let (obs, step) = env.step_lazy(&[a], &["Ir", "InstCount"]).unwrap();
        assert_eq!(obs.len(), 2);
        assert!(obs[0].as_text().is_some());
        assert_eq!(obs[1].as_int_vector().unwrap().len(), 70);
        let _ = step;
    }

    #[test]
    fn scaled_reward_space_is_fraction_of_oz_gain() {
        let mut env = make("llvm-autophase-ic-v0").unwrap();
        env.set_benchmark("benchmark://cbench-v1/qsort");
        env.reset().unwrap();
        // Apply the whole Oz-ish recipe manually; cumulative scaled reward
        // should approach ~1.0 (the Oz gain).
        for name in ["sroa", "mem2reg", "instcombine", "gvn", "dse", "load-elim", "adce", "simplifycfg-aggressive"] {
            let idx = env.action_space().index_of(name).unwrap();
            env.step(idx).unwrap();
        }
        let total = env.episode_reward();
        assert!(total > 0.5 && total < 1.5, "scaled reward was {total}");
    }

    #[test]
    fn fork_shares_prefix_without_reevaluation() {
        let mut env = make("llvm-v0").unwrap();
        env.set_benchmark("benchmark://cbench-v1/bitcount");
        env.reset().unwrap();
        let m2r = env.action_space().index_of("mem2reg").unwrap();
        env.step(m2r).unwrap();
        let mut forked = env.fork().unwrap();
        // Diverge.
        let dce = env.action_space().index_of("dce").unwrap();
        let gvn = env.action_space().index_of("gvn").unwrap();
        let r1 = env.step(dce).unwrap().reward;
        let r2 = forked.step(gvn).unwrap().reward;
        let _ = (r1, r2);
        assert_ne!(
            env.observe("IrInstructionCount").unwrap(),
            Observation::Scalar(-1.0)
        );
        // Both continue to work independently.
        assert_eq!(env.actions().len(), 2);
        assert_eq!(forked.actions().len(), 2);
    }

    #[test]
    fn gcc_env_round_trip() {
        let mut env = make("gcc-v0").unwrap();
        env.reset().unwrap();
        // Set -O to -Os via the flat action named like "set[-O]=5".
        let idx = env.action_space().index_of("set[-O]=5").unwrap();
        let step = env.step(idx).unwrap();
        assert!(step.reward > 0.0, "-Os shrinks vs unoptimized: {}", step.reward);
    }

    #[test]
    fn looptool_env_round_trip() {
        let mut env = make("loop_tool-v0").unwrap();
        env.reset().unwrap();
        let t = env.action_space().index_of("toggle_thread").unwrap();
        let step = env.step(t).unwrap();
        assert!(step.reward > 0.0, "threading raises FLOPs: {}", step.reward);
    }

    #[test]
    fn unknown_env_is_rejected() {
        assert!(matches!(make("nope-v9"), Err(CgError::Unknown(_))));
    }

    #[test]
    fn step_before_reset_is_usage_error() {
        let mut env = make("llvm-v0").unwrap();
        assert!(matches!(env.step(0), Err(CgError::Usage(_))));
    }
}
