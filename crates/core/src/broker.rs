//! Multi-tenant front door: the session broker (admission control,
//! per-tenant quotas, fair scheduling, backpressure, graceful drain).
//!
//! The legacy TCP server ([`crate::service::serve_tcp`]) is
//! thread-per-connection: every client gets a private [`ServiceState`] and
//! an unbounded right to spawn work. That model is fine for one researcher
//! driving one environment; it collapses when a shared service fronts many
//! tenants — one noisy client can monopolize the machine, overload answers
//! arrive as hangs or dropped connections, and shutdown loses live episodes.
//!
//! The broker replaces it with a bounded front door:
//!
//! * **Fixed worker fleet.** `workers` threads each own one [`ServiceState`]
//!   (the [`crate::pool::EnvPool`] ownership pattern: sessions are sharded,
//!   never shared, no locks around compiler state). Session ids returned to
//!   clients are *global*: `gid = local_id * workers + worker_index`, a
//!   stateless bijection that routes any follow-up request to its owning
//!   worker (`gid % workers`) without a shared allocator.
//! * **Per-tenant FIFO queues, deficit-round-robin service.** Each worker
//!   keeps one FIFO per tenant and serves them DRR-fair with a configurable
//!   quantum, so a tenant's throughput share is bounded by scheduling, not
//!   by how fast it can enqueue. A request's cost is its action count
//!   (`max(1, actions.len())`) — batching buys efficiency, not priority.
//! * **Explicit admission control.** Before any work is queued, a request
//!   climbs the admission ladder: broker stopped → draining (new sessions
//!   only) → global session cap → per-tenant concurrent-session quota →
//!   per-tenant actions/second token bucket → per-tenant queue depth.
//!   Every refusal is a *typed, in-band* [`Response::Overloaded`] carrying
//!   `retry_after_ms` — never a hang, never a dropped connection. Clients
//!   surface it as [`crate::CgError::Overloaded`] and
//!   [`crate::retry::RetryPolicy::backoff_with_floor`] honors the server's
//!   delay as a floor under the client's own jittered backoff.
//! * **Graceful degradation.** Under queue pressure the broker sheds the
//!   *newest non-established* work first: a request addressing a live
//!   session may evict a queued session-creation job, so established
//!   episodes keep progressing at fair share while speculative new work is
//!   pushed back with `Overloaded`.
//! * **Graceful drain.** [`Broker::drain`] stops admitting new sessions,
//!   lets queued work finish within a grace period, sheds the remainder
//!   (typed refusals, not silence), then stops the fleet — each worker
//!   parks its live sessions into the [`CheckpointStore`]
//!   ([`ServiceState::checkpoint_all`]) so episodes survive restarts.
//!   A `Shutdown` request over TCP triggers the same path.
//!
//! Everything the front door decides is observable: `broker:admit`,
//! `broker:queue`, `broker:shed`, and `broker:drain` trace spans, plus the
//! `cg_broker_*` Prometheus families (admitted/refused/shed/quota
//! counters, session/queue-depth/connection gauges, queue-wait histogram).

use std::collections::{HashMap, VecDeque};
use std::net::{TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cg_telemetry::{SpanStatus, TraceContext};
use crossbeam::channel::{bounded, Receiver, Sender};
use serde::{Deserialize, Serialize};

use crate::budget::ResourceBudget;
use crate::checkpoint::CheckpointStore;
use crate::service::{
    account_rx, account_tx, extract_tenant, extract_trace_context, write_frame, FrameReader,
    Request, Response, ServiceState, SessionFactory,
};
use crate::wire::{self, WireCodec};

/// Tenant a request is billed to when its client never identified itself
/// (old clients, [`crate::service::TcpClient`]s without `set_tenant`).
pub const ANONYMOUS_TENANT: &str = "anonymous";

/// Per-tenant limits. One quota applies uniformly to every tenant — the
/// broker isolates tenants from each other, it does not rank them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantQuota {
    /// Concurrent sessions one tenant may hold (`0` = unlimited). The
    /// N+1-th `StartSession`/`Fork`/`RestoreSession` is refused typed.
    pub max_sessions: usize,
    /// Sustained actions/second one tenant may apply (`0.0` = unlimited),
    /// enforced by a token bucket; refusals advise `retry_after_ms` equal
    /// to the bucket's refill time for the request's cost.
    pub actions_per_sec: f64,
    /// Token-bucket capacity in actions: the burst a tenant may spend
    /// instantly before the sustained rate gates it.
    pub burst: f64,
}

impl Default for TenantQuota {
    /// 8 concurrent sessions, unlimited action rate, burst of 64 actions.
    fn default() -> TenantQuota {
        TenantQuota {
            max_sessions: 8,
            actions_per_sec: 0.0,
            burst: 64.0,
        }
    }
}

/// Broker sizing and overload policy.
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// Worker threads (each owning one [`ServiceState`] shard). Min 1.
    pub workers: usize,
    /// Global cap on concurrent sessions across all tenants.
    pub max_sessions: usize,
    /// Per-tenant cap on queued (admitted, not yet executing) requests.
    pub max_queue_depth: usize,
    /// Cap on concurrent TCP connections through [`Broker::serve`].
    pub max_connections: usize,
    /// DRR quantum in action units added to a tenant's deficit per
    /// scheduling round. Small values interleave tenants finely; large
    /// values favor batch throughput.
    pub quantum: u64,
    /// Baseline `retry_after_ms` advised on refusals that have no better
    /// estimate (caps, queue pressure). Rate-quota refusals advise the
    /// actual token-bucket refill time instead.
    pub retry_after_ms: u64,
    /// How long [`Broker::drain`] lets queued work finish before shedding
    /// the remainder (the TCP `Shutdown` path uses this value).
    pub drain_grace: Duration,
    /// The uniform per-tenant quota.
    pub quota: TenantQuota,
    /// Resource budget installed in every worker's [`ServiceState`].
    pub budget: ResourceBudget,
    /// Checkpoint store shared by all workers — interval snapshots during
    /// service, the park-everything sweep on drain.
    pub checkpoints: CheckpointStore,
    /// Whether the front door answers CGB1 binary negotiation (`true`, the
    /// default). `false` makes the broker behave like a JSON-only legacy
    /// server — binary probes get the typed bad-frame error that tells a
    /// negotiating client to fall back, which is how `cg serve --codec
    /// json` pins the wire format and how interop tests model old peers.
    pub binary_wire: bool,
}

impl Default for BrokerConfig {
    fn default() -> BrokerConfig {
        BrokerConfig {
            workers: 4,
            max_sessions: 512,
            max_queue_depth: 64,
            max_connections: crate::service::DEFAULT_MAX_TCP_CONNECTIONS,
            quantum: 8,
            retry_after_ms: 50,
            drain_grace: Duration::from_secs(5),
            quota: TenantQuota::default(),
            budget: ResourceBudget::default(),
            checkpoints: CheckpointStore::default(),
            binary_wire: true,
        }
    }
}

/// What [`Broker::drain`] accomplished.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrainReport {
    /// Live sessions parked into the checkpoint store by exiting workers.
    pub checkpointed: usize,
    /// Queued jobs refused (`Overloaded`) when the grace period expired.
    pub shed_queued: usize,
    /// Wall-clock the drain took, in milliseconds.
    pub waited_ms: u64,
}

/// The outcome of [`Broker::submit`].
pub enum Submitted {
    /// Admitted: the reply (or, for fan-out requests like `Configure`,
    /// `replies` replies) arrives on `rx` once a worker serves the job.
    Queued {
        /// Reply channel.
        rx: Receiver<Response>,
        /// How many responses to collect from `rx`.
        replies: usize,
    },
    /// Refused by the admission ladder; answer the client with
    /// [`Response::Overloaded`] carrying these fields.
    Refused {
        /// Advised minimum delay before retrying.
        retry_after_ms: u64,
        /// Which rung refused.
        reason: String,
    },
    /// Rejected outright with a non-overload reply (e.g. a tenant
    /// addressing another tenant's session). Not an overload signal: the
    /// client must not retry.
    Rejected(Response),
}

/// One admitted unit of work waiting in a per-tenant queue.
struct Job {
    req: Request,
    ctx: Option<TraceContext>,
    reply: Sender<Response>,
    tenant: String,
    /// DRR cost in action units: `max(1, actions.len())`.
    cost: u64,
    /// Reserves a session slot (`StartSession`/`RestoreSession`/`Fork`).
    creates: bool,
    /// Releases a session slot on completion (`EndSession`).
    ends: bool,
    /// Global session id the request addresses, if any.
    target: Option<u64>,
    /// Worker index this job was placed on (for per-worker accounting
    /// when a queued creation is shed before running).
    placed: usize,
    enqueued: Instant,
}

/// Token bucket and occupancy for one tenant.
struct TenantState {
    /// Live sessions plus in-flight creation reservations.
    live: usize,
    /// Jobs admitted but not yet picked up by a worker.
    queued: usize,
    tokens: f64,
    refilled: Instant,
}

/// One worker's per-tenant FIFOs under deficit-round-robin.
#[derive(Default)]
struct WorkerQueues {
    queues: HashMap<String, VecDeque<Job>>,
    /// Round-robin order of tenants with backlog on this worker.
    order: VecDeque<String>,
    deficits: HashMap<String, u64>,
}

impl WorkerQueues {
    fn push(&mut self, job: Job) {
        let tenant = job.tenant.clone();
        let queue = self.queues.entry(tenant.clone()).or_default();
        if queue.is_empty() && !self.order.iter().any(|t| t == &tenant) {
            self.order.push_back(tenant);
        }
        queue.push_back(job);
    }

    /// Pops the next job under DRR: each rotation tops every backlogged
    /// tenant's deficit up by `quantum`; a tenant serves from its FIFO
    /// while its deficit covers the head job's cost. Terminates because
    /// every full rotation strictly grows some nonempty tenant's deficit.
    fn pop_drr(&mut self, quantum: u64) -> Option<Job> {
        let quantum = quantum.max(1);
        loop {
            // Retire tenants whose queue drained (their deficit resets:
            // an idle tenant does not bank scheduling credit).
            while let Some(front) = self.order.front() {
                if self.queues.get(front).is_some_and(|q| !q.is_empty()) {
                    break;
                }
                let t = self.order.pop_front().expect("front checked");
                self.queues.remove(&t);
                self.deficits.remove(&t);
            }
            let tenant = self.order.front()?.clone();
            let cost = self.queues[&tenant].front().expect("nonempty queue").cost;
            let deficit = self.deficits.entry(tenant.clone()).or_insert(0);
            if *deficit >= cost {
                *deficit -= cost;
                let job = self
                    .queues
                    .get_mut(&tenant)
                    .expect("queue exists")
                    .pop_front()?;
                if self.queues[&tenant].is_empty() {
                    self.order.pop_front();
                    self.queues.remove(&tenant);
                    self.deficits.remove(&tenant);
                }
                return Some(job);
            }
            *deficit += quantum;
            self.order.rotate_left(1);
        }
    }

    /// Removes this tenant's newest queued session-creation job, if any —
    /// the shed-newest-non-established-first eviction victim.
    fn evict_newest_create(&mut self, tenant: &str) -> Option<Job> {
        let queue = self.queues.get_mut(tenant)?;
        let at = queue.iter().rposition(|job| job.creates)?;
        queue.remove(at)
    }
}

/// Broker state behind the single mutex: queues, tenant accounting, and
/// the session → tenant ownership map.
struct Core {
    draining: bool,
    stopped: bool,
    drain_claimed: bool,
    finished: bool,
    report: Option<DrainReport>,
    tenants: HashMap<String, TenantState>,
    /// Global session id → owning tenant.
    sessions: HashMap<u64, String>,
    /// Live sessions plus reservations, across all tenants.
    live_total: usize,
    queued_total: usize,
    /// Live sessions plus reservations per worker, indexed by worker;
    /// drives least-loaded placement of new sessions.
    live_per_worker: Vec<usize>,
    next_worker: usize,
    workers: Vec<WorkerQueues>,
    /// A fresh tenant's initial token balance (the configured burst).
    initial_tokens: f64,
    /// Jobs shed while stopping, carried to the drain report.
    pending_shed: usize,
}

impl Core {
    fn tenant_mut(&mut self, tenant: &str) -> &mut TenantState {
        let initial = self.initial_tokens;
        self.tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantState {
                live: 0,
                queued: 0,
                tokens: initial,
                refilled: Instant::now(),
            })
    }

    /// The worker carrying the fewest live sessions and reservations.
    /// Ties break at a rotating start index, so an idle fleet still
    /// spreads consecutive creates instead of piling onto worker 0.
    fn least_loaded_worker(&mut self) -> usize {
        let n = self.live_per_worker.len().max(1);
        let start = self.next_worker;
        self.next_worker = (start + 1) % n;
        (0..n)
            .map(|i| (start + i) % n)
            .min_by_key(|&w| self.live_per_worker[w])
            .unwrap_or(0)
    }

    /// Returns a session-creation reservation that did not become a live
    /// session (failed create, evicted queued create, shed on drain).
    fn release_reservation(&mut self, tenant: &str, worker: usize) {
        if let Some(state) = self.tenants.get_mut(tenant) {
            state.live = state.live.saturating_sub(1);
        }
        self.live_total = self.live_total.saturating_sub(1);
        if let Some(load) = self.live_per_worker.get_mut(worker) {
            *load = load.saturating_sub(1);
        }
        cg_telemetry::global().broker.sessions.dec();
    }

    /// Forgets a live session (ended, destroyed by fault or budget kill).
    fn release_session(&mut self, gid: u64) {
        if let Some(tenant) = self.sessions.remove(&gid) {
            if let Some(state) = self.tenants.get_mut(&tenant) {
                state.live = state.live.saturating_sub(1);
            }
            self.live_total = self.live_total.saturating_sub(1);
            let worker = (gid % self.live_per_worker.len().max(1) as u64) as usize;
            if let Some(load) = self.live_per_worker.get_mut(worker) {
                *load = load.saturating_sub(1);
            }
            cg_telemetry::global().broker.sessions.dec();
        }
    }

    fn enqueue(&mut self, worker: usize, job: Job) {
        self.tenant_mut(&job.tenant).queued += 1;
        self.queued_total += 1;
        cg_telemetry::global().broker.queue_depth.inc();
        self.workers[worker].push(job);
    }

    /// Drops one queued job with a typed `Overloaded` reply and full
    /// accounting (queue counters, creation reservation, shed telemetry).
    fn shed_job(&mut self, job: Job, retry_after_ms: u64, reason: &str) {
        if let Some(state) = self.tenants.get_mut(&job.tenant) {
            state.queued = state.queued.saturating_sub(1);
        }
        self.queued_total = self.queued_total.saturating_sub(1);
        if job.creates {
            self.release_reservation(&job.tenant, job.placed);
        }
        let tel = cg_telemetry::global();
        tel.broker.queue_depth.dec();
        tel.broker.shed.inc();
        tel.trace.emit_status(
            "broker:shed",
            format!(
                "tenant {}: queued {} shed: {reason}",
                job.tenant,
                job.req.kind()
            ),
            Duration::ZERO,
            SpanStatus::Error,
        );
        let _ = job.reply.send(Response::Overloaded {
            retry_after_ms,
            reason: reason.to_string(),
        });
    }
}

struct Inner {
    cfg: BrokerConfig,
    core: Mutex<Core>,
    /// Signals workers that queues gained work or the broker stopped.
    work_cv: Condvar,
    /// Signals drainers that a worker finished a job (queues may be empty)
    /// or that the drain report is ready.
    idle_cv: Condvar,
    connections: AtomicUsize,
    /// Sessions checkpointed by exiting workers, summed for the report.
    drained: AtomicUsize,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Inner {
    fn lock_core(&self) -> MutexGuard<'_, Core> {
        self.core
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// The session broker. Cheap to clone (all clones share one fleet); see
/// the module docs for the model. [`Broker::drain`] ends the fleet —
/// afterwards every submission is refused.
#[derive(Clone)]
pub struct Broker {
    inner: Arc<Inner>,
}

impl Broker {
    /// Builds the broker and starts its worker fleet.
    pub fn new(factory: SessionFactory, cfg: BrokerConfig) -> Broker {
        let workers = cfg.workers.max(1);
        let cfg = BrokerConfig { workers, ..cfg };
        let initial_tokens = cfg.quota.burst.max(1.0);
        let inner = Arc::new(Inner {
            core: Mutex::new(Core {
                draining: false,
                stopped: false,
                drain_claimed: false,
                finished: false,
                report: None,
                tenants: HashMap::new(),
                sessions: HashMap::new(),
                live_total: 0,
                queued_total: 0,
                live_per_worker: vec![0; workers],
                next_worker: 0,
                workers: (0..workers).map(|_| WorkerQueues::default()).collect(),
                initial_tokens,
                pending_shed: 0,
            }),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            connections: AtomicUsize::new(0),
            drained: AtomicUsize::new(0),
            handles: Mutex::new(Vec::new()),
            cfg,
        });
        let mut handles = Vec::with_capacity(workers);
        for index in 0..workers {
            let inner_w = Arc::clone(&inner);
            let factory = Arc::clone(&factory);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("cg-broker-{index}"))
                    // Compiler passes recurse deeply (same sizing as the
                    // legacy per-service worker).
                    .stack_size(16 * 1024 * 1024)
                    .spawn(move || worker_loop(inner_w, index, factory))
                    .expect("spawn broker worker"),
            );
        }
        *inner
            .handles
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = handles;
        Broker { inner }
    }

    /// Live sessions plus in-flight creation reservations.
    #[must_use]
    pub fn live_sessions(&self) -> usize {
        self.inner.lock_core().live_total
    }

    /// Whether the broker has stopped admitting new sessions.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.inner.lock_core().draining
    }

    /// Whether a drain completed (fleet stopped, report available).
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.inner.lock_core().finished
    }

    /// Stops admitting session-creating work; established sessions keep
    /// being served. Idempotent; [`Broker::drain`] completes the shutdown.
    pub fn begin_drain(&self) {
        let mut core = self.inner.lock_core();
        if !core.draining {
            core.draining = true;
            let tel = cg_telemetry::global();
            tel.broker.drains.inc();
            tel.trace.emit(
                "broker:drain",
                "admissions closed to new sessions; draining",
                Duration::ZERO,
            );
        }
    }

    /// Runs the admission ladder and, if the request survives it, queues
    /// the work on its owning worker. See [`Submitted`] for the outcomes.
    pub fn submit(&self, tenant: &str, req: Request, ctx: Option<TraceContext>) -> Submitted {
        let cfg = &self.inner.cfg;
        let workers = cfg.workers as u64;
        let base = cfg.retry_after_ms.max(1);
        let mut core = self.inner.lock_core();

        if core.stopped {
            return refuse(false, base, "broker stopped".to_string());
        }

        let creates = matches!(
            req,
            Request::StartSession { .. } | Request::RestoreSession { .. } | Request::Fork { .. }
        );
        let ends = matches!(req, Request::EndSession { .. });
        let target = match &req {
            Request::Step { session_id, .. }
            | Request::Fork { session_id }
            | Request::EndSession { session_id }
            | Request::ExportState { session_id } => Some(*session_id),
            _ => None,
        };
        // Tenant isolation: a session id names work owned by exactly one
        // tenant; anyone else is rejected outright (not an overload — the
        // client must not retry).
        if let Some(gid) = target {
            if let Some(owner) = core.sessions.get(&gid) {
                if owner != tenant {
                    return Submitted::Rejected(Response::Error(format!(
                        "session {gid} is not owned by tenant {tenant}"
                    )));
                }
            }
        }
        let established = target.is_some_and(|gid| core.sessions.contains_key(&gid));

        if core.draining && creates {
            return refuse(
                false,
                base.saturating_mul(4),
                "draining: new sessions refused".to_string(),
            );
        }
        if creates && core.live_total >= cfg.max_sessions {
            return refuse(
                false,
                base,
                format!("global session cap {} reached", cfg.max_sessions),
            );
        }
        let quota = &cfg.quota;
        if creates && quota.max_sessions > 0 {
            let live = core.tenants.get(tenant).map_or(0, |t| t.live);
            if live >= quota.max_sessions {
                return refuse(
                    true,
                    base,
                    format!(
                        "tenant {tenant}: session quota {} reached",
                        quota.max_sessions
                    ),
                );
            }
        }
        let actions = if let Request::Step { actions, .. } = &req {
            actions.len() as u64
        } else {
            0
        };
        if actions > 0 && quota.actions_per_sec > 0.0 {
            let rate = quota.actions_per_sec;
            let burst = quota.burst.max(1.0);
            let now = Instant::now();
            let state = core.tenant_mut(tenant);
            let elapsed = now.duration_since(state.refilled).as_secs_f64();
            state.tokens = (state.tokens + rate * elapsed).min(burst);
            state.refilled = now;
            // Batches larger than the bucket drain it fully instead of
            // being forever unpayable.
            let need = (actions as f64).min(burst);
            if state.tokens < need {
                let wait_ms = (((need - state.tokens) / rate) * 1000.0).ceil() as u64;
                return refuse(
                    true,
                    wait_ms.max(1),
                    format!("tenant {tenant}: rate quota {rate} actions/s exceeded"),
                );
            }
            state.tokens -= need;
        }

        let fanout = if matches!(req, Request::Configure { .. }) {
            cfg.workers
        } else {
            1
        };
        let queued = core.tenants.get(tenant).map_or(0, |t| t.queued);
        if queued + fanout > cfg.max_queue_depth.max(1) {
            if established {
                // Established sessions outrank speculative new work: evict
                // this tenant's newest queued session-creation job to make
                // room, shedding it with a typed refusal.
                let evicted = (0..core.workers.len())
                    .find_map(|w| core.workers[w].evict_newest_create(tenant));
                match evicted {
                    Some(job) => core.shed_job(
                        job,
                        base,
                        "evicted: queue pressure favors established sessions",
                    ),
                    None => {
                        return refuse_shed(
                            base,
                            format!(
                                "tenant {tenant}: queue depth {} reached, nothing evictable",
                                cfg.max_queue_depth
                            ),
                        )
                    }
                }
            } else {
                return refuse_shed(
                    base,
                    format!(
                        "tenant {tenant}: queue depth {} reached",
                        cfg.max_queue_depth
                    ),
                );
            }
        }

        // Placement happens before the reservation so the per-worker live
        // accounting can include it: new sessions go to the least-loaded
        // worker, targeted work is pinned by its session id.
        let placed = if fanout > 1 {
            None
        } else {
            Some(match target {
                Some(gid) => (gid % workers) as usize,
                None => core.least_loaded_worker(),
            })
        };
        if creates {
            core.tenant_mut(tenant).live += 1;
            core.live_total += 1;
            if let Some(worker) = placed {
                core.live_per_worker[worker] += 1;
            }
            cg_telemetry::global().broker.sessions.inc();
        }

        let kind = req.kind();
        let (tx, rx) = bounded(fanout.max(1));
        let now = Instant::now();
        if fanout > 1 {
            // Fan the request out to every worker (budgets apply to all
            // shards); the caller collects `fanout` replies.
            for worker in 0..cfg.workers {
                let job = Job {
                    req: req.clone(),
                    ctx,
                    reply: tx.clone(),
                    tenant: tenant.to_string(),
                    cost: 1,
                    creates: false,
                    ends: false,
                    target: None,
                    placed: worker,
                    enqueued: now,
                };
                core.enqueue(worker, job);
            }
        } else {
            let worker = placed.expect("single-target submissions are always placed");
            let mut req = req;
            rewrite_to_local(&mut req, workers);
            let job = Job {
                req,
                ctx,
                reply: tx,
                tenant: tenant.to_string(),
                cost: actions.max(1),
                creates,
                ends,
                target,
                placed: worker,
                enqueued: now,
            };
            core.enqueue(worker, job);
        }
        if creates {
            cg_telemetry::global().broker.admitted.inc();
            cg_telemetry::global().trace.emit(
                "broker:admit",
                format!("tenant {tenant}: {kind} admitted"),
                Duration::ZERO,
            );
        }
        drop(core);
        self.inner.work_cv.notify_all();
        Submitted::Queued {
            rx,
            replies: fanout,
        }
    }

    /// Submits under the caller's current trace context and blocks for the
    /// reply — the in-process client surface (and the loadtest harness).
    pub fn call(&self, tenant: &str, req: Request) -> Response {
        self.call_with_ctx(tenant, req, cg_telemetry::current_context())
    }

    fn call_with_ctx(&self, tenant: &str, req: Request, ctx: Option<TraceContext>) -> Response {
        match self.submit(tenant, req, ctx) {
            Submitted::Refused {
                retry_after_ms,
                reason,
            } => Response::Overloaded {
                retry_after_ms,
                reason,
            },
            Submitted::Rejected(resp) => resp,
            Submitted::Queued { rx, replies } => {
                let mut responses = Vec::with_capacity(replies);
                for _ in 0..replies {
                    responses.push(rx.recv().unwrap_or_else(|_| {
                        Response::Error("broker worker unavailable".to_string())
                    }));
                }
                merge_replies(responses)
            }
        }
    }

    /// Drains the broker: stops admitting new sessions, waits up to
    /// `grace` for queued work to complete, sheds the remainder with typed
    /// refusals, then stops the fleet — every worker parks its live
    /// sessions into the checkpoint store on the way out. Idempotent:
    /// concurrent callers all receive the same report.
    pub fn drain(&self, grace: Duration) -> DrainReport {
        let started = Instant::now();
        self.begin_drain();
        {
            let mut core = self.inner.lock_core();
            if core.drain_claimed {
                // Another caller owns the drain; wait for its report.
                while core.report.is_none() {
                    let (guard, _) = self
                        .inner
                        .idle_cv
                        .wait_timeout(core, Duration::from_millis(50))
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    core = guard;
                }
                return core.report.clone().expect("report set");
            }
            core.drain_claimed = true;
            // Let queued work finish within the grace period.
            while core.queued_total > 0 && started.elapsed() < grace {
                let (guard, _) = self
                    .inner
                    .idle_cv
                    .wait_timeout(core, Duration::from_millis(25))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                core = guard;
            }
            // Shed whatever the grace period did not cover, then stop.
            let mut shed_queued = 0usize;
            for worker in 0..core.workers.len() {
                while let Some(front) = core.workers[worker].order.front() {
                    let tenant = front.clone();
                    let job = core.workers[worker]
                        .queues
                        .get_mut(&tenant)
                        .and_then(VecDeque::pop_front);
                    match job {
                        Some(job) => {
                            core.shed_job(
                                job,
                                self.inner.cfg.retry_after_ms.max(1),
                                "drain grace expired",
                            );
                            shed_queued += 1;
                        }
                        None => {
                            core.workers[worker].order.pop_front();
                            core.workers[worker].queues.remove(&tenant);
                            core.workers[worker].deficits.remove(&tenant);
                        }
                    }
                }
            }
            core.stopped = true;
            core.pending_shed = shed_queued;
        }
        self.inner.work_cv.notify_all();
        let handles: Vec<JoinHandle<()>> = self
            .inner
            .handles
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
        let report = {
            let mut core = self.inner.lock_core();
            let report = DrainReport {
                checkpointed: self.inner.drained.load(Ordering::SeqCst),
                shed_queued: core.pending_shed,
                waited_ms: started.elapsed().as_millis() as u64,
            };
            core.finished = true;
            core.report = Some(report.clone());
            report
        };
        self.inner.idle_cv.notify_all();
        cg_telemetry::global().trace.emit(
            "broker:drain",
            format!(
                "drained: {} sessions checkpointed, {} queued jobs shed",
                report.checkpointed, report.shed_queued
            ),
            started.elapsed(),
        );
        report
    }

    /// Serves the broker over TCP: length-prefixed JSON frames, one
    /// handler thread per connection (bounded by
    /// [`BrokerConfig::max_connections`] — excess connects receive one
    /// typed `Overloaded` frame and are closed). A `Shutdown` request
    /// triggers [`Broker::drain`]; `serve` returns once the drain
    /// completes.
    ///
    /// # Errors
    /// Propagates listener configuration failures.
    pub fn serve(&self, listener: TcpListener) -> std::io::Result<()> {
        // Non-blocking accept so the loop can observe drain completion —
        // with no signal handling available, a `Shutdown` frame from a
        // connection thread is what ends the server.
        listener.set_nonblocking(true)?;
        loop {
            if self.is_finished() {
                return Ok(());
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    self.accept_connection(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    fn accept_connection(&self, mut stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let tel = cg_telemetry::global();
        let cap = self.inner.cfg.max_connections.max(1);
        // `fetch_add` before the check keeps the cap exact under
        // concurrent accepts; the slot is released when the handler exits.
        if self.inner.connections.fetch_add(1, Ordering::SeqCst) >= cap {
            self.inner.connections.fetch_sub(1, Ordering::SeqCst);
            tel.broker.refused.inc();
            tel.trace.emit_status(
                "broker:shed",
                format!("broker at connection cap {cap}"),
                Duration::ZERO,
                SpanStatus::Error,
            );
            let resp = Response::Overloaded {
                retry_after_ms: self.inner.cfg.retry_after_ms.max(1),
                reason: format!("connection cap {cap} reached"),
            };
            let _ = write_frame(&mut stream, &wire::encode_response_json(&resp));
            return;
        }
        tel.broker.connections.inc();
        let broker = self.clone();
        let _ = std::thread::Builder::new()
            .name("cg-broker-conn".to_string())
            .spawn(move || {
                let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    handle_connection(&broker, stream);
                }));
                broker.inner.connections.fetch_sub(1, Ordering::SeqCst);
                let tel = cg_telemetry::global();
                tel.broker.connections.dec();
                if outcome.is_err() {
                    tel.panics.inc();
                    tel.trace.emit(
                        "service:panic",
                        "broker connection handler panicked; connection dropped",
                        Duration::ZERO,
                    );
                }
            });
    }
}

/// Encodes and writes one binary response frame through the connection's
/// shared writer (the reader loop and the demux forwarder threads all
/// funnel through the same mutex, so frames never interleave mid-write).
fn reply_binary(writer: &Mutex<TcpStream>, corr: u64, resp: &Response) -> bool {
    let mut buf = Vec::new();
    wire::encode_response_frame(&mut buf, corr, resp);
    account_tx(WireCodec::Binary, buf.len());
    let mut w = writer
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    write_frame(&mut *w, &buf).is_ok()
}

/// Writes one JSON response frame through the shared writer.
fn reply_json(writer: &Mutex<TcpStream>, resp: &Response) -> bool {
    let bytes = wire::encode_response_json(resp);
    account_tx(WireCodec::Json, bytes.len());
    let mut w = writer
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    write_frame(&mut *w, &bytes).is_ok()
}

/// Routes each per-connection request through the broker with a sticky
/// tenant identity (the last `__tenant` metadata seen on this connection).
///
/// The codec is sniffed per frame (JSON frames start `{`/`"`, CGB1 frames
/// with their non-UTF-8 magic), so legacy JSON clients work unchanged.
/// JSON requests keep the one-in-flight lock-step contract: submit, block
/// for the reply, answer in order. Binary requests pipeline: the reader
/// submits each frame as it arrives (admission and queueing happen in
/// receipt order, and session→worker pinning plus per-tenant FIFOs keep
/// per-session execution ordered), while a short-lived forwarder thread
/// per in-flight request collects the worker's reply and writes it back
/// stamped with the request's correlation id — responses may leave out of
/// order, the client demuxes.
fn handle_connection(broker: &Broker, stream: TcpStream) {
    let mut tenant = ANONYMOUS_TENANT.to_string();
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let mut stream = stream;
    let mut reader = FrameReader::new();
    let binary_wire = broker.inner.cfg.binary_wire;
    'conn: while let Ok(frame) = reader.read(&mut stream) {
        if wire::is_binary_frame(frame) && binary_wire {
            account_rx(WireCodec::Binary, frame.len());
            let (corr, req, ctx) = match wire::decode_frame(frame) {
                Ok(wire::Frame::Hello { .. }) => {
                    cg_telemetry::global().wire.negotiations.inc();
                    let mut buf = Vec::new();
                    wire::encode_hello_ack(&mut buf);
                    account_tx(WireCodec::Binary, buf.len());
                    let mut w = writer
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    if write_frame(&mut *w, &buf).is_err() {
                        break;
                    }
                    continue;
                }
                Ok(wire::Frame::Request { corr, body }) => {
                    match wire::decode_request_body(corr, body) {
                        Ok(rf) => {
                            if let Some(t) = rf.tenant {
                                tenant = t;
                            }
                            (rf.corr, rf.req, rf.ctx)
                        }
                        Err(e) => {
                            cg_telemetry::global().wire.decode_errors.inc();
                            let resp = Response::Error(format!("bad request frame: {e}"));
                            if !reply_binary(&writer, corr, &resp) {
                                break;
                            }
                            continue;
                        }
                    }
                }
                Ok(_) | Err(_) => {
                    cg_telemetry::global().wire.decode_errors.inc();
                    let resp = Response::Error("unexpected frame kind".to_string());
                    if !reply_binary(&writer, 0, &resp) {
                        break;
                    }
                    continue;
                }
            };
            if matches!(req, Request::Shutdown) {
                let grace = broker.inner.cfg.drain_grace;
                let _report = broker.drain(grace);
                let _ = reply_binary(&writer, corr, &Response::Ok);
                break;
            }
            match broker.submit(&tenant, req, ctx) {
                Submitted::Refused {
                    retry_after_ms,
                    reason,
                } => {
                    let resp = Response::Overloaded {
                        retry_after_ms,
                        reason,
                    };
                    if !reply_binary(&writer, corr, &resp) {
                        break;
                    }
                }
                Submitted::Rejected(resp) => {
                    if !reply_binary(&writer, corr, &resp) {
                        break;
                    }
                }
                Submitted::Queued { rx, replies } => {
                    cg_telemetry::global().wire.in_flight.inc();
                    let demux_writer = Arc::clone(&writer);
                    let spawned = std::thread::Builder::new()
                        .name("cg-broker-demux".to_string())
                        .spawn(move || {
                            let mut responses = Vec::with_capacity(replies);
                            for _ in 0..replies {
                                responses.push(rx.recv().unwrap_or_else(|_| {
                                    Response::Error("broker worker unavailable".to_string())
                                }));
                            }
                            let resp = merge_replies(responses);
                            reply_binary(&demux_writer, corr, &resp);
                            cg_telemetry::global().wire.in_flight.dec();
                        });
                    if spawned.is_err() {
                        // Out of threads: answer in band rather than hang
                        // the client's window.
                        cg_telemetry::global().wire.in_flight.dec();
                        let resp = Response::Overloaded {
                            retry_after_ms: broker.inner.cfg.retry_after_ms.max(1),
                            reason: "broker demux thread unavailable".to_string(),
                        };
                        if !reply_binary(&writer, corr, &resp) {
                            break 'conn;
                        }
                    }
                }
            }
            continue;
        }
        account_rx(WireCodec::Json, frame.len());
        let parsed = std::str::from_utf8(frame)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::parse_value(s).map_err(|e| e.to_string()));
        let (req, ctx) = match parsed {
            Ok(mut value) => {
                let ctx = extract_trace_context(&mut value);
                if let Some(t) = extract_tenant(&mut value) {
                    tenant = t;
                }
                match Request::from_value(&value) {
                    Ok(req) => (req, ctx),
                    Err(e) => {
                        let resp = Response::Error(format!("bad request frame: {e}"));
                        if !reply_json(&writer, &resp) {
                            break;
                        }
                        continue;
                    }
                }
            }
            Err(e) => {
                let resp = Response::Error(format!("bad request frame: {e}"));
                if !reply_json(&writer, &resp) {
                    break;
                }
                continue;
            }
        };
        if matches!(req, Request::Shutdown) {
            // The drain path: stop admissions, park live sessions, stop
            // the fleet — then acknowledge, so `cg serve --drain` blocks
            // until the server is actually safe to kill.
            let grace = broker.inner.cfg.drain_grace;
            let _report = broker.drain(grace);
            let _ = reply_json(&writer, &Response::Ok);
            break;
        }
        let resp = broker.call_with_ctx(&tenant, req, ctx);
        if !reply_json(&writer, &resp) {
            break;
        }
    }
}

/// The worker fleet body: pop jobs DRR-fair, dispatch through the owned
/// [`ServiceState`], rewrite session ids to global form, keep quota
/// accounting truthful, and park live sessions on the way out.
fn worker_loop(inner: Arc<Inner>, index: usize, factory: SessionFactory) {
    let tel = cg_telemetry::global();
    let mut state = ServiceState::new(
        factory,
        inner.cfg.budget.clone(),
        inner.cfg.checkpoints.clone(),
    );
    while let Some(job) = pop_job(&inner, index) {
        let Job {
            req,
            ctx,
            reply,
            tenant,
            cost: _,
            creates,
            ends,
            target,
            enqueued,
            placed: _,
        } = job;
        let wait = enqueued.elapsed();
        tel.broker.queue_wait.record_duration(wait);
        tel.trace.emit(
            "broker:queue",
            format!("tenant {tenant}: {} dequeued by worker {index}", req.kind()),
            wait,
        );
        let resp = match std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _trace_guard = ctx.map(cg_telemetry::enter_context);
            state.handle(req)
        })) {
            Ok(resp) => resp,
            Err(_) => {
                tel.panics.inc();
                Response::Fatal("broker worker panicked handling request".to_string())
            }
        };
        let resp = settle(&inner, index, &tenant, creates, ends, target, resp);
        let _ = reply.send(resp);
        inner.idle_cv.notify_all();
    }
    // Stopped: park everything live so episodes survive the restart.
    let live = state.session_count();
    let saved = state.checkpoint_all();
    if saved > 0 {
        inner.drained.fetch_add(saved, Ordering::SeqCst);
        tel.broker.drained_checkpoints.add(saved as u64);
        tel.trace.emit(
            "broker:drain",
            format!("worker {index} checkpointed {saved} of {live} live sessions"),
            Duration::ZERO,
        );
    }
}

/// Blocks until this worker has a job (DRR order) or the broker stops.
fn pop_job(inner: &Inner, index: usize) -> Option<Job> {
    let mut core = inner.lock_core();
    loop {
        if core.stopped {
            return None;
        }
        if let Some(job) = core.workers[index].pop_drr(inner.cfg.quantum) {
            if let Some(state) = core.tenants.get_mut(&job.tenant) {
                state.queued = state.queued.saturating_sub(1);
            }
            core.queued_total = core.queued_total.saturating_sub(1);
            cg_telemetry::global().broker.queue_depth.dec();
            return Some(job);
        }
        let (guard, _) = inner
            .work_cv
            .wait_timeout(core, Duration::from_millis(50))
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        core = guard;
    }
}

/// Post-dispatch accounting: rewrites worker-local session ids to global
/// ids, records new sessions against their tenant, and releases quota on
/// every path that destroys one (end, fault, budget kill, failed create).
fn settle(
    inner: &Inner,
    index: usize,
    tenant: &str,
    creates: bool,
    ends: bool,
    target: Option<u64>,
    mut resp: Response,
) -> Response {
    let workers = inner.cfg.workers as u64;
    let mut core = inner.lock_core();
    if creates {
        match &mut resp {
            Response::SessionStarted { session_id } | Response::Forked { session_id } => {
                let gid = *session_id * workers + index as u64;
                *session_id = gid;
                core.sessions.insert(gid, tenant.to_string());
            }
            _ => core.release_reservation(tenant, index),
        }
    }
    let destroyed = matches!(resp, Response::Fatal(_) | Response::Budget(_));
    if let Some(gid) = target {
        if ends || destroyed {
            core.release_session(gid);
        }
    }
    resp
}

/// Rewrites an incoming global session id to the owning worker's local id
/// (the inverse of the `gid = local * workers + index` bijection).
fn rewrite_to_local(req: &mut Request, workers: u64) {
    match req {
        Request::Step { session_id, .. }
        | Request::Fork { session_id }
        | Request::EndSession { session_id }
        | Request::ExportState { session_id } => *session_id /= workers,
        _ => {}
    }
}

/// A ladder refusal: typed, counted, and traced.
fn refuse(quota: bool, retry_after_ms: u64, reason: String) -> Submitted {
    let tel = cg_telemetry::global();
    tel.broker.refused.inc();
    if quota {
        tel.broker.quota_refusals.inc();
    }
    tel.trace.emit_status(
        "broker:admit",
        reason.clone(),
        Duration::ZERO,
        SpanStatus::Error,
    );
    Submitted::Refused {
        retry_after_ms,
        reason,
    }
}

/// A queue-pressure refusal: the incoming request itself is the newest
/// non-established work, so refusing it *is* the shed.
fn refuse_shed(retry_after_ms: u64, reason: String) -> Submitted {
    let tel = cg_telemetry::global();
    tel.broker.shed.inc();
    tel.trace.emit_status(
        "broker:shed",
        reason.clone(),
        Duration::ZERO,
        SpanStatus::Error,
    );
    Submitted::Refused {
        retry_after_ms,
        reason,
    }
}

/// Folds a fan-out's replies into one: the first failure wins, otherwise
/// the last reply stands in for the set.
fn merge_replies(mut responses: Vec<Response>) -> Response {
    let failed = responses
        .iter()
        .position(|r| !matches!(r, Response::Ok | Response::Pong));
    match failed {
        Some(at) => responses.swap_remove(at),
        None => responses.pop().unwrap_or(Response::Ok),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{ActionOutcome, CompilationSession};
    use crate::space::{ActionSpaceInfo, Observation, ObservationSpaceInfo, RewardSpaceInfo};

    /// A deterministic session: counts applied actions, snapshots the
    /// count, and (optionally) sleeps or spins per action to model work.
    struct TestSession {
        steps: u64,
        /// Sleep `action` milliseconds per applied action when set — lets
        /// tests hold a worker busy for a known time.
        sleep_action_ms: bool,
        /// Busy-spin this long per action (fairness tests want CPU-bound
        /// work, not timer sleeps).
        spin: Duration,
        /// Panic when applying this action (quota-release tests).
        panic_on: Option<usize>,
    }

    impl TestSession {
        fn counting() -> TestSession {
            TestSession {
                steps: 0,
                sleep_action_ms: false,
                spin: Duration::ZERO,
                panic_on: None,
            }
        }
    }

    impl CompilationSession for TestSession {
        fn action_spaces(&self) -> Vec<ActionSpaceInfo> {
            vec![ActionSpaceInfo {
                name: "test".into(),
                actions: vec!["a".into(); 1024],
            }]
        }
        fn observation_spaces(&self) -> Vec<ObservationSpaceInfo> {
            vec![]
        }
        fn reward_spaces(&self) -> Vec<RewardSpaceInfo> {
            vec![]
        }
        fn init(&mut self, _b: &str, _s: usize) -> Result<(), String> {
            Ok(())
        }
        fn apply_action(&mut self, a: usize) -> Result<ActionOutcome, String> {
            if self.panic_on == Some(a) {
                panic!("test session told to panic on action {a}");
            }
            if self.sleep_action_ms {
                std::thread::sleep(Duration::from_millis(a as u64));
            }
            if !self.spin.is_zero() {
                let until = Instant::now() + self.spin;
                while Instant::now() < until {
                    std::hint::spin_loop();
                }
            }
            self.steps += 1;
            Ok(ActionOutcome {
                end_of_episode: false,
                action_space_changed: false,
                changed: true,
            })
        }
        fn observe(&mut self, _s: &str) -> Result<Observation, String> {
            Ok(Observation::Scalar(self.steps as f64))
        }
        fn fork(&self) -> Box<dyn CompilationSession> {
            Box::new(TestSession {
                steps: self.steps,
                sleep_action_ms: self.sleep_action_ms,
                spin: self.spin,
                panic_on: self.panic_on,
            })
        }
        fn save_state(&self) -> Option<Vec<u8>> {
            Some(self.steps.to_le_bytes().to_vec())
        }
        fn load_state(&mut self, state: &[u8]) -> Result<(), String> {
            let bytes: [u8; 8] = state.try_into().map_err(|_| "bad snapshot".to_string())?;
            self.steps = u64::from_le_bytes(bytes);
            Ok(())
        }
    }

    fn counting_factory() -> SessionFactory {
        Arc::new(|| Box::new(TestSession::counting()))
    }

    fn sleeping_factory() -> SessionFactory {
        Arc::new(|| {
            Box::new(TestSession {
                sleep_action_ms: true,
                ..TestSession::counting()
            })
        })
    }

    fn spinning_factory(spin: Duration) -> SessionFactory {
        Arc::new(move || {
            Box::new(TestSession {
                spin,
                ..TestSession::counting()
            })
        })
    }

    fn panicking_factory(action: usize) -> SessionFactory {
        Arc::new(move || {
            Box::new(TestSession {
                panic_on: Some(action),
                ..TestSession::counting()
            })
        })
    }

    fn quiet_panics() {
        // Panic messages from deliberately-killed sessions are noise; the
        // hook is process-global, so set a silent one once.
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let default = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let msg = info.payload().downcast_ref::<&str>().copied().unwrap_or("");
                let owned = info.payload().downcast_ref::<String>();
                let text = owned.map(String::as_str).unwrap_or(msg);
                if !text.contains("test session told to panic") {
                    default(info);
                }
            }));
        });
    }

    fn start(broker: &Broker, tenant: &str) -> u64 {
        match broker.call(
            tenant,
            Request::StartSession {
                benchmark: "b".into(),
                action_space: 0,
            },
        ) {
            Response::SessionStarted { session_id } => session_id,
            other => panic!("expected SessionStarted, got {other:?}"),
        }
    }

    fn step(broker: &Broker, tenant: &str, gid: u64, actions: Vec<usize>) -> Response {
        broker.call(
            tenant,
            Request::Step {
                session_id: gid,
                actions,
                observation_spaces: vec!["test".into()],
            },
        )
    }

    #[test]
    fn sessions_shard_across_workers_and_ids_round_trip() {
        let broker = Broker::new(
            counting_factory(),
            BrokerConfig {
                workers: 2,
                ..BrokerConfig::default()
            },
        );
        let gids: Vec<u64> = (0..4).map(|_| start(&broker, "alice")).collect();
        let unique: std::collections::HashSet<u64> = gids.iter().copied().collect();
        assert_eq!(
            unique.len(),
            4,
            "global session ids must be distinct: {gids:?}"
        );
        // Drive each session a different depth; the broker must route every
        // follow-up to the worker that owns the session.
        for (i, gid) in gids.iter().enumerate() {
            for _ in 0..=i {
                match step(&broker, "alice", *gid, vec![0]) {
                    Response::Stepped { .. } => {}
                    other => panic!("step failed: {other:?}"),
                }
            }
        }
        for (i, gid) in gids.iter().enumerate() {
            match step(&broker, "alice", *gid, vec![]) {
                Response::Stepped { observations, .. } => {
                    assert_eq!(observations, vec![Observation::Scalar((i + 1) as f64)]);
                }
                other => panic!("observe failed: {other:?}"),
            }
        }
        for gid in &gids {
            assert!(matches!(
                broker.call("alice", Request::EndSession { session_id: *gid }),
                Response::Ok
            ));
        }
        assert_eq!(
            broker.live_sessions(),
            0,
            "ending sessions must release quota"
        );
        broker.drain(Duration::from_secs(1));
    }

    #[test]
    fn tenant_session_quota_boundary_and_release() {
        let broker = Broker::new(
            counting_factory(),
            BrokerConfig {
                workers: 2,
                quota: TenantQuota {
                    max_sessions: 3,
                    ..TenantQuota::default()
                },
                ..BrokerConfig::default()
            },
        );
        let gids: Vec<u64> = (0..3).map(|_| start(&broker, "alice")).collect();
        match broker.call(
            "alice",
            Request::StartSession {
                benchmark: "b".into(),
                action_space: 0,
            },
        ) {
            Response::Overloaded {
                retry_after_ms,
                reason,
            } => {
                assert!(retry_after_ms > 0, "refusals must advise a retry delay");
                assert!(reason.contains("quota"), "reason names the rung: {reason}");
            }
            other => panic!("N+1-th session must be refused typed, got {other:?}"),
        }
        // Another tenant is unaffected by alice's quota.
        let bob = start(&broker, "bob");
        assert!(matches!(
            broker.call("bob", Request::EndSession { session_id: bob }),
            Response::Ok
        ));
        // Releasing one slot re-admits.
        assert!(matches!(
            broker.call(
                "alice",
                Request::EndSession {
                    session_id: gids[0]
                }
            ),
            Response::Ok
        ));
        let replacement = start(&broker, "alice");
        assert!(matches!(
            broker.call(
                "alice",
                Request::EndSession {
                    session_id: replacement
                }
            ),
            Response::Ok
        ));
        broker.drain(Duration::from_secs(1));
    }

    #[test]
    fn quota_released_when_a_session_dies_by_panic() {
        quiet_panics();
        let broker = Broker::new(
            panicking_factory(7),
            BrokerConfig {
                workers: 1,
                quota: TenantQuota {
                    max_sessions: 1,
                    ..TenantQuota::default()
                },
                ..BrokerConfig::default()
            },
        );
        let gid = start(&broker, "alice");
        match step(&broker, "alice", gid, vec![7]) {
            Response::Fatal(_) => {}
            other => panic!("a panicking session must die fatally, got {other:?}"),
        }
        // The fatal reply must have released the quota slot.
        let next = start(&broker, "alice");
        assert_ne!(next, gid);
        broker.drain(Duration::from_secs(1));
    }

    #[test]
    fn rate_quota_refuses_with_refill_retry_after() {
        let broker = Broker::new(
            counting_factory(),
            BrokerConfig {
                workers: 1,
                quota: TenantQuota {
                    max_sessions: 4,
                    actions_per_sec: 1.0,
                    burst: 1.0,
                },
                ..BrokerConfig::default()
            },
        );
        let gid = start(&broker, "alice");
        assert!(matches!(
            step(&broker, "alice", gid, vec![0]),
            Response::Stepped { .. }
        ));
        match step(&broker, "alice", gid, vec![0]) {
            Response::Overloaded {
                retry_after_ms,
                reason,
            } => {
                assert!(
                    retry_after_ms >= 500,
                    "retry_after must reflect the ~1s token refill, got {retry_after_ms}ms"
                );
                assert!(reason.contains("rate quota"), "{reason}");
            }
            other => panic!("second step must hit the rate quota, got {other:?}"),
        }
        // Observation-only steps cost no tokens and stay admissible.
        assert!(matches!(
            step(&broker, "alice", gid, vec![]),
            Response::Stepped { .. }
        ));
        broker.drain(Duration::from_secs(1));
    }

    #[test]
    fn queue_pressure_sheds_newest_create_first() {
        let broker = Broker::new(
            sleeping_factory(),
            BrokerConfig {
                workers: 1,
                max_queue_depth: 2,
                ..BrokerConfig::default()
            },
        );
        let gid = start(&broker, "alice");
        // Hold the worker busy for ~200ms so subsequent submissions queue.
        let busy = match broker.submit(
            "alice",
            Request::Step {
                session_id: gid,
                actions: vec![200],
                observation_spaces: vec![],
            },
            None,
        ) {
            Submitted::Queued { rx, .. } => rx,
            _ => panic!("busy step must be admitted"),
        };
        std::thread::sleep(Duration::from_millis(50)); // worker picked it up
        let creates: Vec<Receiver<Response>> = (0..2)
            .map(|_| {
                match broker.submit(
                    "alice",
                    Request::StartSession {
                        benchmark: "b".into(),
                        action_space: 0,
                    },
                    None,
                ) {
                    Submitted::Queued { rx, .. } => rx,
                    _ => panic!("creates within queue depth must be admitted"),
                }
            })
            .collect();
        // The queue is now full. Established-session work must still get
        // through — by evicting the newest queued create.
        let established = match broker.submit(
            "alice",
            Request::Step {
                session_id: gid,
                actions: vec![0],
                observation_spaces: vec![],
            },
            None,
        ) {
            Submitted::Queued { rx, .. } => rx,
            Submitted::Refused { reason, .. } => {
                panic!("established work must be admitted under pressure: {reason}")
            }
            Submitted::Rejected(resp) => panic!("unexpected rejection: {resp:?}"),
        };
        // The newest create was shed with a typed refusal...
        match creates[1].recv_timeout(Duration::from_secs(2)) {
            Ok(Response::Overloaded { reason, .. }) => {
                assert!(reason.contains("evicted"), "{reason}")
            }
            other => panic!("newest create must be evicted, got {other:?}"),
        }
        // ...while the older create and the established step complete.
        assert!(matches!(
            creates[0].recv_timeout(Duration::from_secs(2)),
            Ok(Response::SessionStarted { .. })
        ));
        assert!(matches!(
            busy.recv_timeout(Duration::from_secs(2)),
            Ok(Response::Stepped { .. })
        ));
        assert!(matches!(
            established.recv_timeout(Duration::from_secs(2)),
            Ok(Response::Stepped { .. })
        ));
        // A *new* (non-established) request at full queue is itself shed.
        let blocker = match broker.submit(
            "alice",
            Request::Step {
                session_id: gid,
                actions: vec![200],
                observation_spaces: vec![],
            },
            None,
        ) {
            Submitted::Queued { rx, .. } => rx,
            _ => panic!("step must be admitted"),
        };
        std::thread::sleep(Duration::from_millis(50));
        let _fill: Vec<Receiver<Response>> = (0..2)
            .map(|_| {
                match broker.submit(
                    "alice",
                    Request::StartSession {
                        benchmark: "b".into(),
                        action_space: 0,
                    },
                    None,
                ) {
                    Submitted::Queued { rx, .. } => rx,
                    _ => panic!("fill creates must queue"),
                }
            })
            .collect();
        match broker.submit(
            "alice",
            Request::StartSession {
                benchmark: "b".into(),
                action_space: 0,
            },
            None,
        ) {
            Submitted::Refused { reason, .. } => {
                assert!(reason.contains("queue depth"), "{reason}")
            }
            _ => panic!("a create at full queue must be refused"),
        }
        let _ = blocker.recv_timeout(Duration::from_secs(2));
        broker.drain(Duration::from_secs(2));
    }

    #[test]
    fn drr_interleaves_backlogged_tenants() {
        let broker = Broker::new(
            sleeping_factory(),
            BrokerConfig {
                workers: 1,
                quantum: 1,
                ..BrokerConfig::default()
            },
        );
        let alice = start(&broker, "alice");
        let bob = start(&broker, "bob");
        // Hold the worker busy while both tenants build a backlog.
        let busy = match broker.submit(
            "alice",
            Request::Step {
                session_id: alice,
                actions: vec![150],
                observation_spaces: vec![],
            },
            None,
        ) {
            Submitted::Queued { rx, .. } => rx,
            _ => panic!("busy step must queue"),
        };
        std::thread::sleep(Duration::from_millis(50));
        let mut pending: Vec<(&str, Receiver<Response>)> = Vec::new();
        for _ in 0..5 {
            match broker.submit(
                "alice",
                Request::Step {
                    session_id: alice,
                    actions: vec![10],
                    observation_spaces: vec![],
                },
                None,
            ) {
                Submitted::Queued { rx, .. } => pending.push(("alice", rx)),
                _ => panic!("backlog step must queue"),
            }
        }
        for _ in 0..5 {
            match broker.submit(
                "bob",
                Request::Step {
                    session_id: bob,
                    actions: vec![10],
                    observation_spaces: vec![],
                },
                None,
            ) {
                Submitted::Queued { rx, .. } => pending.push(("bob", rx)),
                _ => panic!("backlog step must queue"),
            }
        }
        assert!(matches!(
            busy.recv_timeout(Duration::from_secs(3)),
            Ok(Response::Stepped { .. })
        ));
        // Record completion order by polling all receivers.
        let mut order: Vec<&str> = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut done = vec![false; pending.len()];
        while order.len() < pending.len() && Instant::now() < deadline {
            for (i, (tenant, rx)) in pending.iter().enumerate() {
                if !done[i] {
                    if let Ok(resp) = rx.try_recv() {
                        assert!(matches!(resp, Response::Stepped { .. }), "{resp:?}");
                        done[i] = true;
                        order.push(tenant);
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(
            order.len(),
            pending.len(),
            "all backlogged steps must complete"
        );
        // DRR must interleave the two tenants: despite alice enqueueing her
        // whole backlog first, bob's first completion cannot wait for all
        // of alice's (which strict arrival-order FIFO would force).
        let bob_first = order.iter().position(|t| *t == "bob").unwrap();
        let alice_last = order.iter().rposition(|t| *t == "alice").unwrap();
        assert!(
            bob_first < alice_last,
            "DRR must interleave tenants, got completion order {order:?}"
        );
        let head: Vec<&&str> = order.iter().take(4).collect();
        assert!(
            head.iter().any(|t| **t == "bob"),
            "bob must be served within the first DRR rounds: {order:?}"
        );
        broker.drain(Duration::from_secs(2));
    }

    #[test]
    fn drain_checkpoints_live_sessions_and_refuses_afterwards() {
        let store = CheckpointStore::new(16, 1000);
        let broker = Broker::new(
            counting_factory(),
            BrokerConfig {
                workers: 2,
                checkpoints: store.clone(),
                ..BrokerConfig::default()
            },
        );
        let gids: Vec<u64> = (0..3).map(|_| start(&broker, "alice")).collect();
        for gid in &gids {
            assert!(matches!(
                step(&broker, "alice", *gid, vec![0, 0]),
                Response::Stepped { .. }
            ));
        }
        let report = broker.drain(Duration::from_secs(2));
        assert_eq!(
            report.checkpointed, 3,
            "every live session must be parked: {report:?}"
        );
        assert!(store.len() >= 3, "checkpoints must land in the store");
        assert!(broker.is_finished());
        match broker.call("alice", Request::Ping) {
            Response::Overloaded { reason, .. } => assert!(reason.contains("stopped"), "{reason}"),
            other => panic!("a stopped broker must refuse typed, got {other:?}"),
        }
        // Draining again is idempotent and returns the same report.
        assert_eq!(broker.drain(Duration::from_secs(1)), report);
    }

    #[test]
    fn draining_refuses_creates_but_serves_established_sessions() {
        let broker = Broker::new(
            counting_factory(),
            BrokerConfig {
                workers: 1,
                ..BrokerConfig::default()
            },
        );
        let gid = start(&broker, "alice");
        broker.begin_drain();
        assert!(broker.is_draining());
        match broker.call(
            "alice",
            Request::StartSession {
                benchmark: "b".into(),
                action_space: 0,
            },
        ) {
            Response::Overloaded { reason, .. } => assert!(reason.contains("draining"), "{reason}"),
            other => panic!("creates must be refused while draining, got {other:?}"),
        }
        // Established sessions keep being served until the drain completes.
        assert!(matches!(
            step(&broker, "alice", gid, vec![0]),
            Response::Stepped { .. }
        ));
        let report = broker.drain(Duration::from_secs(1));
        assert_eq!(report.checkpointed, 1);
    }

    #[test]
    fn cross_tenant_session_access_is_rejected_not_retried() {
        let broker = Broker::new(
            counting_factory(),
            BrokerConfig {
                workers: 2,
                ..BrokerConfig::default()
            },
        );
        let gid = start(&broker, "alice");
        match step(&broker, "mallory", gid, vec![0]) {
            Response::Error(msg) => assert!(msg.contains("not owned"), "{msg}"),
            other => panic!("cross-tenant access must be a hard error, got {other:?}"),
        }
        // The owner is untouched.
        assert!(matches!(
            step(&broker, "alice", gid, vec![0]),
            Response::Stepped { .. }
        ));
        broker.drain(Duration::from_secs(1));
    }

    #[test]
    fn noisy_tenant_cannot_starve_victim_latency() {
        let spin = Duration::from_micros(200);
        let broker = Broker::new(
            spinning_factory(spin),
            BrokerConfig {
                workers: 2,
                quantum: 2,
                quota: TenantQuota {
                    max_sessions: 6,
                    ..TenantQuota::default()
                },
                ..BrokerConfig::default()
            },
        );
        let victim = start(&broker, "victim");
        let p99 = |lat: &mut Vec<Duration>| {
            lat.sort();
            lat[(lat.len() * 99) / 100]
        };
        // Uncontended baseline.
        let mut base: Vec<Duration> = (0..100)
            .map(|_| {
                let t0 = Instant::now();
                assert!(matches!(
                    step(&broker, "victim", victim, vec![0]),
                    Response::Stepped { .. }
                ));
                t0.elapsed()
            })
            .collect();
        let p99_base = p99(&mut base);
        // Noisy neighbor: four sessions hammered from four threads.
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let noisy_threads: Vec<std::thread::JoinHandle<u64>> = (0..4)
            .map(|_| {
                let broker = broker.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let gid = start(&broker, "noisy");
                    let mut steps = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        if matches!(
                            step(&broker, "noisy", gid, vec![0]),
                            Response::Stepped { .. }
                        ) {
                            steps += 1;
                        }
                    }
                    steps
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(50)); // noise ramps up
        let mut contended: Vec<Duration> = (0..100)
            .map(|_| {
                let t0 = Instant::now();
                assert!(matches!(
                    step(&broker, "victim", victim, vec![0]),
                    Response::Stepped { .. }
                ));
                t0.elapsed()
            })
            .collect();
        let p99_cont = p99(&mut contended);
        stop.store(true, Ordering::Relaxed);
        let noisy_steps: u64 = noisy_threads.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(
            noisy_steps > 0,
            "the noisy tenant must actually have been served"
        );
        // Fair scheduling bounds the victim's latency under contention: a
        // generous 20x bound (vs the 2x the committed benchmark shows)
        // keeps this robust on loaded CI machines while still catching a
        // broken scheduler, where the victim would wait behind the entire
        // noisy backlog (100x+).
        let floor = Duration::from_micros(500);
        let bound = 20 * p99_base.max(floor);
        assert!(
            p99_cont <= bound,
            "victim p99 {p99_cont:?} exceeded {bound:?} (uncontended {p99_base:?})"
        );
        broker.drain(Duration::from_secs(2));
    }

    #[test]
    fn tcp_broker_serves_tenants_and_drains_on_shutdown() {
        use crate::retry::RetryPolicy;
        use crate::service::TcpClient;
        let store = CheckpointStore::new(16, 1000);
        let broker = Broker::new(
            counting_factory(),
            BrokerConfig {
                workers: 2,
                quota: TenantQuota {
                    max_sessions: 1,
                    ..TenantQuota::default()
                },
                checkpoints: store.clone(),
                ..BrokerConfig::default()
            },
        );
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = {
            let broker = broker.clone();
            std::thread::spawn(move || broker.serve(listener))
        };
        let policy = RetryPolicy::none();
        let mut alice =
            TcpClient::connect_with_policy(&addr, Duration::from_secs(10), policy.clone()).unwrap();
        alice.set_tenant("alice");
        let gid = match alice
            .call(&Request::StartSession {
                benchmark: "b".into(),
                action_space: 0,
            })
            .unwrap()
        {
            Response::SessionStarted { session_id } => session_id,
            other => panic!("{other:?}"),
        };
        assert!(matches!(
            alice
                .call(&Request::Step {
                    session_id: gid,
                    actions: vec![0],
                    observation_spaces: vec!["test".into()],
                })
                .unwrap(),
            Response::Stepped { .. }
        ));
        // The session quota refuses alice's second session as a *typed*
        // error over the wire.
        match alice.call(&Request::StartSession {
            benchmark: "b".into(),
            action_space: 0,
        }) {
            Err(crate::CgError::Overloaded { retry_after_ms, .. }) => {
                assert!(retry_after_ms > 0);
            }
            other => panic!("expected typed Overloaded over TCP, got {other:?}"),
        }
        // Shutdown drains: the live session is parked before the ack.
        assert!(matches!(
            alice.call(&Request::Shutdown).unwrap(),
            Response::Ok
        ));
        server.join().unwrap().unwrap();
        assert!(broker.is_finished());
        assert!(
            !store.is_empty(),
            "shutdown must checkpoint the live session"
        );
    }

    #[test]
    fn json_only_broker_forces_transparent_fallback() {
        use crate::retry::RetryPolicy;
        use crate::service::TcpClient;
        // `binary_wire: false` makes the broker behave like a pre-CGB1
        // server: the client's Hello probe is answered with a JSON error,
        // and the client must settle on JSON without surfacing anything.
        let broker = Broker::new(
            counting_factory(),
            BrokerConfig {
                workers: 1,
                binary_wire: false,
                quota: TenantQuota {
                    max_sessions: 1,
                    ..TenantQuota::default()
                },
                ..BrokerConfig::default()
            },
        );
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = {
            let broker = broker.clone();
            std::thread::spawn(move || broker.serve(listener))
        };
        let mut client =
            TcpClient::connect_with_policy(&addr, Duration::from_secs(10), RetryPolicy::none())
                .unwrap();
        client.set_tenant("fallback-tenant");
        assert!(matches!(
            client.call(&Request::Ping).unwrap(),
            Response::Pong
        ));
        assert_eq!(client.codec(), Some(crate::wire::WireCodec::Json));
        // Tenant metadata still rides the JSON frames after fallback.
        let gid = match client
            .call(&Request::StartSession {
                benchmark: "b".into(),
                action_space: 0,
            })
            .unwrap()
        {
            Response::SessionStarted { session_id } => session_id,
            other => panic!("{other:?}"),
        };
        assert!(matches!(
            client
                .call(&Request::Step {
                    session_id: gid,
                    actions: vec![0],
                    observation_spaces: vec![],
                })
                .unwrap(),
            Response::Stepped { .. }
        ));
        // Tenant metadata survived the fallback: the per-tenant session
        // quota kicks in on the second StartSession.
        match client.call(&Request::StartSession {
            benchmark: "b".into(),
            action_space: 0,
        }) {
            Err(crate::CgError::Overloaded { .. }) => {}
            other => panic!("expected per-tenant quota refusal, got {other:?}"),
        }
        assert!(matches!(
            client.call(&Request::Shutdown).unwrap(),
            Response::Ok
        ));
        server.join().unwrap().unwrap();
    }

    #[test]
    fn broker_pipelined_window_demuxes_by_correlation_id() {
        use crate::retry::RetryPolicy;
        use crate::service::TcpTransport;
        let broker = Broker::new(
            counting_factory(),
            BrokerConfig {
                workers: 2,
                ..BrokerConfig::default()
            },
        );
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = {
            let broker = broker.clone();
            std::thread::spawn(move || broker.serve(listener))
        };
        let transport =
            TcpTransport::connect_with_policy(&addr, Duration::from_secs(10), RetryPolicy::none())
                .unwrap();
        let gid = match transport
            .call(Request::StartSession {
                benchmark: "b".into(),
                action_space: 0,
            })
            .unwrap()
        {
            Response::SessionStarted { session_id } => session_id,
            other => panic!("{other:?}"),
        };
        // One window of steps: the broker answers each frame from a
        // detached forwarder thread, possibly out of order on the wire;
        // the client's correlation-id demux restores request order, and
        // session→worker pinning keeps the step counter strictly serial.
        let reqs: Vec<Request> = (0..6)
            .map(|_| Request::Step {
                session_id: gid,
                actions: vec![0],
                observation_spaces: vec!["test".into()],
            })
            .collect();
        let replies = transport.call_pipelined(&reqs).unwrap();
        assert_eq!(replies.len(), 6);
        for r in &replies {
            assert!(matches!(r, Response::Stepped { .. }), "{r:?}");
        }
        assert!(matches!(
            transport.call(Request::Shutdown).unwrap(),
            Response::Ok
        ));
        server.join().unwrap().unwrap();
    }
}
