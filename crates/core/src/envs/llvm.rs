//! The LLVM phase-ordering session (§V-A).

use std::collections::HashMap;
use std::sync::Arc;

use cg_ir::interp::ExecLimits;
use cg_ir::Module;
use cg_llvm::action_space::{autophase_subset, ActionSpace};
use cg_llvm::{observation, pipeline, reward};
use parking_lot::Mutex;

use crate::session::{ActionOutcome, CompilationSession};
use crate::space::{
    ActionSpaceInfo, Observation, ObservationKind, ObservationSpaceInfo, RewardSpaceInfo,
};

/// Parsed-benchmark cache: the amortized-O(1) environment initialization of
/// Table II. Keyed by URI; values are immutable parsed modules.
static BENCHMARK_CACHE: Mutex<Option<HashMap<String, Arc<Module>>>> = Mutex::new(None);

/// Baseline metric cache: (-Oz size, -Oz binary size, -O3 cycles) per URI.
static BASELINE_CACHE: Mutex<Option<HashMap<String, Baselines>>> = Mutex::new(None);

#[derive(Debug, Clone, Copy)]
struct Baselines {
    oz_ir_count: f64,
    oz_binary_size: f64,
    o3_runtime: Option<f64>,
}

/// Fetches (or parses and caches) a benchmark module.
///
/// # Errors
/// Propagates dataset resolution failures.
pub fn cached_benchmark(uri: &str) -> Result<Arc<Module>, String> {
    let mut guard = BENCHMARK_CACHE.lock();
    let cache = guard.get_or_insert_with(HashMap::new);
    if let Some(m) = cache.get(uri) {
        return Ok(Arc::clone(m));
    }
    let m = Arc::new(cg_datasets::benchmark(uri).map_err(|e| e.to_string())?);
    cache.insert(uri.to_string(), Arc::clone(&m));
    Ok(Arc::clone(&m))
}

/// Empties the benchmark cache (used by the cold-vs-warm init benchmarks).
pub fn clear_benchmark_cache() {
    *BENCHMARK_CACHE.lock() = None;
}

fn baselines_for(uri: &str, module: &Module) -> Baselines {
    let mut guard = BASELINE_CACHE.lock();
    let cache = guard.get_or_insert_with(HashMap::new);
    if let Some(b) = cache.get(uri) {
        return *b;
    }
    let mut oz = module.clone();
    pipeline::run_oz(&mut oz);
    let mut o3 = module.clone();
    pipeline::run_o3(&mut o3);
    let b = Baselines {
        oz_ir_count: reward::ir_instruction_count(&oz) as f64,
        oz_binary_size: reward::binary_size(&oz) as f64,
        o3_runtime: reward::runtime_cycles(&o3, &ExecLimits::default())
            .ok()
            .map(|c| c as f64),
    };
    cache.insert(uri.to_string(), b);
    b
}

/// The LLVM phase-ordering compilation session: holds the module being
/// optimized and applies one pass per action ("After initially reading and
/// parsing the bitcode file, the server incrementally applies an individual
/// optimization pass at each step" — the source of the 27× of Table II).
pub struct LlvmSession {
    space: ActionSpace,
    subset: Vec<usize>,
    active_subset: bool,
    module: Option<Module>,
    benchmark: String,
    measurement_counter: u64,
    /// Interpreter limits for runtime observations; the fuel cap is
    /// tightened by `apply_budget` (in-service resource budgets).
    limits: ExecLimits,
    /// Per-function feature cache; invalidated by the `Touched` set each
    /// applied pass reports, so `InstCount`/`Autophase` only re-scan dirty
    /// functions.
    features: observation::IncrementalFeatures,
    /// Reusable IR-print buffer for `Ir` observations and checkpoints
    /// (interior mutability because `save_state` takes `&self`; sessions
    /// are `Send` but never shared, so `RefCell` suffices).
    print_buf: std::cell::RefCell<String>,
    /// Analysis cache shared across the episode's actions: a pass reuses
    /// the dominator tree or loop forest of any function the previous
    /// actions left untouched (stamp-checked, reconciled per pass effect).
    analyses: cg_ir::AnalysisManager,
}

impl Default for LlvmSession {
    fn default() -> LlvmSession {
        LlvmSession::new()
    }
}

impl LlvmSession {
    /// Creates an uninitialized session.
    pub fn new() -> LlvmSession {
        let space = ActionSpace::new();
        let subset = autophase_subset()
            .iter()
            .map(|n| space.index_of(n).expect("subset names are registry names"))
            .collect();
        LlvmSession {
            space,
            subset,
            active_subset: false,
            module: None,
            benchmark: String::new(),
            measurement_counter: 0,
            limits: ExecLimits::default(),
            features: observation::IncrementalFeatures::new(),
            print_buf: std::cell::RefCell::new(String::new()),
            analyses: cg_ir::AnalysisManager::new(),
        }
    }

    fn module(&self) -> Result<&Module, String> {
        self.module
            .as_ref()
            .ok_or_else(|| "session not initialized".to_string())
    }

    /// Direct access to the module (used by in-process tooling like the
    /// state-transition logger; not part of the RPC surface).
    pub fn module_ref(&self) -> Option<&Module> {
        self.module.as_ref()
    }
}

impl CompilationSession for LlvmSession {
    fn action_spaces(&self) -> Vec<ActionSpaceInfo> {
        vec![
            ActionSpaceInfo {
                name: "PassPipeline".into(),
                actions: self.space.names(),
            },
            ActionSpaceInfo {
                name: "AutophaseSubset".into(),
                actions: self
                    .subset
                    .iter()
                    .map(|&i| self.space.names()[i].clone())
                    .collect(),
            },
        ]
    }

    fn observation_spaces(&self) -> Vec<ObservationSpaceInfo> {
        use ObservationKind::*;
        let s = |name: &str, kind, deterministic, platform_dependent| ObservationSpaceInfo {
            name: name.into(),
            kind,
            deterministic,
            platform_dependent,
        };
        vec![
            s("Ir", Text, true, false),
            s("InstCount", IntVector, true, false),
            s("Autophase", IntVector, true, false),
            s("Inst2vec", FloatVector, true, false),
            s("Programl", Graph, true, false),
            s("IrInstructionCount", Scalar, true, false),
            s("IrInstructionCountOz", Scalar, true, false),
            s("ObjectTextSizeBytes", Scalar, true, true),
            s("ObjectTextSizeOz", Scalar, true, true),
            s("Runtime", Scalar, false, true),
            s("RuntimeO3", Scalar, false, true),
        ]
    }

    fn reward_spaces(&self) -> Vec<RewardSpaceInfo> {
        let r = |name: &str, metric: &str, baseline: Option<&str>, deterministic| RewardSpaceInfo {
            name: name.into(),
            metric: metric.into(),
            sign: 1.0,
            baseline: baseline.map(|b| b.into()),
            deterministic,
        };
        vec![
            r("IrInstructionCount", "IrInstructionCount", None, true),
            r(
                "IrInstructionCountOz",
                "IrInstructionCount",
                Some("IrInstructionCountOz"),
                true,
            ),
            r("ObjectTextSizeBytes", "ObjectTextSizeBytes", None, true),
            r(
                "ObjectTextSizeOz",
                "ObjectTextSizeBytes",
                Some("ObjectTextSizeOz"),
                true,
            ),
            r("Runtime", "Runtime", None, false),
            r("RuntimeO3", "Runtime", Some("RuntimeO3"), false),
        ]
    }

    fn init(&mut self, benchmark: &str, action_space: usize) -> Result<(), String> {
        if action_space > 1 {
            return Err(format!(
                "llvm-v0 has 2 action spaces, got index {action_space}"
            ));
        }
        self.active_subset = action_space == 1;
        let m = cached_benchmark(benchmark)?;
        self.module = Some((*m).clone());
        self.benchmark = benchmark.to_string();
        self.measurement_counter = 0;
        self.features.clear();
        self.analyses = cg_ir::AnalysisManager::new();
        Ok(())
    }

    fn apply_action(&mut self, action: usize) -> Result<ActionOutcome, String> {
        let index = if self.active_subset {
            *self
                .subset
                .get(action)
                .ok_or_else(|| format!("action {action} out of range (subset has 42)"))?
        } else {
            if action >= self.space.len() {
                return Err(format!(
                    "action {action} out of range ({} actions)",
                    self.space.len()
                ));
            }
            action
        };
        let m = self.module.as_mut().ok_or("session not initialized")?;
        let effect = self.space.apply_with(m, index, &mut self.analyses);
        self.features.invalidate(&effect.touched);
        Ok(ActionOutcome {
            end_of_episode: false,
            action_space_changed: false,
            changed: effect.changed,
        })
    }

    fn observe(&mut self, space: &str) -> Result<Observation, String> {
        let uri = self.benchmark.clone();
        // The feature spaces go through the per-function cache (mutable)
        // alongside the module, so handle them on disjoint field borrows
        // before the read-only arms.
        match space {
            "InstCount" => {
                let m = self.module.as_ref().ok_or("session not initialized")?;
                let v = self.features.inst_count(m);
                debug_assert_eq!(
                    v,
                    observation::inst_count(m),
                    "incremental InstCount diverged from full recompute"
                );
                return Ok(Observation::IntVector(v));
            }
            "Autophase" => {
                let m = self.module.as_ref().ok_or("session not initialized")?;
                let v = self.features.autophase(m);
                debug_assert_eq!(
                    v,
                    observation::autophase(m),
                    "incremental Autophase diverged from full recompute"
                );
                return Ok(Observation::IntVector(v));
            }
            _ => {}
        }
        let m = self.module()?;
        Ok(match space {
            "Ir" => {
                let mut buf = self.print_buf.borrow_mut();
                observation::ir_text_into(&mut buf, m);
                Observation::Text(buf.clone())
            }
            "Inst2vec" => Observation::FloatVector(observation::inst2vec(m)),
            "Programl" => Observation::Graph(observation::programl(m)),
            "IrInstructionCount" => Observation::Scalar(reward::ir_instruction_count(m) as f64),
            "ObjectTextSizeBytes" => Observation::Scalar(reward::binary_size(m) as f64),
            "IrInstructionCountOz" => {
                let b = baselines_for(&uri, m);
                Observation::Scalar(b.oz_ir_count)
            }
            "ObjectTextSizeOz" => {
                let b = baselines_for(&uri, m);
                Observation::Scalar(b.oz_binary_size)
            }
            "Runtime" => {
                self.measurement_counter += 1;
                let seed = cg_ir::fnv1a(uri.as_bytes()) ^ self.measurement_counter;
                let m = self.module()?;
                let t = reward::runtime_measurement(m, &self.limits, seed)
                    .map_err(|e| format!("benchmark is not runnable: {e}"))?;
                Observation::Scalar(t)
            }
            "RuntimeO3" => {
                let b = baselines_for(&uri, m);
                Observation::Scalar(b.o3_runtime.ok_or("benchmark is not runnable")?)
            }
            other => return Err(format!("unknown observation space `{other}`")),
        })
    }

    fn fork(&self) -> Box<dyn CompilationSession> {
        Box::new(LlvmSession {
            space: self.space.clone(),
            subset: self.subset.clone(),
            active_subset: self.active_subset,
            module: self.module.clone(),
            benchmark: self.benchmark.clone(),
            measurement_counter: self.measurement_counter,
            limits: self.limits,
            features: self.features.clone(),
            print_buf: std::cell::RefCell::new(String::new()),
            // Forks start with an empty cache: entries repopulate on first
            // use, and the parent keeps its own.
            analyses: cg_ir::AnalysisManager::new(),
        })
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        // Textual IR is the canonical snapshot: print/parse round-trips
        // byte-identically (the checkpoint contract), and the format is
        // stable across service restarts. Printed into the session's
        // reusable buffer so per-step checkpointing doesn't re-grow a fresh
        // string every time.
        self.module.as_ref().map(|m| {
            let mut buf = self.print_buf.borrow_mut();
            cg_ir::printer::print_module_into(&mut buf, m);
            buf.as_bytes().to_vec()
        })
    }

    fn load_state(&mut self, state: &[u8]) -> Result<(), String> {
        let text =
            std::str::from_utf8(state).map_err(|e| format!("checkpoint is not UTF-8: {e}"))?;
        let m = cg_ir::parser::parse_module(text)
            .map_err(|e| format!("checkpoint does not parse: {e}"))?;
        self.module = Some(m);
        // Function ids restart from zero in a re-parsed module; the cache
        // keys would silently collide, so drop everything.
        self.features.clear();
        self.analyses = cg_ir::AnalysisManager::new();
        Ok(())
    }

    fn state_size(&self) -> Option<u64> {
        self.module
            .as_ref()
            .map(|m| reward::ir_instruction_count(m) as u64)
    }

    fn apply_budget(&mut self, budget: &crate::budget::ResourceBudget) {
        if let Some(fuel) = budget.interp_fuel {
            self.limits.max_insts = fuel;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_step_observe() {
        let mut s = LlvmSession::new();
        s.init("benchmark://cbench-v1/crc32", 0).unwrap();
        let before = s
            .observe("IrInstructionCount")
            .unwrap()
            .as_scalar()
            .unwrap();
        let idx = s.space.index_of("mem2reg").unwrap();
        let out = s.apply_action(idx).unwrap();
        assert!(out.changed);
        let after = s
            .observe("IrInstructionCount")
            .unwrap()
            .as_scalar()
            .unwrap();
        assert!(after < before);
    }

    #[test]
    fn subset_action_space_maps_indices() {
        let mut s = LlvmSession::new();
        s.init("benchmark://cbench-v1/crc32", 1).unwrap();
        assert!(s.apply_action(41).is_ok());
        assert!(s.apply_action(42).is_err());
    }

    #[test]
    fn oz_baseline_is_below_initial() {
        let mut s = LlvmSession::new();
        s.init("benchmark://cbench-v1/qsort", 0).unwrap();
        let init = s
            .observe("IrInstructionCount")
            .unwrap()
            .as_scalar()
            .unwrap();
        let oz = s
            .observe("IrInstructionCountOz")
            .unwrap()
            .as_scalar()
            .unwrap();
        assert!(oz < init);
    }

    #[test]
    fn fork_is_independent() {
        let mut s = LlvmSession::new();
        s.init("benchmark://cbench-v1/crc32", 0).unwrap();
        let mut f = s.fork();
        let idx = s.space.index_of("mem2reg").unwrap();
        s.apply_action(idx).unwrap();
        let orig = s
            .observe("IrInstructionCount")
            .unwrap()
            .as_scalar()
            .unwrap();
        let forked = f
            .observe("IrInstructionCount")
            .unwrap()
            .as_scalar()
            .unwrap();
        assert!(orig < forked, "fork kept the pre-action module");
    }

    #[test]
    fn cache_hit_returns_same_arc() {
        clear_benchmark_cache();
        let a = cached_benchmark("benchmark://cbench-v1/sha").unwrap();
        let b = cached_benchmark("benchmark://cbench-v1/sha").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }
}
