//! The three compiler integrations shipped with the system (§V):
//! LLVM phase ordering, GCC flag tuning, and `loop_tool` CUDA loop nests.

pub mod gcc;
pub mod llvm;
pub mod looptool;

use crate::service::SessionFactory;
use crate::session::CompilationSession;
use std::sync::Arc;

/// Creates a fresh backend session for a registered environment family.
///
/// # Errors
/// Returns an error string for unknown environment ids.
pub fn create_session(env: &str) -> Result<Box<dyn CompilationSession>, String> {
    match env {
        "llvm-v0" => Ok(Box::new(llvm::LlvmSession::new())),
        "gcc-v0" => Ok(Box::new(gcc::GccSession::new(cg_gcc::GccSpec::v11_2()))),
        s if s.starts_with("gcc-v0/") => {
            let spec = cg_gcc::GccSpec::from_specifier(&s["gcc-v0/".len()..])
                .ok_or_else(|| format!("unknown gcc version specifier in `{s}`"))?;
            Ok(Box::new(gcc::GccSession::new(spec)))
        }
        "loop_tool-v0" => Ok(Box::new(looptool::LoopToolSession::new())),
        other => Err(format!("unknown environment `{other}`")),
    }
}

/// A reusable [`SessionFactory`] for a registered environment family. The
/// id is validated eagerly so an unknown backend fails at construction, not
/// inside the service worker thread.
///
/// # Errors
/// Returns an error string for unknown environment ids.
pub fn session_factory(env: &str) -> Result<SessionFactory, String> {
    create_session(env)?; // validate the id up front
    let env = env.to_string();
    Ok(Arc::new(move || {
        create_session(&env).expect("backend id validated at construction")
    }))
}
