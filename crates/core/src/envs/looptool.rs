//! The `loop_tool` CUDA loop-nest session (§V-C).

use cg_looptool::{Action, LoopNest, Mode};

use crate::session::{ActionOutcome, CompilationSession};
use crate::space::{
    ActionSpaceInfo, Observation, ObservationKind, ObservationSpaceInfo, RewardSpaceInfo,
};

/// The loop-nest generation session. Benchmarks name a problem size:
/// `benchmark://loop_tool-v0/<n>`.
pub struct LoopToolSession {
    nest: Option<LoopNest>,
    extended: bool,
    measurement_counter: u64,
}

impl Default for LoopToolSession {
    fn default() -> LoopToolSession {
        LoopToolSession::new()
    }
}

impl LoopToolSession {
    /// Creates an uninitialized session.
    pub fn new() -> LoopToolSession {
        LoopToolSession {
            nest: None,
            extended: false,
            measurement_counter: 0,
        }
    }

    fn actions(&self) -> &'static [Action] {
        if self.extended {
            Action::extended()
        } else {
            Action::basic()
        }
    }

    /// The current loop nest (used by in-process tooling).
    pub fn nest(&self) -> Option<&LoopNest> {
        self.nest.as_ref()
    }
}

impl CompilationSession for LoopToolSession {
    fn action_spaces(&self) -> Vec<ActionSpaceInfo> {
        let names = |acts: &[Action]| {
            acts.iter()
                .map(|a| {
                    match a {
                        Action::ToggleMode => "toggle_mode",
                        Action::Up => "up",
                        Action::Down => "down",
                        Action::ToggleThread => "toggle_thread",
                        Action::Split => "split",
                    }
                    .to_string()
                })
                .collect()
        };
        vec![
            ActionSpaceInfo {
                name: "Cursor".into(),
                actions: names(Action::basic()),
            },
            ActionSpaceInfo {
                name: "CursorExtended".into(),
                actions: names(Action::extended()),
            },
        ]
    }

    fn observation_spaces(&self) -> Vec<ObservationSpaceInfo> {
        use ObservationKind::*;
        vec![
            ObservationSpaceInfo {
                name: "ActionState".into(),
                kind: IntVector,
                deterministic: true,
                platform_dependent: false,
            },
            ObservationSpaceInfo {
                name: "LoopTree".into(),
                kind: Text,
                deterministic: true,
                platform_dependent: false,
            },
            ObservationSpaceInfo {
                name: "Flops".into(),
                kind: Scalar,
                deterministic: false,
                platform_dependent: true,
            },
        ]
    }

    fn reward_spaces(&self) -> Vec<RewardSpaceInfo> {
        vec![RewardSpaceInfo {
            name: "Flops".into(),
            metric: "Flops".into(),
            sign: -1.0, // higher FLOPs is better
            baseline: None,
            deterministic: false,
        }]
    }

    fn init(&mut self, benchmark: &str, action_space: usize) -> Result<(), String> {
        if action_space > 1 {
            return Err("loop_tool-v0 has 2 action spaces".into());
        }
        self.extended = action_space == 1;
        let path = benchmark
            .rsplit('/')
            .next()
            .ok_or_else(|| format!("bad loop_tool benchmark `{benchmark}`"))?;
        let n: u64 = path
            .parse()
            .map_err(|_| format!("loop_tool benchmarks are problem sizes, got `{path}`"))?;
        if n == 0 || n > (1 << 32) {
            return Err(format!("problem size {n} out of range"));
        }
        self.nest = Some(LoopNest::pointwise_add(n));
        self.measurement_counter = 0;
        Ok(())
    }

    fn apply_action(&mut self, action: usize) -> Result<ActionOutcome, String> {
        let acts = self.actions();
        let a = *acts
            .get(action)
            .ok_or_else(|| format!("action {action} out of range ({})", acts.len()))?;
        let nest = self.nest.as_mut().ok_or("session not initialized")?;
        let before = nest.clone();
        nest.apply(a);
        Ok(ActionOutcome {
            end_of_episode: false,
            action_space_changed: false,
            changed: *nest != before,
        })
    }

    fn observe(&mut self, space: &str) -> Result<Observation, String> {
        let nest = self.nest.as_ref().ok_or("session not initialized")?;
        Ok(match space {
            "ActionState" => {
                let (cursor, mode, nloops) = nest.action_state();
                Observation::IntVector(vec![
                    cursor as i64,
                    matches!(mode, Mode::Modify) as i64,
                    nloops as i64,
                    nest.threads() as i64,
                ])
            }
            "LoopTree" => Observation::Text(nest.dump()),
            "Flops" => {
                self.measurement_counter += 1;
                Observation::Scalar(nest.benchmark(self.measurement_counter))
            }
            other => return Err(format!("unknown observation space `{other}`")),
        })
    }

    fn fork(&self) -> Box<dyn CompilationSession> {
        Box::new(LoopToolSession {
            nest: self.nest.clone(),
            extended: self.extended,
            measurement_counter: self.measurement_counter,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threading_improves_flops_reward_metric() {
        let mut s = LoopToolSession::new();
        s.init("benchmark://loop_tool-v0/1048576", 0).unwrap();
        let before = s.observe("Flops").unwrap().as_scalar().unwrap();
        s.apply_action(3).unwrap(); // toggle_thread
        let after = s.observe("Flops").unwrap().as_scalar().unwrap();
        assert!(after > before * 10.0);
    }

    #[test]
    fn split_requires_extended_space() {
        let mut s = LoopToolSession::new();
        s.init("benchmark://loop_tool-v0/1024", 0).unwrap();
        assert!(s.apply_action(4).is_err());
        s.init("benchmark://loop_tool-v0/1024", 1).unwrap();
        assert!(s.apply_action(4).is_ok());
    }

    #[test]
    fn bad_benchmark_is_rejected() {
        let mut s = LoopToolSession::new();
        assert!(s.init("benchmark://loop_tool-v0/banana", 0).is_err());
        assert!(s.init("benchmark://loop_tool-v0/0", 0).is_err());
    }
}
