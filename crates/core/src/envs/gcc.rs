//! The GCC flag-tuning session (§V-B).

use cg_gcc::{compile, CompileOutput, FlatAction, GccSpec, OptionSpace};
use cg_ir::Module;

use crate::envs::llvm::cached_benchmark;
use crate::session::{ActionOutcome, CompilationSession};
use crate::space::{
    ActionSpaceInfo, Observation, ObservationKind, ObservationSpaceInfo, RewardSpaceInfo,
};

fn flat_action_name(space: &OptionSpace, a: &FlatAction) -> String {
    match a {
        FlatAction::Set { option, choice } => {
            format!("set[{}]={}", space.options()[*option].name, choice)
        }
        FlatAction::Add { option, delta } => {
            format!("add[{}]{:+}", space.options()[*option].name, delta)
        }
    }
}

/// The GCC flag-tuning session: holds the current choice vector and
/// recompiles on demand. Both action encodings of the paper are exposed:
/// `FlagDeltas` (the flat categorical space, 2k+ actions) and `Choices`
/// (direct integer assignment, exposed for search algorithms via
/// [`GccSession::set_choices`]).
pub struct GccSession {
    space: OptionSpace,
    flat: Vec<FlatAction>,
    module: Option<std::sync::Arc<Module>>,
    benchmark: String,
    choices: Vec<usize>,
    cached_output: Option<CompileOutput>,
    baseline_os: Option<(f64, f64)>,
}

impl GccSession {
    /// Creates a session for a GCC version.
    pub fn new(spec: GccSpec) -> GccSession {
        let space = OptionSpace::for_version(&spec);
        let flat = space.flat_actions();
        GccSession {
            space,
            flat,
            module: None,
            benchmark: String::new(),
            choices: Vec::new(),
            cached_output: None,
            baseline_os: None,
        }
    }

    /// The option space of this session's GCC version.
    pub fn option_space(&self) -> &OptionSpace {
        &self.space
    }

    /// Directly installs a full choice vector (the first action space of
    /// §V-B: "a list of integers, each encoding the choice for one option").
    ///
    /// # Errors
    /// Returns an error when called before `init` or with the wrong length.
    pub fn set_choices(&mut self, choices: &[usize]) -> Result<(), String> {
        if self.module.is_none() {
            return Err("session not initialized".into());
        }
        if choices.len() != self.space.num_options() {
            return Err(format!(
                "expected {} choices, got {}",
                self.space.num_options(),
                choices.len()
            ));
        }
        let mut c = choices.to_vec();
        self.space.clamp(&mut c);
        self.choices = c;
        self.cached_output = None;
        Ok(())
    }

    /// The current choice vector.
    pub fn choices(&self) -> &[usize] {
        &self.choices
    }

    fn output(&mut self) -> Result<&CompileOutput, String> {
        let m = self.module.as_ref().ok_or("session not initialized")?;
        if self.cached_output.is_none() {
            self.cached_output = Some(compile(m, &self.space, &self.choices));
        }
        Ok(self.cached_output.as_ref().expect("just compiled"))
    }

    fn baseline(&mut self) -> Result<(f64, f64), String> {
        if let Some(b) = self.baseline_os {
            return Ok(b);
        }
        let m = self.module.as_ref().ok_or("session not initialized")?;
        let os = compile(m, &self.space, &self.space.choices_for_level(4));
        let b = (os.obj_size as f64, os.asm_size as f64);
        self.baseline_os = Some(b);
        Ok(b)
    }
}

impl CompilationSession for GccSession {
    fn action_spaces(&self) -> Vec<ActionSpaceInfo> {
        vec![ActionSpaceInfo {
            name: "FlagDeltas".into(),
            actions: self
                .flat
                .iter()
                .map(|a| flat_action_name(&self.space, a))
                .collect(),
        }]
    }

    fn observation_spaces(&self) -> Vec<ObservationSpaceInfo> {
        use ObservationKind::*;
        let s = |name: &str, kind| ObservationSpaceInfo {
            name: name.into(),
            kind,
            deterministic: true,
            platform_dependent: true,
        };
        vec![
            s("CommandLine", Text),
            s("Asm", Text),
            s("ObjectCode", Bytes),
            s("InstructionCounts", IntVector),
            s("ObjSize", Scalar),
            s("AsmSize", Scalar),
            s("ObjSizeOs", Scalar),
            s("AsmSizeOs", Scalar),
        ]
    }

    fn reward_spaces(&self) -> Vec<RewardSpaceInfo> {
        vec![
            RewardSpaceInfo {
                name: "ObjSize".into(),
                metric: "ObjSize".into(),
                sign: 1.0,
                baseline: None,
                deterministic: true,
            },
            RewardSpaceInfo {
                name: "AsmSize".into(),
                metric: "AsmSize".into(),
                sign: 1.0,
                baseline: None,
                deterministic: true,
            },
            RewardSpaceInfo {
                name: "ObjSizeOs".into(),
                metric: "ObjSize".into(),
                sign: 1.0,
                baseline: Some("ObjSizeOs".into()),
                deterministic: true,
            },
        ]
    }

    fn init(&mut self, benchmark: &str, action_space: usize) -> Result<(), String> {
        if action_space != 0 {
            return Err("gcc-v0 exposes one RPC action space (FlagDeltas)".into());
        }
        self.module = Some(cached_benchmark(benchmark)?);
        self.benchmark = benchmark.to_string();
        self.choices = self.space.default_choices();
        self.cached_output = None;
        self.baseline_os = None;
        Ok(())
    }

    fn apply_action(&mut self, action: usize) -> Result<ActionOutcome, String> {
        if self.module.is_none() {
            return Err("session not initialized".into());
        }
        let a = self
            .flat
            .get(action)
            .ok_or_else(|| format!("action {action} out of range ({})", self.flat.len()))?;
        let before = self.choices.clone();
        self.space.apply_flat(&mut self.choices, a);
        let changed = before != self.choices;
        if changed {
            self.cached_output = None;
        }
        Ok(ActionOutcome {
            end_of_episode: false,
            action_space_changed: false,
            changed,
        })
    }

    fn observe(&mut self, space: &str) -> Result<Observation, String> {
        Ok(match space {
            "CommandLine" => {
                let choices = self.choices.clone();
                Observation::Text(self.space.command_line(&choices))
            }
            "Asm" => Observation::Text(self.output()?.asm_text.clone()),
            "ObjectCode" => Observation::Bytes(self.output()?.asm_text.as_bytes().to_vec()),
            "InstructionCounts" => {
                let o = self.output()?;
                Observation::IntVector(vec![o.rtl_count as i64, o.ir_count as i64])
            }
            "ObjSize" => Observation::Scalar(self.output()?.obj_size as f64),
            "AsmSize" => Observation::Scalar(self.output()?.asm_size as f64),
            "ObjSizeOs" => Observation::Scalar(self.baseline()?.0),
            "AsmSizeOs" => Observation::Scalar(self.baseline()?.1),
            other => return Err(format!("unknown observation space `{other}`")),
        })
    }

    fn fork(&self) -> Box<dyn CompilationSession> {
        Box::new(GccSession {
            space: self.space.clone(),
            flat: self.flat.clone(),
            module: self.module.clone(),
            benchmark: self.benchmark.clone(),
            choices: self.choices.clone(),
            cached_output: self.cached_output.clone(),
            baseline_os: self.baseline_os,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actions_mutate_choices_and_sizes() {
        let mut s = GccSession::new(GccSpec::v11_2());
        s.init("benchmark://chstone-v0/sha", 0).unwrap();
        let base = s.observe("ObjSize").unwrap().as_scalar().unwrap();
        // Find the flat action that sets -O to -Os (option 0, choice 5).
        let idx = s
            .flat
            .iter()
            .position(|a| {
                matches!(
                    a,
                    FlatAction::Set {
                        option: 0,
                        choice: 5
                    }
                )
            })
            .unwrap();
        s.apply_action(idx).unwrap();
        let after = s.observe("ObjSize").unwrap().as_scalar().unwrap();
        assert!(after < base, "-Os shrinks the object: {after} vs {base}");
    }

    #[test]
    fn set_choices_validates_length() {
        let mut s = GccSession::new(GccSpec::v11_2());
        s.init("benchmark://chstone-v0/sha", 0).unwrap();
        assert!(s.set_choices(&[0, 1]).is_err());
        let c = s.option_space().choices_for_level(2);
        s.set_choices(&c).unwrap();
        assert!(s
            .observe("CommandLine")
            .unwrap()
            .as_text()
            .unwrap()
            .contains("-O2"));
    }

    #[test]
    fn gcc5_space_is_smaller() {
        let s11 = GccSession::new(GccSpec::v11_2());
        let s5 = GccSession::new(GccSpec::v5());
        assert!(s5.option_space().num_options() < s11.option_space().num_options());
    }
}
