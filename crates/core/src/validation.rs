//! Semantics validation by differential testing (§III-B4).
//!
//! For runnable benchmarks, the optimized program is executed against the
//! unoptimized reference; diverging results mean the optimization pipeline
//! miscompiled the program. This is the analogue of the paper's differential
//! testing regime plus sanitizer integration (traps during execution are
//! reported as logic errors, like UBSan findings).

use cg_ir::interp::{run_main, ExecError, ExecLimits};
use cg_ir::Module;

use crate::error::CgError;

/// The result of a semantics-validation run.
#[derive(Debug, Clone, PartialEq)]
pub enum SemanticsVerdict {
    /// Results match: the optimization preserved behaviour.
    Ok,
    /// The benchmark is not runnable, so semantics cannot be checked
    /// (matches the paper: only runnable datasets support this validation).
    NotRunnable(String),
}

/// Differentially tests `optimized` against `reference`.
///
/// Both modules are executed; the verdict compares return values. A trap in
/// the optimized module that the reference does not exhibit is a
/// miscompilation; mismatched outputs likewise.
///
/// # Errors
/// [`CgError::Validation`] describing the divergence.
pub fn validate_semantics(
    reference: &Module,
    optimized: &Module,
) -> Result<SemanticsVerdict, CgError> {
    // Structural validity first — the cheapest bug detector.
    cg_ir::verify::verify_module(optimized)
        .map_err(|e| CgError::Validation(format!("optimized module is invalid: {e}")))?;
    let limits = ExecLimits::default();
    let ref_out = match run_main(reference, &limits) {
        Ok(o) => o,
        Err(ExecError::Malformed(m)) => return Ok(SemanticsVerdict::NotRunnable(m)),
        Err(e) => return Ok(SemanticsVerdict::NotRunnable(e.to_string())),
    };
    let opt_out = run_main(optimized, &limits).map_err(|e| {
        CgError::Validation(format!(
            "optimized binary trapped ({e}) where the reference ran cleanly — \
             sanitizer-detected logic error"
        ))
    })?;
    if ref_out.ret != opt_out.ret {
        return Err(CgError::Validation(format!(
            "differential test failed: reference returned {:?}, optimized returned {:?}",
            ref_out.ret, opt_out.ret
        )));
    }
    Ok(SemanticsVerdict::Ok)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_llvm::pipeline;

    #[test]
    fn oz_validates_on_cbench() {
        let reference = cg_datasets::benchmark("cbench-v1/gsm").unwrap();
        let mut optimized = reference.clone();
        pipeline::run_oz(&mut optimized);
        assert_eq!(
            validate_semantics(&reference, &optimized).unwrap(),
            SemanticsVerdict::Ok
        );
    }

    #[test]
    fn detects_a_miscompile() {
        let reference = cg_datasets::benchmark("cbench-v1/crc32").unwrap();
        let mut broken = reference.clone();
        // Simulate a miscompilation: flip a constant in some instruction.
        let fid = broken.func_ids()[0];
        'outer: for bid in broken.func(fid).block_ids() {
            let f = broken.func_mut(fid);
            for inst in &mut f.block_mut(bid).insts {
                let mut changed = false;
                inst.op.for_each_operand_mut(|o| {
                    if !changed {
                        if let Some(c) = o.as_const_int() {
                            *o = cg_ir::Operand::const_int(c.wrapping_add(41));
                            changed = true;
                        }
                    }
                });
                if changed {
                    break 'outer;
                }
            }
        }
        let r = validate_semantics(&reference, &broken);
        assert!(matches!(r, Err(CgError::Validation(_))), "got {r:?}");
    }

    #[test]
    fn non_runnable_is_reported_not_failed() {
        let reference = cg_ir::Module::new("no-main");
        let optimized = reference.clone();
        assert!(matches!(
            validate_semantics(&reference, &optimized).unwrap(),
            SemanticsVerdict::NotRunnable(_)
        ));
    }
}
