//! Semantics validation by differential testing (§III-B4).
//!
//! For runnable benchmarks, the optimized program is executed against the
//! unoptimized reference; diverging results mean the optimization pipeline
//! miscompiled the program. This is the analogue of the paper's differential
//! testing regime plus sanitizer integration (traps during execution are
//! reported as logic errors, like UBSan findings).
//!
//! The comparison itself is the shared `cg-difftest` oracle — the same
//! engine behind `cg fuzz` — so episode validation and the fuzzer agree on
//! what "behaviour preserved" means: matching return values *and* final
//! global memory, across a multi-input corpus that perturbs mutable global
//! initializers, with fuel-exhaustion handled as its own failure mode
//! rather than a trap.

use cg_difftest::oracle::{compare_modules, OracleConfig, OracleFailure};
use cg_ir::interp::{run_main, ExecLimits};
use cg_ir::Module;

use crate::error::CgError;

/// The result of a semantics-validation run.
#[derive(Debug, Clone, PartialEq)]
pub enum SemanticsVerdict {
    /// Results match on every corpus input: the optimization preserved
    /// behaviour. Carries the number of compared executions.
    Ok {
        /// (reference, optimized) run pairs compared.
        runs: u32,
    },
    /// The benchmark is not runnable, so semantics cannot be checked
    /// (matches the paper: only runnable datasets support this validation).
    NotRunnable(String),
}

/// Why validation failed, in machine-matchable form.
///
/// Wraps the oracle's typed failure so environment code can distinguish a
/// verifier rejection (broken IR) from a behavioural divergence (miscompile)
/// from a resource divergence (optimized program stopped terminating).
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationFailure {
    /// The underlying oracle verdict.
    pub failure: OracleFailure,
}

impl ValidationFailure {
    /// True if the failure is a sanitizer-style finding: the optimized
    /// program trapped or failed to finish where the reference ran cleanly.
    pub fn is_runtime_error(&self) -> bool {
        matches!(
            self.failure,
            OracleFailure::TrapIntroduced { .. } | OracleFailure::FuelDiverged { .. }
        )
    }
}

/// Differentially tests `optimized` against `reference` with the shared
/// difftest oracle and reports a typed verdict.
///
/// # Errors
/// The typed [`ValidationFailure`] describing the divergence.
pub fn validate_semantics_typed(
    reference: &Module,
    optimized: &Module,
) -> Result<SemanticsVerdict, ValidationFailure> {
    // Benchmarks without a runnable entry point (no nullary `main`, or a
    // reference that itself traps on the base input) cannot be judged.
    if let Err(e) = run_main(reference, &ExecLimits::default()) {
        return Ok(SemanticsVerdict::NotRunnable(e.to_string()));
    }
    match compare_modules(reference, optimized, &OracleConfig::default()) {
        Ok(runs) => Ok(SemanticsVerdict::Ok { runs }),
        Err(failure) => Err(ValidationFailure { failure }),
    }
}

/// Differentially tests `optimized` against `reference`.
///
/// Convenience wrapper over [`validate_semantics_typed`] for callers that
/// only need an error string.
///
/// # Errors
/// [`CgError::Validation`] describing the divergence.
pub fn validate_semantics(
    reference: &Module,
    optimized: &Module,
) -> Result<SemanticsVerdict, CgError> {
    validate_semantics_typed(reference, optimized).map_err(|vf| {
        let prefix = if vf.is_runtime_error() {
            "sanitizer-detected logic error"
        } else {
            "differential test failed"
        };
        CgError::Validation(format!("{prefix}: {}", vf.failure))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_llvm::pipeline;

    #[test]
    fn oz_validates_on_cbench() {
        let reference = cg_datasets::benchmark("cbench-v1/gsm").unwrap();
        let mut optimized = reference.clone();
        pipeline::run_oz(&mut optimized);
        let verdict = validate_semantics(&reference, &optimized).unwrap();
        assert!(
            matches!(verdict, SemanticsVerdict::Ok { runs } if runs >= 1),
            "{verdict:?}"
        );
    }

    #[test]
    fn detects_a_miscompile() {
        let reference = cg_datasets::benchmark("cbench-v1/crc32").unwrap();
        let mut broken = reference.clone();
        // Simulate a miscompilation: flip a constant in some instruction.
        let fid = broken.func_ids()[0];
        'outer: for bid in broken.func(fid).block_ids_vec() {
            let f = broken.func_mut(fid);
            for inst in &mut f.block_mut(bid).insts {
                let mut changed = false;
                inst.op.for_each_operand_mut(|o| {
                    if !changed {
                        if let Some(c) = o.as_const_int() {
                            *o = cg_ir::Operand::const_int(c.wrapping_add(41));
                            changed = true;
                        }
                    }
                });
                if changed {
                    break 'outer;
                }
            }
        }
        let r = validate_semantics(&reference, &broken);
        assert!(matches!(r, Err(CgError::Validation(_))), "got {r:?}");
    }

    #[test]
    fn typed_verdict_distinguishes_traps() {
        use cg_ir::builder::ModuleBuilder;
        use cg_ir::{BinOp, Operand, Type};
        // Reference returns 1; "optimized" divides by zero.
        let mut mb = ModuleBuilder::new("ref");
        let mut fb = mb.begin_function("main", &[], Type::I64);
        fb.ret(Some(Operand::const_int(1)));
        fb.finish();
        let reference = mb.finish();
        let mut mb = ModuleBuilder::new("opt");
        let mut fb = mb.begin_function("main", &[], Type::I64);
        let v = fb.bin(BinOp::Div, Operand::const_int(1), Operand::const_int(0));
        fb.ret(Some(v));
        fb.finish();
        let optimized = mb.finish();
        let err = validate_semantics_typed(&reference, &optimized).unwrap_err();
        assert!(err.is_runtime_error(), "{err:?}");
    }

    #[test]
    fn non_runnable_is_reported_not_failed() {
        let reference = cg_ir::Module::new("no-main");
        let optimized = reference.clone();
        assert!(matches!(
            validate_semantics(&reference, &optimized).unwrap(),
            SemanticsVerdict::NotRunnable(_)
        ));
    }
}
