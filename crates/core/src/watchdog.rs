//! Service watchdog: a supervisor thread that heartbeats a
//! [`ServiceClient`] and proactively restarts silently-wedged services.
//!
//! The client-side deadline only fires while a call is *in flight*: a
//! service that wedges between requests (alive, but its worker loop stuck)
//! goes unnoticed until the next call eats a full timeout. The watchdog
//! closes that gap: every `interval` it sends a short-deadline `Ping`
//! through [`ServiceClient::probe`]; after `misses` consecutive failed
//! probes it calls [`ServiceClient::restart`], which propagates to every
//! clone of the client — in-flight calls observe the generation change and
//! abort promptly, flowing into the normal recovery (checkpoint restore /
//! replay) path.
//!
//! Caveat: a worker busy with one long legitimate request also misses
//! heartbeats. Pair the watchdog with a step wall budget (so no request can
//! monopolize the worker) or set the probe deadline above the longest
//! expected step.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, Sender};

use crate::service::ServiceClient;

/// Default heartbeat interval.
pub const DEFAULT_HEARTBEAT_INTERVAL: Duration = Duration::from_millis(500);

/// Default probe deadline.
pub const DEFAULT_PROBE_DEADLINE: Duration = Duration::from_millis(250);

/// Default consecutive missed probes before a restart.
pub const DEFAULT_MISSES: u32 = 2;

/// Watchdog configuration.
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// Time between heartbeat probes.
    pub interval: Duration,
    /// Deadline for each probe `Ping`.
    pub probe_deadline: Duration,
    /// Consecutive missed probes that trigger a restart.
    pub misses: u32,
}

impl Default for WatchdogConfig {
    fn default() -> WatchdogConfig {
        WatchdogConfig {
            interval: DEFAULT_HEARTBEAT_INTERVAL,
            probe_deadline: DEFAULT_PROBE_DEADLINE,
            misses: DEFAULT_MISSES,
        }
    }
}

/// A running watchdog. Dropping it stops the supervisor thread.
pub struct Watchdog {
    stop: Sender<()>,
    handle: Option<std::thread::JoinHandle<()>>,
    restarts: Arc<AtomicU64>,
}

impl std::fmt::Debug for Watchdog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Watchdog")
            .field("restarts", &self.restarts())
            .finish()
    }
}

impl Watchdog {
    /// Starts supervising `client` (a clone sharing the service's channel
    /// and restart generation) under the given configuration.
    #[must_use]
    pub fn spawn(client: ServiceClient, config: WatchdogConfig) -> Watchdog {
        let (stop_tx, stop_rx) = bounded::<()>(1);
        let restarts = Arc::new(AtomicU64::new(0));
        let restarts_thread = Arc::clone(&restarts);
        let handle = std::thread::Builder::new()
            .name("cg-watchdog".into())
            .spawn(move || {
                let mut missed = 0u32;
                loop {
                    match stop_rx.recv_timeout(config.interval) {
                        // Stop requested, or the handle was dropped.
                        Ok(()) | Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                    }
                    if client.probe(config.probe_deadline) {
                        missed = 0;
                        continue;
                    }
                    missed += 1;
                    if missed < config.misses.max(1) {
                        continue;
                    }
                    missed = 0;
                    let tel = cg_telemetry::global();
                    tel.watchdog_restarts.inc();
                    tel.trace.emit_status(
                        "watchdog:restart",
                        format!(
                            "service unresponsive for {} probes of {:?}",
                            config.misses, config.probe_deadline
                        ),
                        Duration::ZERO,
                        cg_telemetry::SpanStatus::Recovered,
                    );
                    restarts_thread.fetch_add(1, Ordering::SeqCst);
                    client.restart();
                }
            })
            .expect("spawn watchdog thread");
        Watchdog {
            stop: stop_tx,
            handle: Some(handle),
            restarts,
        }
    }

    /// Starts supervising `client` with the default configuration.
    #[must_use]
    pub fn spawn_default(client: ServiceClient) -> Watchdog {
        Watchdog::spawn(client, WatchdogConfig::default())
    }

    /// How many times this watchdog has restarted its service.
    #[must_use]
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::SeqCst)
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        let _ = self.stop.send(());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{FaultKind, FaultPlan};
    use crate::service::{Request, Response, ServiceClient};
    use crate::session::{ActionOutcome, CompilationSession};
    use crate::space::{ActionSpaceInfo, Observation, ObservationSpaceInfo, RewardSpaceInfo};

    struct Quiet;
    impl CompilationSession for Quiet {
        fn action_spaces(&self) -> Vec<ActionSpaceInfo> {
            vec![ActionSpaceInfo {
                name: "q".into(),
                actions: vec!["a".into(); 4],
            }]
        }
        fn observation_spaces(&self) -> Vec<ObservationSpaceInfo> {
            vec![]
        }
        fn reward_spaces(&self) -> Vec<RewardSpaceInfo> {
            vec![]
        }
        fn init(&mut self, _b: &str, _s: usize) -> Result<(), String> {
            Ok(())
        }
        fn apply_action(&mut self, _a: usize) -> Result<ActionOutcome, String> {
            Ok(ActionOutcome {
                end_of_episode: false,
                action_space_changed: false,
                changed: true,
            })
        }
        fn observe(&mut self, _s: &str) -> Result<Observation, String> {
            Ok(Observation::Scalar(0.0))
        }
        fn fork(&self) -> Box<dyn CompilationSession> {
            Box::new(Quiet)
        }
    }

    #[test]
    fn healthy_service_is_left_alone() {
        let client = ServiceClient::spawn(
            std::sync::Arc::new(|| Box::new(Quiet)),
            Duration::from_secs(5),
        );
        let dog = Watchdog::spawn(
            client.clone(),
            WatchdogConfig {
                interval: Duration::from_millis(20),
                probe_deadline: Duration::from_millis(100),
                misses: 2,
            },
        );
        std::thread::sleep(Duration::from_millis(200));
        assert_eq!(dog.restarts(), 0);
        assert_eq!(client.restarts(), 0);
    }

    #[test]
    fn wedged_service_is_restarted_by_the_watchdog() {
        // A Wedge fault: the session stops answering without panicking or
        // erroring — invisible to everything except the heartbeat.
        let (factory, _) = FaultPlan::seeded(11)
            .schedule(1, FaultKind::Wedge)
            .wrap(std::sync::Arc::new(|| Box::new(Quiet)));
        let client = ServiceClient::spawn(factory, Duration::from_secs(30));
        let sid = match client
            .call(Request::StartSession {
                benchmark: "x".into(),
                action_space: 0,
            })
            .unwrap()
        {
            Response::SessionStarted { session_id } => session_id,
            r => panic!("{r:?}"),
        };
        client
            .call(Request::Step {
                session_id: sid,
                actions: vec![0],
                observation_spaces: vec![],
            })
            .unwrap();
        let dog = Watchdog::spawn(
            client.clone(),
            WatchdogConfig {
                interval: Duration::from_millis(30),
                probe_deadline: Duration::from_millis(60),
                misses: 2,
            },
        );
        // Wedge the worker from a helper thread: this call blocks forever on
        // the wedged service until the watchdog restarts it, at which point
        // the generation poll aborts it with ServiceFailure.
        let wedger = {
            let client = client.clone();
            std::thread::spawn(move || {
                client.call(Request::Step {
                    session_id: sid,
                    actions: vec![1],
                    observation_spaces: vec![],
                })
            })
        };
        let verdict = wedger.join().unwrap();
        assert!(
            matches!(verdict, Err(crate::CgError::ServiceFailure(_))),
            "in-flight call must abort after the watchdog restart, got {verdict:?}"
        );
        assert!(dog.restarts() >= 1, "watchdog restarted the wedged service");
        // The fresh service answers again.
        assert!(matches!(
            client.call(Request::Ping).unwrap(),
            Response::Pong
        ));
        drop(dog);
    }
}
