//! The `CompilationSession` interface (Figure 5): the four methods a
//! compiler integration implements to join the system.

use crate::space::{ActionSpaceInfo, Observation, ObservationSpaceInfo, RewardSpaceInfo};

/// The outcome of applying one action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActionOutcome {
    /// The episode reached a terminal state (most compiler tasks never do).
    pub end_of_episode: bool,
    /// The action space changed (e.g. one optimization precluding another).
    pub action_space_changed: bool,
    /// The action had any effect on the state.
    pub changed: bool,
}

/// A compiler integration: a state machine holding one compilation episode.
///
/// Mirrors the paper's interface: `getActionSpaces`/`getObservationSpaces`
/// describe the MDP; `init` starts an episode on a benchmark;
/// `applyAction` and `setObservation` (here `observe`) drive it. Everything
/// else — RPC, process isolation, timeouts, caching, the Gym API — is
/// provided by the shared runtime, so adding a compiler means implementing
/// exactly this trait (see `examples/custom_compiler.rs`).
///
/// # Fault tolerance contract
///
/// Implementations may panic, hang, or return errors; the runtime absorbs
/// all three. A panic destroys only the session (the service survives and
/// answers `Fatal`); a hang trips the client deadline and the service is
/// restarted. In both cases the environment transparently restores the
/// episode by replaying its action history on a fresh session — which is
/// sound only if the implementation is **deterministic**: the same
/// `init` + action sequence must reproduce the same state and metrics.
/// Nondeterministic compilers are detected at recovery time by the replay
/// consistency check and surfaced as `CgError::ReplayDivergence`. `Err`
/// returns from `apply_action`/`observe` are ordinary results (compile
/// failures, invalid actions): they are reported to the caller and never
/// retried. See `crate::chaos` for injecting these fault classes in tests.
pub trait CompilationSession: Send {
    /// The action spaces this compiler exposes.
    fn action_spaces(&self) -> Vec<ActionSpaceInfo>;

    /// The observation spaces this compiler exposes.
    fn observation_spaces(&self) -> Vec<ObservationSpaceInfo>;

    /// The reward spaces this compiler exposes (derived from scalar
    /// observations).
    fn reward_spaces(&self) -> Vec<RewardSpaceInfo>;

    /// Starts an episode: loads `benchmark` and selects an action space.
    ///
    /// # Errors
    /// Returns a message when the benchmark cannot be resolved or the space
    /// index is invalid.
    fn init(&mut self, benchmark: &str, action_space: usize) -> Result<(), String>;

    /// Applies one action.
    ///
    /// # Errors
    /// Returns a message for out-of-range actions or internal failures.
    fn apply_action(&mut self, action: usize) -> Result<ActionOutcome, String>;

    /// Computes one observation by space name.
    ///
    /// # Errors
    /// Returns a message for unknown spaces or failed computations (e.g.
    /// runtime observation of a non-runnable benchmark).
    fn observe(&mut self, space: &str) -> Result<Observation, String>;

    /// Creates an independent deep copy of the session state (backs the
    /// environment's `fork()`).
    fn fork(&self) -> Box<dyn CompilationSession>;
}
