//! The `CompilationSession` interface (Figure 5): the four methods a
//! compiler integration implements to join the system.

use crate::space::{ActionSpaceInfo, Observation, ObservationSpaceInfo, RewardSpaceInfo};

/// The outcome of applying one action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActionOutcome {
    /// The episode reached a terminal state (most compiler tasks never do).
    pub end_of_episode: bool,
    /// The action space changed (e.g. one optimization precluding another).
    pub action_space_changed: bool,
    /// The action had any effect on the state.
    pub changed: bool,
}

/// A compiler integration: a state machine holding one compilation episode.
///
/// Mirrors the paper's interface: `getActionSpaces`/`getObservationSpaces`
/// describe the MDP; `init` starts an episode on a benchmark;
/// `applyAction` and `setObservation` (here `observe`) drive it. Everything
/// else — RPC, process isolation, timeouts, caching, the Gym API — is
/// provided by the shared runtime, so adding a compiler means implementing
/// exactly this trait (see `examples/custom_compiler.rs`).
///
/// # Fault tolerance contract
///
/// Implementations may panic, hang, or return errors; the runtime absorbs
/// all three. A panic destroys only the session (the service survives and
/// answers `Fatal`); a hang trips the client deadline and the service is
/// restarted. In both cases the environment transparently restores the
/// episode by replaying its action history on a fresh session — which is
/// sound only if the implementation is **deterministic**: the same
/// `init` + action sequence must reproduce the same state and metrics.
/// Nondeterministic compilers are detected at recovery time by the replay
/// consistency check and surfaced as `CgError::ReplayDivergence`. `Err`
/// returns from `apply_action`/`observe` are ordinary results (compile
/// failures, invalid actions): they are reported to the caller and never
/// retried. See `crate::chaos` for injecting these fault classes in tests.
pub trait CompilationSession: Send {
    /// The action spaces this compiler exposes.
    fn action_spaces(&self) -> Vec<ActionSpaceInfo>;

    /// The observation spaces this compiler exposes.
    fn observation_spaces(&self) -> Vec<ObservationSpaceInfo>;

    /// The reward spaces this compiler exposes (derived from scalar
    /// observations).
    fn reward_spaces(&self) -> Vec<RewardSpaceInfo>;

    /// Starts an episode: loads `benchmark` and selects an action space.
    ///
    /// # Errors
    /// Returns a message when the benchmark cannot be resolved or the space
    /// index is invalid.
    fn init(&mut self, benchmark: &str, action_space: usize) -> Result<(), String>;

    /// Applies one action.
    ///
    /// # Errors
    /// Returns a message for out-of-range actions or internal failures.
    fn apply_action(&mut self, action: usize) -> Result<ActionOutcome, String>;

    /// Computes one observation by space name.
    ///
    /// # Errors
    /// Returns a message for unknown spaces or failed computations (e.g.
    /// runtime observation of a non-runnable benchmark).
    fn observe(&mut self, space: &str) -> Result<Observation, String>;

    /// Creates an independent deep copy of the session state (backs the
    /// environment's `fork()`).
    fn fork(&self) -> Box<dyn CompilationSession>;

    // --- Optional containment hooks (server-side fault tolerance) ---
    //
    // Sessions that can serialize their state participate in checkpointing
    // (O(K) recovery instead of O(episode) replay); sessions that can
    // measure their state participate in growth budgets. The defaults opt
    // out: the runtime falls back to full-history replay and skips size
    // checks, so existing integrations keep working unchanged.

    /// Serializes the episode state to a portable byte string, or `None` if
    /// this integration does not support checkpointing.
    ///
    /// The contract is round-trip fidelity: `load_state(save_state())` must
    /// restore a state that is *byte-identical under re-serialization* and
    /// behaviorally identical for all future actions and observations.
    fn save_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores the episode state previously produced by [`save_state`]
    /// on a session that has been `init`-ed on the same benchmark and
    /// action space.
    ///
    /// [`save_state`]: CompilationSession::save_state
    ///
    /// # Errors
    /// Returns a message when the snapshot cannot be decoded or this
    /// integration does not support checkpointing.
    fn load_state(&mut self, _state: &[u8]) -> Result<(), String> {
        Err("this session does not support checkpoint restore".into())
    }

    /// The current size of the episode state in integration-defined units
    /// (for LLVM sessions, the IR instruction count), used by the resource
    /// budget's growth cap. `None` opts out of size enforcement.
    fn state_size(&self) -> Option<u64> {
        None
    }

    /// Applies resource limits to the session (currently the interpreter
    /// fuel cap for runtime observations). Called once after `init` and
    /// again whenever the budget changes; the default ignores it.
    fn apply_budget(&mut self, _budget: &crate::budget::ResourceBudget) {}
}
