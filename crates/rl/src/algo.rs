//! The reinforcement learning algorithms of the paper's Tables VI/VII and
//! Figure 9: PPO, A2C, an ApeX-style DQN with prioritized replay, and an
//! IMPALA-style off-policy actor–critic with truncated importance weights.
//!
//! All train over any [`cg_core::wrappers::Env`], so the same code runs on
//! the raw environment, the Autophase-subset wrapper stack, or any custom
//! composition.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cg_core::space::Observation;
use cg_core::wrappers::Env;

use crate::nn::{sample_categorical, softmax, Mlp};

/// Converts an integer-vector observation into normalized features
/// (`log1p` squashing keeps counts in a trainable range).
pub fn featurize(obs: &Observation) -> Vec<f32> {
    match obs {
        Observation::IntVector(v) => v.iter().map(|&x| ((x.max(0)) as f32).ln_1p()).collect(),
        Observation::FloatVector(v) => v.clone(),
        Observation::Scalar(x) => vec![*x as f32],
        _ => Vec::new(),
    }
}

/// A trained stochastic policy.
#[derive(Debug, Clone)]
pub struct Policy {
    net: Mlp,
}

impl Policy {
    /// Action distribution for features.
    pub fn probs(&self, features: &[f32]) -> Vec<f32> {
        softmax(&self.net.forward(features))
    }

    /// Greedy action.
    pub fn act_greedy(&self, features: &[f32]) -> usize {
        let p = self.probs(features);
        p.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Sampled action.
    pub fn act_sample(&self, features: &[f32], rng: &mut StdRng) -> usize {
        let p = self.probs(features);
        sample_categorical(&p, rng.gen::<f32>())
    }
}

/// Training configuration shared by the algorithms.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Episodes to train for.
    pub episodes: usize,
    /// Steps per episode (the paper fixes 45).
    pub steps: usize,
    /// Hidden layer width.
    pub hidden: usize,
    /// Learning rate.
    pub lr: f32,
    /// Discount factor.
    pub gamma: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> TrainConfig {
        TrainConfig {
            episodes: 200,
            steps: 45,
            hidden: 64,
            lr: 3e-3,
            gamma: 0.99,
            seed: 0,
        }
    }
}

struct Transition {
    features: Vec<f32>,
    action: usize,
    reward: f64,
    logp: f32,
}

fn rollout(
    env: &mut dyn Env,
    policy: &Policy,
    steps: usize,
    rng: &mut StdRng,
) -> Result<Vec<Transition>, cg_core::CgError> {
    let mut obs = featurize(&env.reset()?);
    let mut traj = Vec::with_capacity(steps);
    for _ in 0..steps {
        let probs = policy.probs(&obs);
        let a = sample_categorical(&probs, rng.gen::<f32>());
        let step = env.step(a)?;
        traj.push(Transition {
            features: obs.clone(),
            action: a,
            reward: step.reward,
            logp: probs[a].max(1e-8).ln(),
        });
        obs = featurize(&step.observation);
        if step.done {
            break;
        }
    }
    Ok(traj)
}

fn returns(traj: &[Transition], gamma: f32) -> Vec<f32> {
    let mut ret = vec![0.0f32; traj.len()];
    let mut acc = 0.0f32;
    for i in (0..traj.len()).rev() {
        acc = traj[i].reward as f32 + gamma * acc;
        ret[i] = acc;
    }
    ret
}

/// Trains PPO (clipped surrogate objective, value baseline, multiple epochs
/// per batch). Returns the policy and the per-episode mean training rewards.
///
/// # Errors
/// Propagates environment failures.
pub fn train_ppo(
    env: &mut dyn Env,
    feat_dim: usize,
    cfg: &TrainConfig,
) -> Result<(Policy, Vec<f64>), cg_core::CgError> {
    let n_actions = env.num_actions();
    let mut policy = Policy {
        net: Mlp::new(&[feat_dim, cfg.hidden, n_actions], cfg.seed),
    };
    let mut value = Mlp::new(&[feat_dim, cfg.hidden, 1], cfg.seed ^ 0xDEAD);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut curve = Vec::with_capacity(cfg.episodes);
    for _ep in 0..cfg.episodes {
        let traj = rollout(env, &policy, cfg.steps, &mut rng)?;
        if traj.is_empty() {
            curve.push(0.0);
            continue;
        }
        curve.push(traj.iter().map(|t| t.reward).sum::<f64>());
        let rets = returns(&traj, cfg.gamma);
        // Advantages against the value baseline.
        let advs: Vec<f32> = traj
            .iter()
            .zip(&rets)
            .map(|(t, r)| r - value.forward(&t.features)[0])
            .collect();
        for _epoch in 0..3 {
            for (i, t) in traj.iter().enumerate() {
                let (logits, acts) = policy.net.forward_full(&t.features);
                let probs = softmax(&logits);
                let logp_new = probs[t.action].max(1e-8).ln();
                let ratio = (logp_new - t.logp).exp();
                let adv = advs[i];
                // d(-min(r·A, clip(r)·A))/dlogp_new.
                let active = if adv >= 0.0 {
                    ratio <= 1.2
                } else {
                    ratio >= 0.8
                };
                let coeff = if active { -adv * ratio } else { 0.0 };
                if coeff != 0.0 {
                    let mut dlogits = probs.clone();
                    for (j, d) in dlogits.iter_mut().enumerate() {
                        let onehot = if j == t.action { 1.0 } else { 0.0 };
                        *d = coeff * (onehot - *d);
                    }
                    policy.net.backward(&acts, &dlogits);
                }
                // Value regression toward the empirical return.
                let (v, vacts) = value.forward_full(&t.features);
                value.backward(&vacts, &[2.0 * (v[0] - rets[i])]);
            }
            policy.net.step(cfg.lr);
            value.step(cfg.lr);
        }
    }
    Ok((policy, curve))
}

/// Trains A2C: single-epoch on-policy policy gradient with a value baseline.
///
/// # Errors
/// Propagates environment failures.
pub fn train_a2c(
    env: &mut dyn Env,
    feat_dim: usize,
    cfg: &TrainConfig,
) -> Result<(Policy, Vec<f64>), cg_core::CgError> {
    let n_actions = env.num_actions();
    let mut policy = Policy {
        net: Mlp::new(&[feat_dim, cfg.hidden, n_actions], cfg.seed),
    };
    let mut value = Mlp::new(&[feat_dim, cfg.hidden, 1], cfg.seed ^ 0xBEEF);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut curve = Vec::new();
    for _ep in 0..cfg.episodes {
        let traj = rollout(env, &policy, cfg.steps, &mut rng)?;
        if traj.is_empty() {
            curve.push(0.0);
            continue;
        }
        curve.push(traj.iter().map(|t| t.reward).sum::<f64>());
        let rets = returns(&traj, cfg.gamma);
        for (i, t) in traj.iter().enumerate() {
            let (logits, acts) = policy.net.forward_full(&t.features);
            let probs = softmax(&logits);
            let adv = rets[i] - value.forward(&t.features)[0];
            let mut dlogits = probs.clone();
            for (j, d) in dlogits.iter_mut().enumerate() {
                let onehot = if j == t.action { 1.0 } else { 0.0 };
                *d = -adv * (onehot - *d);
            }
            policy.net.backward(&acts, &dlogits);
            let (v, vacts) = value.forward_full(&t.features);
            value.backward(&vacts, &[2.0 * (v[0] - rets[i])]);
        }
        policy.net.step(cfg.lr);
        value.step(cfg.lr);
    }
    Ok((policy, curve))
}

/// Trains an ApeX-style DQN: ε-greedy behaviour, prioritized replay
/// (proportional to |TD error|), periodic target-network sync.
///
/// # Errors
/// Propagates environment failures.
pub fn train_dqn(
    env: &mut dyn Env,
    feat_dim: usize,
    cfg: &TrainConfig,
) -> Result<(Policy, Vec<f64>), cg_core::CgError> {
    let n_actions = env.num_actions();
    let mut q = Mlp::new(&[feat_dim, cfg.hidden, n_actions], cfg.seed);
    let mut target = q.clone();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Replay: (s, a, r, s', priority).
    type Transition = (Vec<f32>, usize, f32, Vec<f32>, f32);
    let mut replay: Vec<Transition> = Vec::new();
    let mut curve = Vec::new();
    for ep in 0..cfg.episodes {
        let eps = (1.0 - ep as f64 / cfg.episodes.max(1) as f64).max(0.05) as f32;
        let mut obs = featurize(&env.reset()?);
        let mut total = 0.0;
        for _ in 0..cfg.steps {
            let a = if rng.gen::<f32>() < eps {
                rng.gen_range(0..n_actions)
            } else {
                let qs = q.forward(&obs);
                qs.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            };
            let step = env.step(a)?;
            total += step.reward;
            let next = featurize(&step.observation);
            replay.push((obs, a, step.reward as f32, next.clone(), 1.0));
            if replay.len() > 20_000 {
                replay.remove(0);
            }
            obs = next;
            if step.done {
                break;
            }
        }
        curve.push(total);
        // Learner: prioritized minibatches.
        for _ in 0..4 {
            let batch = 32.min(replay.len());
            if batch == 0 {
                break;
            }
            let total_p: f32 = replay.iter().map(|e| e.4).sum();
            for _ in 0..batch {
                let mut pick = rng.gen::<f32>() * total_p;
                let mut idx = 0;
                for (i, e) in replay.iter().enumerate() {
                    pick -= e.4;
                    if pick <= 0.0 {
                        idx = i;
                        break;
                    }
                }
                let (s, a, r, s2, _) = replay[idx].clone();
                let max_next = target
                    .forward(&s2)
                    .into_iter()
                    .fold(f32::NEG_INFINITY, f32::max);
                let tgt = r + cfg.gamma * max_next;
                let (qs, acts) = q.forward_full(&s);
                let td = qs[a] - tgt;
                let mut dq = vec![0.0; n_actions];
                dq[a] = 2.0 * td;
                q.backward(&acts, &dq);
                replay[idx].4 = td.abs() + 1e-3;
            }
            q.step(cfg.lr);
        }
        if ep % 10 == 9 {
            target = q.clone();
        }
    }
    Ok((Policy { net: q }, curve))
}

/// Trains an IMPALA-style off-policy actor–critic: trajectories are
/// generated by a stale behaviour-policy snapshot and corrected with
/// truncated importance weights (ρ̄ = 1), as in V-trace.
///
/// # Errors
/// Propagates environment failures.
pub fn train_impala(
    env: &mut dyn Env,
    feat_dim: usize,
    cfg: &TrainConfig,
) -> Result<(Policy, Vec<f64>), cg_core::CgError> {
    let n_actions = env.num_actions();
    let mut learner = Policy {
        net: Mlp::new(&[feat_dim, cfg.hidden, n_actions], cfg.seed),
    };
    let mut actor = learner.clone(); // stale behaviour snapshot
    let mut value = Mlp::new(&[feat_dim, cfg.hidden, 1], cfg.seed ^ 0xF00D);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut curve = Vec::new();
    for ep in 0..cfg.episodes {
        // The actor lags the learner (refreshed every 5 episodes).
        if ep % 5 == 0 {
            actor = learner.clone();
        }
        let traj = rollout(env, &actor, cfg.steps, &mut rng)?;
        if traj.is_empty() {
            curve.push(0.0);
            continue;
        }
        curve.push(traj.iter().map(|t| t.reward).sum::<f64>());
        let rets = returns(&traj, cfg.gamma);
        for (i, t) in traj.iter().enumerate() {
            let (logits, acts) = learner.net.forward_full(&t.features);
            let probs = softmax(&logits);
            let logp_pi = probs[t.action].max(1e-8).ln();
            // Truncated IS weight ρ = min(1, π/μ).
            let rho = (logp_pi - t.logp).exp().min(1.0);
            let adv = rets[i] - value.forward(&t.features)[0];
            let mut dlogits = probs.clone();
            for (j, d) in dlogits.iter_mut().enumerate() {
                let onehot = if j == t.action { 1.0 } else { 0.0 };
                *d = -rho * adv * (onehot - *d);
            }
            learner.net.backward(&acts, &dlogits);
            let (v, vacts) = value.forward_full(&t.features);
            value.backward(&vacts, &[2.0 * rho * (v[0] - rets[i])]);
        }
        learner.net.step(cfg.lr);
        value.step(cfg.lr);
    }
    Ok((learner, curve))
}

/// The four algorithms of Table VI, by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Advantage actor–critic.
    A2c,
    /// ApeX-style DQN with prioritized replay.
    Apex,
    /// IMPALA-style off-policy actor–critic.
    Impala,
    /// Proximal policy optimization.
    Ppo,
}

impl Algo {
    /// Trains the selected algorithm.
    ///
    /// # Errors
    /// Propagates environment failures.
    pub fn train(
        self,
        env: &mut dyn Env,
        feat_dim: usize,
        cfg: &TrainConfig,
    ) -> Result<(Policy, Vec<f64>), cg_core::CgError> {
        match self {
            Algo::A2c => train_a2c(env, feat_dim, cfg),
            Algo::Apex => train_dqn(env, feat_dim, cfg),
            Algo::Impala => train_impala(env, feat_dim, cfg),
            Algo::Ppo => train_ppo(env, feat_dim, cfg),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Algo::A2c => "A2C",
            Algo::Apex => "APEX",
            Algo::Impala => "IMPALA",
            Algo::Ppo => "PPO",
        }
    }
}

/// Geometric mean of positive values.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}
