//! A small dense neural-network library with manual backpropagation and
//! Adam — enough to train the policy/value/Q networks of the RL algorithms
//! and the readout of the GGNN cost model, with zero dependencies.

/// One fully connected layer with Adam state.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Input width.
    pub fan_in: usize,
    /// Output width.
    pub fan_out: usize,
    w: Vec<f32>,
    b: Vec<f32>,
    gw: Vec<f32>,
    gb: Vec<f32>,
    mw: Vec<f32>,
    vw: Vec<f32>,
    mb: Vec<f32>,
    vb: Vec<f32>,
}

/// A deterministic xorshift float stream for weight init.
fn init_stream(seed: u64) -> impl FnMut() -> f32 {
    let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
    move || {
        z ^= z << 13;
        z ^= z >> 7;
        z ^= z << 17;
        ((z >> 11) as f64 / (1u64 << 53) as f64) as f32 - 0.5
    }
}

impl Linear {
    /// Creates a layer with scaled uniform init.
    pub fn new(fan_in: usize, fan_out: usize, seed: u64) -> Linear {
        let mut rnd = init_stream(seed);
        let scale = (2.0 / fan_in as f32).sqrt();
        Linear {
            fan_in,
            fan_out,
            w: (0..fan_in * fan_out).map(|_| rnd() * 2.0 * scale).collect(),
            b: vec![0.0; fan_out],
            gw: vec![0.0; fan_in * fan_out],
            gb: vec![0.0; fan_out],
            mw: vec![0.0; fan_in * fan_out],
            vw: vec![0.0; fan_in * fan_out],
            mb: vec![0.0; fan_out],
            vb: vec![0.0; fan_out],
        }
    }

    fn forward(&self, x: &[f32]) -> Vec<f32> {
        let mut y = self.b.clone();
        for (o, yo) in y.iter_mut().enumerate() {
            let row = &self.w[o * self.fan_in..(o + 1) * self.fan_in];
            let mut acc = 0.0;
            for (wi, xi) in row.iter().zip(x) {
                acc += wi * xi;
            }
            *yo += acc;
        }
        y
    }

    /// Accumulates grads for dL/dy, returning dL/dx.
    fn backward(&mut self, x: &[f32], dy: &[f32]) -> Vec<f32> {
        let mut dx = vec![0.0; self.fan_in];
        for (o, &g) in dy.iter().enumerate().take(self.fan_out) {
            self.gb[o] += g;
            let row = o * self.fan_in;
            for i in 0..self.fan_in {
                self.gw[row + i] += g * x[i];
                dx[i] += g * self.w[row + i];
            }
        }
        dx
    }

    fn adam(&mut self, lr: f32, t: u64) {
        let (b1, b2, eps) = (0.9f32, 0.999f32, 1e-8f32);
        let bc1 = 1.0 - b1.powi(t as i32);
        let bc2 = 1.0 - b2.powi(t as i32);
        for i in 0..self.w.len() {
            self.mw[i] = b1 * self.mw[i] + (1.0 - b1) * self.gw[i];
            self.vw[i] = b2 * self.vw[i] + (1.0 - b2) * self.gw[i] * self.gw[i];
            self.w[i] -= lr * (self.mw[i] / bc1) / ((self.vw[i] / bc2).sqrt() + eps);
            self.gw[i] = 0.0;
        }
        for i in 0..self.b.len() {
            self.mb[i] = b1 * self.mb[i] + (1.0 - b1) * self.gb[i];
            self.vb[i] = b2 * self.vb[i] + (1.0 - b2) * self.gb[i] * self.gb[i];
            self.b[i] -= lr * (self.mb[i] / bc1) / ((self.vb[i] / bc2).sqrt() + eps);
            self.gb[i] = 0.0;
        }
    }
}

/// A multi-layer perceptron with tanh hidden activations and a linear head.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    t: u64,
}

impl Mlp {
    /// Builds an MLP with the given layer widths (at least in/out).
    pub fn new(sizes: &[usize], seed: u64) -> Mlp {
        assert!(sizes.len() >= 2);
        let layers = sizes
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(w[0], w[1], seed.wrapping_add(i as u64 * 7919)))
            .collect();
        Mlp { layers, t: 0 }
    }

    /// Forward pass, returning (output, per-layer inputs for backward).
    pub fn forward_full(&self, x: &[f32]) -> (Vec<f32>, Vec<Vec<f32>>) {
        let mut acts = vec![x.to_vec()];
        let mut cur = x.to_vec();
        let n = self.layers.len();
        for (i, l) in self.layers.iter().enumerate() {
            let mut y = l.forward(&cur);
            if i + 1 < n {
                for v in &mut y {
                    *v = v.tanh();
                }
            }
            acts.push(y.clone());
            cur = y;
        }
        (cur, acts)
    }

    /// Forward pass (output only).
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        self.forward_full(x).0
    }

    /// Backward pass for one sample: `acts` from [`Mlp::forward_full`],
    /// `dout` = dL/d(output). Gradients accumulate until [`Mlp::step`].
    pub fn backward(&mut self, acts: &[Vec<f32>], dout: &[f32]) {
        let n = self.layers.len();
        let mut dy = dout.to_vec();
        for i in (0..n).rev() {
            // Undo the tanh of hidden layers: dy *= 1 - y².
            if i + 1 < n {
                for (d, y) in dy.iter_mut().zip(&acts[i + 1]) {
                    *d *= 1.0 - y * y;
                }
            }
            dy = self.layers[i].backward(&acts[i], &dy);
        }
    }

    /// Applies accumulated gradients with Adam and clears them.
    pub fn step(&mut self, lr: f32) {
        self.t += 1;
        for l in &mut self.layers {
            l.adam(lr, self.t);
        }
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("nonempty").fan_out
    }
}

/// Numerically stable softmax.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let m = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|l| (l - m).exp()).collect();
    let z: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / z.max(1e-12)).collect()
}

/// Samples an index from a probability vector.
pub fn sample_categorical(probs: &[f32], u: f32) -> usize {
    let mut acc = 0.0;
    for (i, p) in probs.iter().enumerate() {
        acc += p;
        if u < acc {
            return i;
        }
    }
    probs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_learns_xor() {
        let data = [
            ([0.0f32, 0.0], 0.0f32),
            ([0.0, 1.0], 1.0),
            ([1.0, 0.0], 1.0),
            ([1.0, 1.0], 0.0),
        ];
        let mut net = Mlp::new(&[2, 16, 1], 3);
        for _ in 0..800 {
            for (x, y) in &data {
                let (out, acts) = net.forward_full(x);
                let d = 2.0 * (out[0] - y);
                net.backward(&acts, &[d]);
            }
            net.step(0.01);
        }
        for (x, y) in &data {
            let out = net.forward(x)[0];
            assert!((out - y).abs() < 0.2, "xor({x:?}) = {out}, want {y}");
        }
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn sampling_respects_distribution() {
        let p = vec![0.0, 1.0, 0.0];
        for u in [0.0, 0.5, 0.99] {
            assert_eq!(sample_categorical(&p, u), 1);
        }
    }
}
