//! # cg-rl: reinforcement learning on CompilerGym environments
//!
//! From-scratch implementations of the algorithms the paper trains through
//! RLlib — [`algo::train_ppo`], [`algo::train_a2c`], an ApeX-style
//! [`algo::train_dqn`] and an IMPALA-style [`algo::train_impala`] — plus
//! the [`nn`] micro-framework they share and the [`ggnn`] cost model of
//! §VII-F. Tabular Q-learning and a minimal actor–critic live in the
//! `examples/` directory, mirroring the paper's documentation samples.

pub mod algo;
pub mod ggnn;
pub mod nn;

pub use algo::{featurize, geomean, Algo, Policy, TrainConfig};
