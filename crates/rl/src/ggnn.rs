//! The gated graph network cost model of §VII-F / Figure 8: predicting a
//! program's instruction count from its ProGraML graph.
//!
//! Architecture: hash-embedded node features by opcode, two rounds of gated
//! message passing with fixed (reservoir) propagation weights, mean-pool
//! readout, and a trained linear regression head. Training the readout by
//! SGD over the state-transition dataset yields the convergence curve of
//! Figure 8; the naive mean predictor is the paper's baseline.

use cg_llvm::observation::{EdgeKind, ProgramGraph};

/// Hidden width of node states.
pub const HIDDEN: usize = 32;

fn mix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn hash_vec(seed: u64, n: usize, scale: f32) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let z = mix(seed.wrapping_add(i as u64));
            ((z >> 11) as f64 / (1u64 << 53) as f64 - 0.5) as f32 * 2.0 * scale
        })
        .collect()
}

/// Encodes a graph into a fixed-size feature vector by two rounds of gated
/// message passing (deterministic; no learned propagation parameters).
pub fn encode(graph: &ProgramGraph) -> Vec<f32> {
    let n = graph.node_count();
    if n == 0 {
        return vec![0.0; HIDDEN];
    }
    // Initial node states: opcode/kind embeddings.
    let mut h: Vec<Vec<f32>> = graph
        .nodes
        .iter()
        .map(|node| {
            hash_vec(
                0x1000 + node.opcode as u64 * 31 + node.kind as u64,
                HIDDEN,
                0.5,
            )
        })
        .collect();
    // Fixed propagation matrices (per edge kind, per direction) as hash
    // vectors applied elementwise-rotated — cheap but direction- and
    // type-sensitive.
    let w_edge: Vec<Vec<f32>> = (0..6).map(|k| hash_vec(0x2000 + k, HIDDEN, 0.8)).collect();
    for _round in 0..2 {
        let mut msg = vec![vec![0.0f32; HIDDEN]; n];
        let mut deg = vec![1.0f32; n];
        for (s, t, kind) in &graph.edges {
            let (s, t) = (*s as usize, *t as usize);
            let k = *kind as usize;
            // Forward message.
            for i in 0..HIDDEN {
                msg[t][i] += h[s][(i + 1) % HIDDEN] * w_edge[k][i];
            }
            deg[t] += 1.0;
            // Backward message.
            for i in 0..HIDDEN {
                msg[s][i] += h[t][(i + 3) % HIDDEN] * w_edge[3 + k][i];
            }
            deg[s] += 1.0;
            let _ = EdgeKind::Control;
        }
        for v in 0..n {
            for i in 0..HIDDEN {
                // Gated update: z ∈ (0,1) from the message magnitude.
                let z = 1.0 / (1.0 + (-msg[v][i] / deg[v]).exp());
                let cand = (h[v][i] + msg[v][i] / deg[v]).tanh();
                h[v][i] = (1.0 - z) * h[v][i] + z * cand;
            }
        }
    }
    // Mean-pool, plus explicit size features in the last slots (node count,
    // linearly and log-scaled; instruction-node count) — the readout learns
    // how to combine structure and scale, as the GGNN's sum-readout would.
    let mut pooled = vec![0.0f32; HIDDEN];
    for hv in &h {
        for i in 0..HIDDEN {
            pooled[i] += hv[i];
        }
    }
    for p in pooled.iter_mut() {
        *p /= n as f32;
    }
    let inst_nodes = graph
        .nodes
        .iter()
        .filter(|x| matches!(x.kind, cg_llvm::observation::NodeKind::Instruction))
        .count();
    pooled[HIDDEN - 1] = (n as f32).ln() / 10.0;
    pooled[HIDDEN - 2] = n as f32 / 5000.0;
    pooled[HIDDEN - 3] = inst_nodes as f32 / 2000.0;
    pooled
}

/// The trainable regression head over encoded graphs.
#[derive(Debug, Clone)]
pub struct CostModel {
    w: Vec<f32>,
    b: f32,
    /// Output normalization (targets are divided by this during training).
    pub target_scale: f32,
}

impl CostModel {
    /// A zero-initialized model.
    pub fn new(target_scale: f32) -> CostModel {
        CostModel {
            w: vec![0.0; HIDDEN],
            b: 0.0,
            target_scale: target_scale.max(1.0),
        }
    }

    /// Predicts the instruction count for an encoded graph.
    pub fn predict(&self, features: &[f32]) -> f32 {
        let mut y = self.b;
        for (w, x) in self.w.iter().zip(features) {
            y += w * x;
        }
        y * self.target_scale
    }

    /// One SGD epoch of MSE regression over `(features, target)` pairs.
    /// Returns the epoch's mean squared (normalized) error.
    pub fn train_epoch(&mut self, data: &[(Vec<f32>, f32)], lr: f32) -> f32 {
        let mut total = 0.0f32;
        for (x, target) in data {
            let t = target / self.target_scale;
            let mut y = self.b;
            for (w, xi) in self.w.iter().zip(x) {
                y += w * xi;
            }
            let err = y - t;
            total += err * err;
            let g = 2.0 * err * lr;
            for (w, xi) in self.w.iter_mut().zip(x) {
                *w -= g * xi;
            }
            self.b -= g;
        }
        total / data.len().max(1) as f32
    }

    /// Mean relative error `|pred - target| / target` over a validation set
    /// (the paper's Figure 8 metric; their GGNN reaches 0.025, naive mean
    /// scores 1.393).
    pub fn relative_error(&self, data: &[(Vec<f32>, f32)]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        data.iter()
            .map(|(x, t)| ((self.predict(x) - t).abs() / t.max(1.0)) as f64)
            .sum::<f64>()
            / data.len() as f64
    }
}

/// The naive baseline: always predict the training-set mean.
pub fn naive_mean_relative_error(train: &[(Vec<f32>, f32)], val: &[(Vec<f32>, f32)]) -> f64 {
    let mean: f32 = train.iter().map(|(_, t)| *t).sum::<f32>() / train.len().max(1) as f32;
    val.iter()
        .map(|(_, t)| ((mean - t).abs() / t.max(1.0)) as f64)
        .sum::<f64>()
        / val.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_llvm::observation::programl;

    #[test]
    fn encoding_is_deterministic_and_sized() {
        let m = cg_datasets::benchmark("cbench-v1/crc32").unwrap();
        let g = programl(&m);
        let a = encode(&g);
        let b = encode(&g);
        assert_eq!(a, b);
        assert_eq!(a.len(), HIDDEN);
    }

    #[test]
    fn cost_model_learns_instruction_count() {
        // Train on a small corpus of benchmarks at several optimization
        // states; validate on held-out ones.
        let mut data: Vec<(Vec<f32>, f32)> = Vec::new();
        for name in [
            "crc32", "sha", "bitcount", "qsort", "gsm", "tiff2bw", "dijkstra",
        ] {
            let mut m = cg_datasets::benchmark(&format!("cbench-v1/{name}")).unwrap();
            data.push((encode(&programl(&m)), m.inst_count() as f32));
            cg_llvm::pipeline::run_oz(&mut m);
            data.push((encode(&programl(&m)), m.inst_count() as f32));
        }
        let (val, train) = data.split_at(4);
        let scale = train.iter().map(|(_, t)| *t).fold(0.0f32, f32::max);
        let mut model = CostModel::new(scale);
        let before = model.relative_error(val);
        for _ in 0..600 {
            model.train_epoch(train, 0.01);
        }
        let after = model.relative_error(val);
        let naive = naive_mean_relative_error(train, val);
        assert!(
            after < before,
            "training reduced error: {before} -> {after}"
        );
        assert!(after < naive, "beats naive mean: {after} vs {naive}");
        assert!(after < 0.5, "converged to a useful model: {after}");
    }
}
