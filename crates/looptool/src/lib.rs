//! # cg-looptool: the simulated `loop_tool` CUDA environment
//!
//! Reproduces the substrate behind CompilerGym's third environment (§V-C):
//! a minimalist dense-linear-algebra loop tree over point-wise operations,
//! the cursor-based discrete action space, and a GPU performance model that
//! stands in for benchmarking generated CUDA on a GP100.
//!
//! The performance model is calibrated to the paper's observations: the
//! point-wise `add` workload is bandwidth-bound (two 4-byte reads + one
//! write per element, ≈750 GB/s peak), throughput ramps with occupancy and
//! **drops near 100k threads** when the grid exceeds the resident-thread
//! capacity by a fraction of a wave (Figure 7), and measurements carry
//! benchmarking noise (the reward is "platform dependent and
//! non-deterministic").
//!
//! # Example
//!
//! ```
//! use cg_looptool::{Action, LoopNest};
//!
//! let mut nest = LoopNest::pointwise_add(1 << 20);
//! nest.apply(Action::ToggleThread);      // thread the outer loop
//! let gflops = nest.benchmark(0) / 1e9;  // seeded measurement
//! assert!(gflops > 0.0);
//! ```

use serde::{Deserialize, Serialize};

/// One loop of the nest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopDim {
    /// Iteration count of this loop. The outermost loop's size is derived
    /// (`ceil(n / product(inner))`) so the nest always covers the problem;
    /// the remainder becomes tail logic, handled automatically as in
    /// `loop_tool`.
    pub size: u64,
    /// Whether iterations of this loop run across CUDA threads.
    pub threaded: bool,
}

/// Cursor modes of the action space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mode {
    /// `up`/`down` move the cursor between loops.
    Move,
    /// `up`/`down` change the size of the loop under the cursor.
    Modify,
}

/// The discrete actions (§V-C). `Split` belongs to the extended action
/// space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// Swap between [`Mode::Move`] and [`Mode::Modify`].
    ToggleMode,
    /// Move the cursor outward, or grow the current loop by one.
    Up,
    /// Move the cursor inward, or shrink the current loop by one.
    Down,
    /// Toggle CUDA threading of the loop under the cursor.
    ToggleThread,
    /// Split the loop under the cursor, creating a size-1 inner loop
    /// (extended action space only).
    Split,
}

impl Action {
    /// The basic action space (no `Split`).
    pub fn basic() -> &'static [Action] {
        &[
            Action::ToggleMode,
            Action::Up,
            Action::Down,
            Action::ToggleThread,
        ]
    }

    /// The extended action space (with `Split`).
    pub fn extended() -> &'static [Action] {
        &[
            Action::ToggleMode,
            Action::Up,
            Action::Down,
            Action::ToggleThread,
            Action::Split,
        ]
    }
}

/// A point-wise loop nest under optimization: the program
/// `%2[i] = add(%0[i], %1[i])` for `i` in `0..n`, with a configurable loop
/// hierarchy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopNest {
    /// Problem size (elements).
    pub n: u64,
    /// The loop hierarchy, outermost first. `loops[0].size` is derived.
    pub loops: Vec<LoopDim>,
    /// Cursor position (index into `loops`).
    pub cursor: usize,
    /// Current cursor mode.
    pub mode: Mode,
    gpu: GpuModel,
}

impl LoopNest {
    /// The paper's demonstration workload: point-wise addition over `n`
    /// elements, a single outer loop, nothing threaded.
    pub fn pointwise_add(n: u64) -> LoopNest {
        LoopNest {
            n,
            loops: vec![LoopDim {
                size: n,
                threaded: false,
            }],
            cursor: 0,
            mode: Mode::Move,
            gpu: GpuModel::gp100(),
        }
    }

    /// Recomputes the derived outer size from the inner sizes.
    pub fn normalize(&mut self) {
        let inner: u64 = self.loops.iter().skip(1).map(|l| l.size.max(1)).product();
        self.loops[0].size = self.n.div_ceil(inner.max(1));
    }

    /// Applies one action to the state.
    pub fn apply(&mut self, action: Action) {
        match (action, self.mode) {
            (Action::ToggleMode, _) => {
                self.mode = match self.mode {
                    Mode::Move => Mode::Modify,
                    Mode::Modify => Mode::Move,
                };
            }
            (Action::Up, Mode::Move) => {
                self.cursor = self.cursor.saturating_sub(1);
            }
            (Action::Down, Mode::Move) => {
                self.cursor = (self.cursor + 1).min(self.loops.len() - 1);
            }
            (Action::Up, Mode::Modify) => {
                if self.cursor > 0 {
                    self.loops[self.cursor].size += 1;
                    self.normalize();
                }
            }
            (Action::Down, Mode::Modify) => {
                if self.cursor > 0 && self.loops[self.cursor].size > 1 {
                    self.loops[self.cursor].size -= 1;
                    self.normalize();
                }
            }
            (Action::ToggleThread, _) => {
                let t = self.loops[self.cursor].threaded;
                self.loops[self.cursor].threaded = !t;
            }
            (Action::Split, _) => {
                self.loops.insert(
                    self.cursor + 1,
                    LoopDim {
                        size: 1,
                        threaded: false,
                    },
                );
                self.normalize();
            }
        }
    }

    /// Total CUDA threads launched: the product of threaded loop sizes
    /// ("may span multiple warps or even multiple streaming
    /// multiprocessors").
    pub fn threads(&self) -> u64 {
        let t: u64 = self
            .loops
            .iter()
            .filter(|l| l.threaded)
            .map(|l| l.size.max(1))
            .product();
        t.max(1)
    }

    /// The textual loop-tree observation (Listing 4's format).
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (i, l) in self.loops.iter().enumerate() {
            let indent = " ".repeat(i);
            let annot = if l.threaded { " [thread]" } else { "" };
            let _ = writeln!(
                s,
                "{indent}for a{} in {} : L{}{annot}",
                "'".repeat(i),
                l.size,
                i
            );
        }
        let indent = " ".repeat(self.loops.len());
        let _ = writeln!(s, "{indent}%0[a] <- read()");
        let _ = writeln!(s, "{indent}%1[a] <- read()");
        let _ = writeln!(s, "{indent}%2[a] <- add(%0, %1)");
        let _ = writeln!(s, "{indent}%3[a] <- write(%2)");
        s
    }

    /// The "action state" observation: `(cursor, mode, #loops)`.
    pub fn action_state(&self) -> (usize, Mode, usize) {
        (self.cursor, self.mode, self.loops.len())
    }

    /// Benchmarks the configuration on the simulated GPU, returning achieved
    /// FLOPs. `seed` varies the measurement noise — repeated measurements
    /// with different seeds differ, as on real hardware.
    pub fn benchmark(&self, seed: u64) -> f64 {
        self.gpu.flops(self, seed)
    }

    /// The deterministic FLOPs estimate (no measurement noise).
    pub fn flops_deterministic(&self) -> f64 {
        self.gpu.flops_raw(self)
    }

    /// The GPU model in use.
    pub fn gpu(&self) -> &GpuModel {
        &self.gpu
    }
}

/// An analytic GPU throughput model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuModel {
    /// Streaming multiprocessors.
    pub sm_count: u64,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u64,
    /// Peak DRAM bandwidth (bytes/second).
    pub bandwidth: f64,
    /// Peak FP32 throughput (FLOPs/second).
    pub peak_flops: f64,
    /// Kernel launch overhead (seconds).
    pub launch_overhead: f64,
    /// Per-loop-iteration control overhead (seconds) for unthreaded loops.
    pub loop_overhead: f64,
}

impl GpuModel {
    /// Parameters loosely matching a Tesla GP100: 56 SMs × 2048 resident
    /// threads, ~750 GB/s HBM2, ~10 TFLOPs FP32.
    pub fn gp100() -> GpuModel {
        GpuModel {
            sm_count: 56,
            max_threads_per_sm: 2048,
            bandwidth: 750e9,
            peak_flops: 10e12,
            launch_overhead: 4e-6,
            loop_overhead: 1.2e-9,
        }
    }

    /// Resident-thread capacity (the ~114k threshold behind Figure 7's dip).
    pub fn resident_capacity(&self) -> u64 {
        self.sm_count * self.max_threads_per_sm
    }

    /// Deterministic FLOPs for a nest configuration.
    pub fn flops_raw(&self, nest: &LoopNest) -> f64 {
        let n = nest.n as f64;
        let threads = nest.threads();
        let t = threads as f64;
        let capacity = self.resident_capacity() as f64;

        // Occupancy ramp: throughput scales with how much of the machine the
        // grid covers, saturating at full residency. Few threads = most SMs
        // idle.
        let occupancy = (t / capacity).min(1.0);
        // Sub-warp inefficiency: fewer than 32 threads per SM wastes lanes.
        let warp_eff = (t / (self.sm_count as f64 * 32.0)).min(1.0);
        let eff_bandwidth = self.bandwidth * occupancy.sqrt().min(1.0) * warp_eff.max(0.02);

        // Wave quantization: a grid slightly over the resident capacity runs
        // a partial second wave — the throughput dip "near 100k threads" in
        // Figure 7.
        let waves = (t / capacity).ceil().max(1.0);
        let wave_eff = (t / capacity) / waves;
        let quantization = if t > capacity { wave_eff.max(0.5) } else { 1.0 };

        // Memory time: 12 bytes per element (two 4-byte reads, one write).
        let bytes = 12.0 * n;
        let mem_time = bytes / (eff_bandwidth * quantization);
        // Compute time: 1 FLOP per element.
        let compute_time = n / self.peak_flops;
        // Serial loop overhead: unthreaded iterations execute sequentially
        // per thread.
        let serial_iters = n / t.max(1.0);
        let serial_time = serial_iters * self.loop_overhead / 16.0;

        let time = self.launch_overhead + mem_time.max(compute_time) + serial_time;
        n / time
    }

    /// A noisy measurement (±3%, deterministic in `seed`).
    pub fn flops(&self, nest: &LoopNest, seed: u64) -> f64 {
        let raw = self.flops_raw(nest);
        let mut z = seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 29;
        z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
        let u = (z >> 11) as f64 / (1u64 << 53) as f64;
        raw * (0.97 + 0.06 * u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_state_machine() {
        let mut nest = LoopNest::pointwise_add(1 << 20);
        nest.apply(Action::Split);
        nest.apply(Action::Split);
        assert_eq!(nest.loops.len(), 3);
        assert_eq!(nest.cursor, 0);
        nest.apply(Action::Down);
        assert_eq!(nest.cursor, 1);
        nest.apply(Action::ToggleMode);
        assert_eq!(nest.mode, Mode::Modify);
        nest.apply(Action::Up); // grow loop 1
        assert_eq!(nest.loops[1].size, 2);
        nest.apply(Action::ToggleMode);
        nest.apply(Action::Up); // cursor back to 0
        assert_eq!(nest.cursor, 0);
    }

    #[test]
    fn outer_size_accommodates_inner_growth() {
        let mut nest = LoopNest::pointwise_add(100);
        nest.apply(Action::Split);
        nest.apply(Action::Down);
        nest.apply(Action::ToggleMode);
        for _ in 0..6 {
            nest.apply(Action::Up);
        }
        assert_eq!(nest.loops[1].size, 7);
        // Tail logic: outer = ceil(100/7) = 15.
        assert_eq!(nest.loops[0].size, 15);
    }

    #[test]
    fn threading_multiplies_across_loops() {
        let mut nest = LoopNest::pointwise_add(1 << 20);
        nest.apply(Action::Split);
        nest.loops[1].size = 64;
        nest.normalize();
        nest.loops[0].threaded = true;
        nest.loops[1].threaded = true;
        assert_eq!(nest.threads(), nest.loops[0].size * 64);
    }

    #[test]
    fn more_threads_is_faster_up_to_capacity() {
        let base = LoopNest::pointwise_add(1 << 20);
        let serial = base.flops_deterministic();
        let mut threaded = base.clone();
        threaded.apply(Action::ToggleThread);
        let parallel = threaded.flops_deterministic();
        assert!(
            parallel > 100.0 * serial,
            "threading should help massively: {serial:.3e} vs {parallel:.3e}"
        );
    }

    #[test]
    fn throughput_dips_just_past_resident_capacity() {
        // The Figure 7 shape: FLOPs at slightly-over-capacity threads drop
        // below FLOPs at exactly capacity.
        let gpu = GpuModel::gp100();
        let cap = gpu.resident_capacity(); // 114,688 on GP100
        let flops_at = |threads: u64| {
            let mut nest = LoopNest::pointwise_add(1 << 24);
            nest.apply(Action::Split);
            nest.loops[1].size = threads;
            nest.normalize();
            nest.loops[1].threaded = true;
            nest.flops_deterministic()
        };
        let at_cap = flops_at(cap);
        let over = flops_at(cap + cap / 8);
        let way_over = flops_at(cap * 2);
        assert!(over < at_cap, "dip expected: {over:.3e} !< {at_cap:.3e}");
        assert!(way_over > over, "recovers at full second wave");
    }

    #[test]
    fn peak_is_plausible_fraction_of_hardware() {
        // The paper reports ~73.5% of theoretical peak (~6e10 elements/s
        // equivalent) for the tuned configuration.
        let gpu = GpuModel::gp100();
        let mut nest = LoopNest::pointwise_add(1 << 24);
        nest.apply(Action::ToggleThread); // thread everything
        let achieved = nest.flops_deterministic();
        let roofline = gpu.bandwidth / 12.0; // bandwidth-bound add
        let frac = achieved / roofline;
        assert!(frac > 0.5 && frac <= 1.0, "achieved {frac:.2} of roofline");
    }

    #[test]
    fn measurements_are_noisy_but_seeded() {
        let mut nest = LoopNest::pointwise_add(1 << 20);
        nest.apply(Action::ToggleThread);
        let a = nest.benchmark(1);
        let b = nest.benchmark(2);
        assert_ne!(a, b);
        assert_eq!(a, nest.benchmark(1));
        let raw = nest.flops_deterministic();
        assert!((a - raw).abs() / raw < 0.04);
    }

    #[test]
    fn dump_matches_listing_format() {
        let mut nest = LoopNest::pointwise_add(1048576);
        nest.apply(Action::ToggleThread);
        let d = nest.dump();
        assert!(d.contains("for a in 1048576 : L0 [thread]"));
        assert!(d.contains("%2[a] <- add(%0, %1)"));
    }

    #[test]
    fn shrink_below_one_is_clamped() {
        let mut nest = LoopNest::pointwise_add(64);
        nest.apply(Action::Split);
        nest.apply(Action::Down);
        nest.apply(Action::ToggleMode);
        nest.apply(Action::Down); // size already 1: no-op
        assert_eq!(nest.loops[1].size, 1);
    }
}
